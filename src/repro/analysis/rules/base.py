"""Shared rule plumbing: the Rule interface and small AST helpers.

Every rule is a stateless object with a ``code`` (the ``RPLnnn`` id
findings and waivers use), a short ``name``, a one-line ``rationale``
(shown by ``repro lint --list-rules`` and the README catalog) and a
``check(project)`` generator yielding :class:`~repro.analysis.engine.
Finding` rows.  Rules are *cross-file*: they receive the whole parsed
:class:`~repro.analysis.engine.Project` because the properties they
guard (a verb handled here must be sent there) do not live in any
single module.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding


class Rule:
    """Base class for lint rules; subclasses set the class attributes."""

    code = ""
    name = ""
    rationale = ""

    def check(self, project):
        raise NotImplementedError

    def finding(self, path: str, node, message: str) -> Finding:
        line = getattr(node, "lineno", 0) if node is not None else 0
        return Finding(path=path, line=line, rule=self.code, message=message)


def dotted_name(node) -> str | None:
    """``"a.b.c"`` for a Name/Attribute chain, ``None`` otherwise."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def str_const(node) -> str | None:
    """The value of a string-literal node, ``None`` otherwise."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def iter_classes(tree):
    """Every class definition in *tree*, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def methods_of(cls: ast.ClassDef) -> dict:
    """Top-level method name -> FunctionDef for one class body."""
    out: dict = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node
    return out


def module_functions(tree: ast.Module) -> dict:
    """Top-level function name -> FunctionDef for one module."""
    out: dict = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[node.name] = node
    return out


_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def walk_function_body(func, *, skip_nested: bool = True):
    """Yield the nodes of *func*'s body.

    With *skip_nested* (the default) nested function and lambda bodies
    are not descended into: a nested ``def`` is almost always a
    callback handed to another thread (a worker pool, a scheduler), so
    its body does not execute on the enclosing function's thread.
    """
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if skip_nested and isinstance(node, _NESTED):
            continue
        stack.extend(ast.iter_child_nodes(node))
