"""Shared experiment plumbing: dataset loading and evaluation defaults.

The evaluation protocol follows §IV.B: stratified 10-fold CV; the paper
repeats it 100 times — our default is 10 repeats (set
``REPRO_CV_REPEATS=100`` to match exactly; curves move by well under a
point beyond ~10 repeats).

The configuration readers (``REPRO_PROFILE`` / ``REPRO_CV_REPEATS`` /
``REPRO_JOBS``) now live in :mod:`repro.api.config` — the experiments
are thin clients of the service layer — and are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

from repro.api.config import (  # noqa: F401  (re-exported legacy names)
    DEFAULT_TOLERANCES,
    active_profile,
    cv_repeats,
    default_jobs,
)
from repro.dataset.build import Dataset, build_dataset


def load_dataset(profile: str | None = None, progress=None,
                 jobs: int | None = None) -> Dataset:
    """Build or reload the dataset for the active profile."""
    return build_dataset(profile or active_profile(), progress=progress,
                         jobs=jobs)
