"""Shared dimensioning helpers for dataset kernels.

Every kernel receives a payload budget in bytes and derives its array
dimensions so the declared arrays together consume roughly that budget
(the paper's *transfer* parameter).
"""

from __future__ import annotations

import math


def elements(size_bytes: int, elem_bytes: int = 4) -> int:
    return max(1, size_bytes // elem_bytes)


def vector_len(size_bytes: int, n_arrays: int) -> int:
    """Length of each of *n_arrays* equally-sized vectors."""
    return max(4, elements(size_bytes) // n_arrays)


def matrix_side(size_bytes: int, n_matrices: int,
                n_vectors: int = 0) -> int:
    """Side n of square matrices filling the budget.

    Solves ``n_matrices * n^2 + n_vectors * n ~= elements`` (the vector
    term is ignored when small, as in the paper's kernels).
    """
    e = elements(size_bytes)
    n = max(2, math.isqrt(max(1, e // n_matrices)))
    while n_matrices * n * n + n_vectors * n > e and n > 2:
        n -= 1
    return n


def cube_side(size_bytes: int, n_cubes: int) -> int:
    """Side n of cubic (n^3) arrays filling the budget."""
    e = elements(size_bytes)
    n = max(2, round((e / max(1, n_cubes)) ** (1.0 / 3.0)))
    while n_cubes * n ** 3 > e and n > 2:
        n -= 1
    return n


def pow2_floor(value: int) -> int:
    """Largest power of two <= value (>= 2)."""
    if value < 2:
        return 2
    return 1 << (value.bit_length() - 1)
