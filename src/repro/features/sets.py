"""Named feature sets used by the paper's experiments.

Figure 2 evaluates: ``static-agg``, ``static-raw+mca``, ``static-agg+mca``
and importance-pruned ``static-opt`` on the static side; ``dynamic`` and
``dynamic-opt`` on the dynamic side.  The ``*-opt`` sets are derived at
experiment time by pruning low-importance features, so they are not
listed here — the base sets are.
"""

from __future__ import annotations

from repro.errors import FeatureError
from repro.features.dynamic import dynamic_feature_names
from repro.features.mca import MCA_FEATURES
from repro.features.static_agg import AGG_FEATURES
from repro.features.static_raw import RAW_FEATURES

FEATURE_SETS: dict[str, tuple[str, ...]] = {
    "static-raw": RAW_FEATURES,
    "static-agg": AGG_FEATURES,
    "static-mca": MCA_FEATURES,
    "static-raw+mca": RAW_FEATURES + MCA_FEATURES,
    "static-agg+mca": AGG_FEATURES + MCA_FEATURES,
    "static-all": RAW_FEATURES + AGG_FEATURES + MCA_FEATURES,
    "dynamic": tuple(dynamic_feature_names()),
}


def feature_names(set_name: str) -> list[str]:
    """The ordered feature names of a named set."""
    try:
        return list(FEATURE_SETS[set_name])
    except KeyError:
        raise FeatureError(
            f"unknown feature set {set_name!r}; available: "
            f"{sorted(FEATURE_SETS)}")


def sample_vector(static: dict[str, float], dynamic: dict[str, float],
                  names: list[str]) -> list[float]:
    """Assemble one sample's vector for the given feature names."""
    vector = []
    for name in names:
        if name in static:
            vector.append(static[name])
        elif name in dynamic:
            vector.append(dynamic[name])
        else:
            raise FeatureError(f"sample has no feature {name!r}")
    return vector
