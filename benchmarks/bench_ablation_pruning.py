"""A2 — importance-pruning sweep (ours).

Accuracy at 5% tolerance as a function of how many top-importance static
features the tree keeps — the plateau the paper's static-opt sits on.
"""

from repro.experiments.ablation import run_pruning_sweep

from benchmarks.conftest import write_artifact


def test_pruning_sweep(dataset, benchmark):
    sweep = benchmark.pedantic(
        run_pruning_sweep, args=(dataset,),
        kwargs={"repeats": 3, "ks": (1, 2, 3, 4, 6, 8, 12, 16)},
        rounds=1, iterations=1)
    write_artifact("ablation_pruning.txt", sweep.render())

    ks = [k for k, _ in sweep.points]
    accs = [acc for _, acc in sweep.points]
    assert ks == sorted(ks)
    # more informative features never catastrophically hurt: the best
    # multi-feature point beats the single-feature tree
    assert max(accs[1:]) >= accs[0] - 0.02
