"""CI smoke test for the persistent scoring daemon — sharded edition.

Trains **two** distinct model/feature-set variants (a ``tree`` on
``static-all`` and a ``forest`` on ``static-agg``; four kernels, unit
profile, throwaway caches), serves both from one
:class:`repro.api.ScoringDaemon` in fleet mode (micro-batching on),
pushes ``--rows`` feature rows through ``--clients`` concurrent
:class:`repro.api.ScoringClient` connections — odd clients routing to
the forest via the ``model`` request field, even clients hitting the
pinned default, and half of each negotiating the ``binary-v1`` wire
codec while the rest stay on JSON lines — and asserts every wire
prediction is byte-identical to the matching local ``predict_batch``
(rows are pre-rounded to the f32 grid the binary codec transports, so
both codecs score bit-identical inputs).  Also exercises the admin
verbs (``list_models`` / ``load_model`` / ``evict_model``), the
``stats`` verb including its per-codec traffic section, and clean
shutdown (socket unlinked, counters consistent).

Then the **mixed-codec pipelined** leg: json, ``binary-v1`` and
``binary-v2`` clients pipeline the same default-model rows through one
fleet daemon concurrently — the v2 window travels as packed multi-row
stream frames (asserted via the server's ``stream_rows`` counter) and
all three result lists must be byte-identical.

Then the **sharded** leg: a ``--shards``-process
:class:`repro.api.ShardManager` deployment behind one unix shard
registry, pipelined JSON *and* binary client round trips through it
(``predict_pipelined``, byte-identical again), per-shard stats via the
registry plus the :func:`repro.api.admin.collect_stats` aggregation,
and clean fan-out shutdown (registry and shard sockets gone).  Exit
code 0 means both deployment paths work end to end.

``--kill-storm`` runs the self-healing leg instead: a supervised
(:class:`repro.api.ShardSupervisor`) fleet under sustained pipelined
load while shards are repeatedly SIGKILLed, then a rolling restart
under the same load, then a zero-downtime hot swap — and not one
request may fail (client retries re-resolve the refreshed registry).

Run from the repo root::

    PYTHONPATH=src python scripts/daemon_smoke.py [--rows 100]
    PYTHONPATH=src python scripts/daemon_smoke.py --kill-storm
"""

from __future__ import annotations

import argparse
import functools
import os
import shutil
import signal
import sys
import tempfile
import threading
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

import numpy as np  # noqa: E402

from repro.api import (  # noqa: E402
    AdminClient,
    CODEC_BINARY,
    CODEC_BINARY_V2,
    CODEC_JSON,
    MicroBatcher,
    ModelFleet,
    ModelPool,
    ReproConfig,
    ScoringClient,
    ScoringDaemon,
    ShardManager,
    ShardSupervisor,
    classifier_factory,
    load_or_train,
    registry_epoch,
)
from repro.api.admin import collect_metrics, collect_stats  # noqa: E402
from repro.api.shard import read_registry  # noqa: E402
from repro.dataset.build import build_dataset  # noqa: E402
from repro.dataset.registry import get_kernel_spec  # noqa: E402
from repro.errors import FleetError  # noqa: E402

SMOKE_KERNELS = ("gemm", "atax", "fir", "stream_triad")
FOREST_SPEC = "forest:static-agg:unit"
TREE_SPEC = "tree:static-all:unit"
#: the kill-storm hot-swap target shares the tree's feature set, so
#: one probe row matrix scores against both models
STORM_SWAP_SPEC = "forest:static-all:unit"


class SmokeFailure(AssertionError):
    """A smoke check failed; the message carries the full diagnosis."""


def score_request_count(series) -> int:
    """Total scored requests across every ``verb="score"`` latency row.

    Sums the merged ``repro_request_latency_us`` histogram counts over
    all codec/model label combinations, so the caller can assert on an
    exact fleet-wide request count regardless of which path (coalesced
    fast path, slow path, either codec) served each request.
    """
    total = 0
    for row in series:
        if (
            row.get("name") == "repro_request_latency_us"
            and row.get("labels", {}).get("verb") == "score"
        ):
            total += int(row.get("count", 0))
    return total


def check_identical(label: str, got: list, want: list) -> None:
    """Byte-identity check with an actionable diff on failure.

    A bare ``assert got == want`` exits non-zero but tells CI nothing;
    this names the leg that diverged and prints the first mismatching
    indices with both values, so a codec or batching regression is
    diagnosable from the log alone.
    """
    if got == want:
        return
    lines = [f"{label}: predictions diverged"]
    if len(got) != len(want):
        lines.append(
            f"  length mismatch: got {len(got)} rows, want {len(want)}"
        )
    mismatches = [
        i for i, (g, w) in enumerate(zip(got, want)) if g != w
    ]
    shown = mismatches[:10]
    for index in shown:
        lines.append(
            f"  row {index}: got {got[index]!r}, want {want[index]!r}"
        )
    hidden = len(mismatches) - len(shown)
    if hidden > 0:
        lines.append(f"  ... and {hidden} more mismatching row(s)")
    raise SmokeFailure("\n".join(lines))


def _storm_fleet_factory(paths: dict):
    """Shard factory for the kill-storm leg: prebuilt artifacts only.

    Module-level (and built from plain strings) so respawned shard
    processes can rebuild the exact same fleet regardless of the
    multiprocessing start method.
    """
    from repro.api import Classifier

    variants = {spec: Classifier.load(path)
                for spec, path in paths.items()}

    def loader(key):
        try:
            return variants[key.spec]
        except KeyError:
            raise FleetError(f"unexpected lazy load of {key.spec!r}")

    pool = ModelPool(loader=loader, default_tag="unit")
    return ModelFleet(
        pool,
        MicroBatcher(max_batch=16, max_delay_us=1000),
        default=variants[TREE_SPEC],
    )


def kill_storm(args, workdir: str) -> int:
    """The self-healing leg: SIGKILL storm, rolling restart, hot swap.

    A supervised ``--shards``-process fleet serves sustained pipelined
    load from ``--clients`` threads (each pinning the tree explicitly,
    so the later promotion cannot change what they assert against)
    while shards are SIGKILLed ``--storm-kills`` times and then the
    whole fleet is cycled through a rolling restart.  Zero failed
    requests are tolerated: a retried request must re-resolve the
    refreshed registry and land on a live shard.  With the load
    quiesced, a hot swap canary-scores and promotes the forest and the
    default route must answer byte-identically to the local model on
    every shard.
    """
    specs = [get_kernel_spec(name) for name in SMOKE_KERNELS]
    dataset = build_dataset(
        "unit", specs=specs, cache_dir=os.path.join(workdir, "sim_cache"))
    model_dir = os.path.join(workdir, "models")
    tree, _ = load_or_train(
        ReproConfig(profile="unit"), dataset=dataset, cache_dir=model_dir)
    forest, _ = load_or_train(
        ReproConfig(profile="unit", model="forest",
                    model_params={"n_estimators": 10}),
        dataset=dataset, cache_dir=model_dir)

    base_rows = dataset.matrix(tree.feature_names_)
    reps = -(-args.rows // len(base_rows))
    tiled = np.tile(base_rows, (reps, 1))[: args.rows]
    rows = tiled.astype(np.float32).astype(np.float64).tolist()
    want_tree = [int(p) for p in tree.predict_batch(rows)]
    want_forest = [int(p) for p in forest.predict_batch(rows)]

    paths = {TREE_SPEC: os.path.join(workdir, "tree.json"),
             STORM_SWAP_SPEC: os.path.join(workdir, "forest.json")}
    tree.save(paths[TREE_SPEC])
    forest.save(paths[STORM_SWAP_SPEC])

    base = os.path.join(workdir, "storm.sock")
    manager = ShardManager(
        functools.partial(_storm_fleet_factory, paths),
        shards=args.shards, socket_path=base, workers=4)
    failures: list = []
    batches = [0] * args.clients
    stop = threading.Event()

    def hammer(slot: int) -> None:
        try:
            with ScoringClient(socket_path=base,
                               reconnect_retries=16) as client:
                while not stop.is_set():
                    got = client.predict_pipelined(
                        rows, model="tree:static-all", window=16)
                    check_identical(f"storm client {slot}", got, want_tree)
                    batches[slot] += 1
        except Exception as exc:  # surfaced below as a failure
            failures.append(exc)

    with manager, ShardSupervisor(manager, interval=0.2) as supervisor:
        threads = [threading.Thread(target=hammer, args=(slot,))
                   for slot in range(args.clients)]
        for thread in threads:
            thread.start()
        try:
            # -- the storm: SIGKILL shards under load, healing must
            # keep the registry full and the traffic flowing
            killed: list = []
            for round_no in range(args.storm_kills):
                victim = round_no % args.shards
                pid = manager.pids[victim]
                os.kill(pid, signal.SIGKILL)
                killed.append(pid)
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    proc = manager.proc(victim)
                    if proc.is_alive() and proc.pid != pid:
                        break
                    time.sleep(0.05)
                else:
                    raise SmokeFailure(
                        f"shard {victim} (pid {pid}) was not respawned "
                        f"within 30s of its SIGKILL")
                time.sleep(0.3)  # let traffic flow between kills

            # -- rolling restart under the same load
            restarted = supervisor.rolling_restart()
            if len(restarted) != args.shards:
                raise SmokeFailure(
                    f"rolling restart returned {restarted}, expected "
                    f"{args.shards} replacement pids")
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=120)
        if any(t.is_alive() for t in threads):
            raise SmokeFailure("storm client thread(s) hung")
        if failures:
            raise failures[0]
        if not all(batches):
            raise SmokeFailure(
                f"every storm client must complete at least one "
                f"batch, got {batches}")

        # -- zero-downtime hot swap, gated on the local predictions
        report = supervisor.hot_swap("forest:static-all", rows,
                                     expected=want_forest)
        if not report.identical:
            raise SmokeFailure(
                f"hot swap promoted {report.model} but shard default "
                f"routes diverged from the canary")
        with ScoringClient(socket_path=base) as client:
            check_identical("post-swap default route",
                            client.predict_batch(rows), want_forest)

        # -- the registry survived the churn: N live rows, every
        # killed pid replaced, epoch strictly grew with each refresh
        registry = read_registry(base)
        if len(registry) != args.shards:
            raise SmokeFailure(f"registry holds {registry}, expected "
                               f"{args.shards} live rows")
        final_pids = {row["pid"] for row in registry}
        if final_pids != set(manager.pids) or final_pids & set(killed):
            raise SmokeFailure(
                f"registry pids {final_pids} do not match the live "
                f"fleet {manager.pids} (killed: {killed})")
        epoch = registry_epoch(base)
        # one refresh per respawn plus one per drain/deregister
        if epoch < args.storm_kills + 2 * args.shards:
            raise SmokeFailure(
                f"registry epoch {epoch} too low for "
                f"{args.storm_kills} heals + a rolling restart")
        respawns = sum(1 for e in supervisor.events
                       if e["event"] == "respawn")
        if respawns != args.storm_kills:
            raise SmokeFailure(
                f"supervisor healed {respawns} times, expected "
                f"{args.storm_kills}")

        # -- merged fleet telemetry survived the churn.  SIGKILLed
        # shards took their counters with them, so absolute totals are
        # not assertable — but a *delta* around a known quiesced
        # request count is exact: the merged score-latency histogram
        # must grow by exactly the requests we now inject
        before = collect_metrics(base)
        if before.live_shards != args.shards:
            raise SmokeFailure(
                f"metrics collection saw {before.live_shards} live "
                f"shards, expected {args.shards}: {before.shards}")
        probe_requests = 7
        with ScoringClient(socket_path=base) as client:
            for row_no in range(probe_requests):
                row = rows[row_no % len(rows)]
                got = client.predict(list(row))
                if got != want_forest[row_no % len(rows)]:
                    raise SmokeFailure(
                        f"metrics probe request {row_no} scored {got}, "
                        f"want {want_forest[row_no % len(rows)]}")
        after = collect_metrics(base)
        delta = (score_request_count(after.series)
                 - score_request_count(before.series))
        if delta != probe_requests:
            raise SmokeFailure(
                f"merged score-latency histograms grew by {delta} "
                f"requests, expected exactly {probe_requests}; "
                f"per-shard counts are drifting from requests served")

        # the supervisor's own registry counts every heal it performed
        respawn_counter = 0
        for series_row in supervisor.metrics.snapshot()["series"]:
            if (series_row["name"] == "repro_supervisor_events_total"
                    and series_row["labels"].get("event") == "respawn"):
                respawn_counter = int(series_row["value"])
        if respawn_counter != args.storm_kills:
            raise SmokeFailure(
                f"repro_supervisor_events_total{{event='respawn'}} is "
                f"{respawn_counter}, expected {args.storm_kills} "
                f"(one per injected SIGKILL)")
    if os.path.exists(base):
        raise SmokeFailure("registry not removed after stop")

    print(
        f"kill-storm smoke OK: {sum(batches)} pipelined batches x "
        f"{len(rows)} rows across {args.clients} clients with zero "
        f"failures, {args.storm_kills} SIGKILLs healed, rolling "
        f"restart {restarted}, hot swap to {report.model} "
        f"byte-identical on {len(report.promoted)} shards, "
        f"registry epoch {epoch}, merged metrics delta "
        f"{delta}/{probe_requests} requests, respawn counter "
        f"{respawn_counter}, clean fan-out shutdown"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--kill-storm", action="store_true",
                        help="run the supervised self-healing leg "
                             "instead of the serving legs")
    parser.add_argument("--storm-kills", type=int, default=6,
                        help="SIGKILLs delivered during --kill-storm")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="daemon_smoke_")
    try:
        if args.kill_storm:
            return kill_storm(args, workdir)
        specs = [get_kernel_spec(name) for name in SMOKE_KERNELS]
        dataset = build_dataset(
            "unit",
            specs=specs,
            cache_dir=os.path.join(workdir, "sim_cache"),
        )
        model_dir = os.path.join(workdir, "models")
        tree, cache_hit = load_or_train(
            ReproConfig(profile="unit"),
            dataset=dataset,
            cache_dir=model_dir,
        )
        assert not cache_hit, "fresh cache dir cannot hit"
        forest, _ = load_or_train(
            ReproConfig(
                profile="unit",
                model="forest",
                model_params={"n_estimators": 10},
                feature_set="static-agg",
            ),
            dataset=dataset,
            cache_dir=model_dir,
        )

        variants = {None: tree, FOREST_SPEC: forest}
        rows_of: dict = {}
        expected: dict = {}
        for spec, clf in variants.items():
            base = dataset.matrix(clf.feature_names_)
            reps = -(-args.rows // len(base))  # ceil division
            tiled = np.tile(base, (reps, 1))[: args.rows]
            # round to the f32 grid the binary codec transports, so
            # JSON and binary clients score bit-identical inputs
            rows_of[spec] = tiled.astype(np.float32).astype(np.float64)
            expected[spec] = [int(p) for p in clf.predict_batch(rows_of[spec])]

        def loader(key):
            # the forest stays servable after an evict (transparent
            # reload); anything else is a smoke-test bug
            if key.spec == FOREST_SPEC:
                return forest
            raise FleetError(f"unexpected lazy load of {key.spec!r}")

        pool = ModelPool(loader=loader, default_tag="unit")
        pool.add(forest, key=FOREST_SPEC)
        fleet = ModelFleet(
            pool,
            MicroBatcher(max_batch=args.max_batch, max_delay_us=1000),
            default=tree,
        )

        socket_path = os.path.join(workdir, "repro.sock")
        results: list = [None] * args.clients
        errors: list = []

        def worker(slot: int) -> None:
            # 4-way coverage: (tree, forest) x (json, binary-v1)
            spec = None if slot % 2 == 0 else FOREST_SPEC
            codec = CODEC_JSON if (slot // 2) % 2 == 0 else CODEC_BINARY
            shard = rows_of[spec][slot :: args.clients]
            try:
                with ScoringClient(socket_path=socket_path,
                                   codec=codec) as client:
                    assert client.codec == codec, (client.codec, codec)
                    batch = client.predict_batch(shard, model=spec)
                    singles = [
                        client.predict(list(row), model=spec) for row in shard
                    ]
                    results[slot] = (spec, batch, singles)
            except Exception as exc:  # surfaced below as a failure
                errors.append(exc)

        daemon = ScoringDaemon(
            fleet=fleet,
            socket_path=socket_path,
            workers=args.workers,
        )
        with daemon:
            with AdminClient(socket_path=socket_path) as admin:
                listing = admin.list_models()
                assert len(listing) == 2, listing
                assert listing.default.model == TREE_SPEC, listing
                # evict + warm reload round trip over the wire
                assert admin.evict_model(FOREST_SPEC) is True
                assert admin.load_model(FOREST_SPEC) == FOREST_SPEC
                assert len(admin.list_models()) == 2
                assert admin.health().serving
                telemetry = admin.metrics()
                assert telemetry["enabled"] is True, telemetry
                assert isinstance(telemetry["series"], list), telemetry

            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(args.clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            hung = [i for i, t in enumerate(threads) if t.is_alive()]
            if hung:
                raise SmokeFailure(
                    f"client thread(s) {hung} still running after the "
                    f"120s join timeout; the daemon has stalled"
                )
            # the traffic just served must be visible in the latency
            # histograms: every predict/predict_batch call above is one
            # verb="score" request
            with AdminClient(socket_path=socket_path) as admin:
                telemetry = admin.metrics()
            scored_requests = score_request_count(telemetry["series"])
            if not scored_requests:
                raise SmokeFailure(
                    "metrics verb reports zero score requests after "
                    "the client storm; instrumentation is dead")
        # post-stop read: stop() drains the pool, so every connection
        # handler has finished its bookkeeping by now
        stats = daemon.stats()
        fleet.close()

        if errors:
            raise errors[0]
        scored = 0
        for slot in range(args.clients):
            if results[slot] is None:
                raise SmokeFailure(
                    f"client {slot} produced no result (worker died "
                    f"without raising?)"
                )
            spec, batch, singles = results[slot]
            want = [int(p) for p in expected[spec][slot :: args.clients]]
            check_identical(f"client {slot} batch ({spec})", batch, want)
            check_identical(
                f"client {slot} singles ({spec})", singles, want
            )
            scored += len(batch) + len(singles)
        # clients + the pre-storm admin client + the post-storm metrics read
        assert stats["connections_served"] == args.clients + 2
        assert not os.path.exists(socket_path), "socket not unlinked"
        loop_stats = stats.get("loop", {})

        # per-codec traffic accounting: every connection is attributed
        # to the codec it ended on, byte counters split the same way
        n_binary = sum(1 for slot in range(args.clients)
                       if (slot // 2) % 2 == 1)
        n_json = args.clients - n_binary + 2  # + the two admin clients
        codec_stats = stats["codec"]
        assert codec_stats["connections"].get(CODEC_BINARY, 0) == n_binary, (
            codec_stats
        )
        assert codec_stats["connections"].get(CODEC_JSON, 0) == n_json, (
            codec_stats
        )
        assert codec_stats["requests"].get(CODEC_JSON, 0) > 0
        if n_binary:
            assert codec_stats["requests"].get(CODEC_BINARY, 0) > 0
            assert codec_stats["bytes_in"].get(CODEC_BINARY, 0) > 0
            assert codec_stats["bytes_out"].get(CODEC_BINARY, 0) > 0

        print(
            f"daemon smoke OK: {scored} predictions across "
            f"{args.clients} clients ({n_binary} binary-v1) and "
            f"2 models, {stats['requests_served']} requests, "
            f"mean coalesced batch {loop_stats.get('mean_fast_batch')}, "
            f"clean shutdown"
        )

        # -- mixed-codec pipelined leg: json + v1 + v2 concurrently ----
        # three clients pipeline the same default-model rows through
        # one fleet daemon at once; the v2 client must travel as
        # multi-row stream frames (asserted via the server counters)
        # and all three must come back byte-identical
        pipe_fleet = ModelFleet(
            ModelPool(),
            MicroBatcher(max_batch=args.max_batch, max_delay_us=1000),
            default=tree,
        )
        pipe_path = os.path.join(workdir, "pipelined.sock")
        pipe_codecs = (CODEC_JSON, CODEC_BINARY, CODEC_BINARY_V2)
        pipe_rows = rows_of[None]
        pipe_results: list = [None] * len(pipe_codecs)
        pipe_errors: list = []

        def pipe_worker(slot: int) -> None:
            codec = pipe_codecs[slot]
            try:
                with ScoringClient(socket_path=pipe_path,
                                   codec=codec) as client:
                    assert client.codec == codec, (client.codec, codec)
                    pipe_results[slot] = client.predict_pipelined(
                        pipe_rows, window=16)
            except Exception as exc:  # surfaced below as a failure
                pipe_errors.append(exc)

        pipe_daemon = ScoringDaemon(
            fleet=pipe_fleet,
            socket_path=pipe_path,
            workers=args.workers,
        )
        with pipe_daemon:
            threads = [
                threading.Thread(target=pipe_worker, args=(slot,))
                for slot in range(len(pipe_codecs))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            hung = [i for i, t in enumerate(threads) if t.is_alive()]
            if hung:
                raise SmokeFailure(
                    f"pipelined client thread(s) {hung} still running "
                    f"after the 120s join timeout; the daemon has "
                    f"stalled"
                )
            with AdminClient(socket_path=pipe_path) as admin:
                pipe_server = admin.stats()["server"]
        pipe_fleet.close()
        if pipe_errors:
            raise pipe_errors[0]
        for slot, codec in enumerate(pipe_codecs):
            check_identical(f"mixed pipelined ({codec})",
                            pipe_results[slot], expected[None])
        if pipe_server.get("stream_rows", 0) < len(pipe_rows):
            raise SmokeFailure(
                f"binary-v2 rows did not travel as stream frames: "
                f"{pipe_server.get('stream_rows', 0)} stream rows for "
                f"{len(pipe_rows)} pipelined rows"
            )
        print(
            f"mixed-codec pipelined smoke OK: {len(pipe_codecs)} "
            f"codecs x {len(pipe_rows)} rows byte-identical, "
            f"{pipe_server['stream_rows']} rows in "
            f"{pipe_server['stream_frames']} stream frames"
        )

        # -- sharded leg: N processes, one registry, pipelined client --
        artifact = os.path.join(workdir, "tree.json")
        tree.save(artifact)
        base = os.path.join(workdir, "shards.sock")
        rows = rows_of[None]
        want = expected[None]
        manager = ShardManager(
            functools.partial(classifier_factory, artifact),
            shards=args.shards,
            socket_path=base,
            workers=4,
        )
        with manager:
            registry = read_registry(base)
            assert len(registry) == args.shards, registry
            with ScoringClient(socket_path=base) as client:
                got = client.predict_pipelined(
                    [list(map(float, row)) for row in rows], window=16
                )
                check_identical("sharded pipelined (json)", got, want)
            # same rows again over a negotiated binary connection —
            # the forked shard daemons speak both codecs
            with ScoringClient(socket_path=base,
                               codec=CODEC_BINARY) as client:
                assert client.codec == CODEC_BINARY
                got = client.predict_pipelined(
                    [list(map(float, row)) for row in rows], window=16
                )
                check_identical(
                    "sharded pipelined (binary-v1)", got, want
                )
                check_identical(
                    "sharded batch (binary-v1)",
                    client.predict_batch(rows),
                    want,
                )
            # and once more as binary-v2 stream frames — the forked
            # shard daemons negotiate and serve the multi-row path too
            with ScoringClient(socket_path=base,
                               codec=CODEC_BINARY_V2) as client:
                assert client.codec == CODEC_BINARY_V2
                got = client.predict_pipelined(
                    [list(map(float, row)) for row in rows], window=16
                )
                check_identical("sharded pipelined (binary-v2)", got, want)
            shard_requests = {}
            for row in registry:
                with AdminClient(socket_path=row["path"]) as admin:
                    shard_stats = admin.stats()
                    assert shard_stats["shard"]["pid"] == row["pid"]
                    shard_requests[shard_stats["shard"]["index"]] = (
                        shard_stats["server"]["requests_served"]
                    )
            assert sorted(shard_requests) == list(range(args.shards))
            aggregated = collect_stats(base)
            assert len(aggregated.shards) == args.shards, aggregated
            assert aggregated.live_shards == args.shards, aggregated
            assert aggregated.requests_served >= 2 * len(rows) + 1
            merged_codec = aggregated.codec
            assert merged_codec["connections"].get(CODEC_BINARY, 0) >= 1, (
                merged_codec
            )
            assert merged_codec["bytes_in"].get(CODEC_BINARY, 0) > 0
            # the v2 stream frame counted all its rows as requests
            assert merged_codec["requests"].get(CODEC_BINARY_V2, 0) >= len(
                rows
            ), merged_codec
        assert not os.path.exists(base), "registry not removed"
        for row in registry:
            assert not os.path.exists(row["path"]), "shard socket left"

        print(
            f"shard smoke OK: {len(rows)} pipelined predictions x 3 "
            f"codecs across {args.shards} shards, per-shard requests "
            f"{shard_requests}, aggregated "
            f"{aggregated.requests_served} requests, "
            f"clean fan-out shutdown"
        )
        return 0
    except SmokeFailure as failure:
        print(f"daemon smoke FAILED:\n{failure}", file=sys.stderr)
        return 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
