"""OpenMP ``schedule(static)`` iteration chunking.

Without an explicit chunk size OpenMP divides the iteration space into at
most one contiguous chunk per thread, chunk sizes differing by at most
one, earlier threads receiving the larger chunks.  This is what the PULP
OpenMP runtime in the paper implements.
"""

from __future__ import annotations

from repro.errors import LoweringError


def static_chunks(lower: int, upper: int, team: int) -> list[tuple[int, int]]:
    """Split ``[lower, upper)`` into *team* contiguous half-open chunks.

    Returns one ``(lo, hi)`` per team member (``hi == lo`` for members
    with no work).  The chunks partition the range exactly.
    """
    if team < 1:
        raise LoweringError(f"team size must be >= 1, got {team}")
    total = max(0, upper - lower)
    base, extra = divmod(total, team)
    chunks: list[tuple[int, int]] = []
    start = lower
    for member in range(team):
        size = base + (1 if member < extra else 0)
        chunks.append((start, start + size))
        start += size
    return chunks
