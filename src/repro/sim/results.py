"""Result containers and the per-kernel core sweep.

``sweep_cores`` is step (C) of the paper's workflow: simulate the same
kernel once per team size, attach the Table-I energy, and report the
minimum-energy core count (the sample's label).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.accounting import EnergyBreakdown, compute_energy
from repro.energy.model import EnergyModel
from repro.ir.nodes import Kernel
from repro.platform.config import ClusterConfig
from repro.sim.counters import ClusterCounters
from repro.sim.engine import simulate


@dataclass(frozen=True)
class SimulationResult:
    """One (kernel, team size) simulation with its energy breakdown."""

    kernel_name: str
    team_size: int
    counters: ClusterCounters
    energy: EnergyBreakdown

    @property
    def cycles(self) -> int:
        return self.counters.cycles

    @property
    def total_energy_fj(self) -> float:
        return self.energy.total


def run_one(kernel: Kernel, team_size: int,
            config: ClusterConfig | None = None,
            model: EnergyModel | None = None,
            backend: str = "codegen") -> SimulationResult:
    """Simulate one configuration and account its energy."""
    config = config or ClusterConfig()
    model = model or EnergyModel.paper_table1()
    counters = simulate(kernel, team_size, config, backend=backend)
    return SimulationResult(kernel.name, team_size, counters,
                            compute_energy(counters, model))


def sweep_cores(kernel: Kernel, config: ClusterConfig | None = None,
                model: EnergyModel | None = None,
                team_sizes: tuple[int, ...] | None = None,
                backend: str = "codegen") -> list[SimulationResult]:
    """Simulate *kernel* for every team size (1..n_cores by default)."""
    config = config or ClusterConfig()
    sizes = team_sizes or tuple(range(1, config.n_cores + 1))
    return [run_one(kernel, n, config, model, backend) for n in sizes]


def minimum_energy_label(results: list[SimulationResult]) -> int:
    """The paper's label: the team size with minimum total energy."""
    best = min(results, key=lambda r: r.total_energy_fj)
    return best.team_size
