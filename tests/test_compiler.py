"""Compiler tests: scheduling, codegen-vs-interpreter, lowering shape."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import LoweredProgram, lower_kernel, static_chunks
from repro.compiler.codegen import compile_segment, segment_sites
from repro.compiler.interp import expand_stream, interpret_segment
from repro.errors import LoweringError
from repro.ir import Compute, Critical, KernelBuilder, Load, Loop, OpKind, Store
from repro.ir.expr import var
from repro.ir.types import DType
from repro.isa.opcodes import OP_ALU, OP_JMP
from repro.platform.config import ClusterConfig
from repro.platform.memory import MemoryMap
from tests.conftest import make_matmul


class TestStaticChunks:
    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=0, max_value=300),
           st.integers(min_value=1, max_value=8))
    def test_chunks_partition_range(self, lower, total, team):
        upper = lower + total
        chunks = static_chunks(lower, upper, team)
        assert len(chunks) == team
        # contiguous cover, no overlap
        cursor = lower
        for lo, hi in chunks:
            assert lo == cursor and hi >= lo
            cursor = hi
        assert cursor == upper

    @given(st.integers(min_value=0, max_value=300),
           st.integers(min_value=1, max_value=8))
    def test_chunk_sizes_differ_by_at_most_one(self, total, team):
        chunks = static_chunks(0, total, team)
        sizes = [hi - lo for lo, hi in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)  # earlier get larger

    def test_rejects_empty_team(self):
        with pytest.raises(LoweringError):
            static_chunks(0, 10, 0)


def _memmap(kernel, config):
    return MemoryMap(kernel, config.n_l1_banks, config.n_l2_banks,
                     config.tcdm_bytes, config.l2_bytes)


class TestCodegenVsInterpreter:
    """The generated Python must replay the reference interpretation."""

    def _compare(self, body, kernel, loop_var=None, loop_range=(0, 0),
                 prologue=0, env=None):
        config = ClusterConfig()
        memmap = _memmap(kernel, config)
        free_vars = tuple(sorted(env)) if env else ()
        fn, sites = compile_segment(body, memmap, 16, 32,
                                    loop_var=loop_var,
                                    free_vars=free_vars,
                                    prologue_alu=prologue)
        values = tuple(env[name] for name in free_vars) if env else ()
        generated = list(expand_stream(fn(loop_range[0], loop_range[1],
                                          *values)))
        reference = list(interpret_segment(
            body, memmap, 16, 32, loop_var=loop_var,
            loop_range=loop_range, prologue_alu=prologue, env=env))
        assert generated == reference
        assert sites >= 1

    def test_parallel_chunk(self, axpy_kernel):
        region = axpy_kernel.body[0]
        self._compare(region.body, axpy_kernel, loop_var=region.var,
                      loop_range=(3, 17), prologue=5)

    def test_nested_loops(self):
        kernel = make_matmul(DType.FP32, 1024)
        region = kernel.body[0]
        self._compare(region.body, kernel, loop_var=region.var,
                      loop_range=(0, 4), prologue=2)

    def test_empty_chunk_still_generator(self, axpy_kernel):
        region = axpy_kernel.body[0]
        self._compare(region.body, axpy_kernel, loop_var=region.var,
                      loop_range=(5, 5), prologue=0)

    def test_free_variables(self):
        from repro.ir.nodes import ParallelFor
        b = KernelBuilder("k", DType.INT32, 512)
        b.array("A", 64)
        body = (Load("A", var("t") * 3 + var("i")),)
        b.sequential_for("t", 0, 3, [ParallelFor("i", 0, 4, body)])
        kernel = b.build()
        self._compare(body, kernel, loop_var="i", loop_range=(0, 4),
                      env={"t": 7})

    def test_critical_section(self):
        b = KernelBuilder("k", DType.INT32, 512)
        b.array("A", 16)
        body = (Critical([Load("A", var("i"))], name="sec"),)
        b.parallel_for("i", 0, 4, list(body))
        kernel = b.build()
        self._compare(body, kernel, loop_var="i", loop_range=(0, 4))

    @settings(max_examples=25, deadline=None)
    @given(counts=st.lists(st.integers(min_value=1, max_value=6),
                           min_size=1, max_size=5),
           trip=st.integers(min_value=0, max_value=6))
    def test_random_compute_bodies(self, counts, trip):
        b = KernelBuilder("k", DType.INT32, 512)
        b.array("A", 64)
        kinds = [OpKind.ALU, OpKind.FP, OpKind.DIV, OpKind.NOP]
        body = tuple(Compute(kinds[n % len(kinds)], n) for n in counts)
        body = body + (Load("A", var("i")),)
        b.parallel_for("i", 0, max(trip, 1), list(body))
        kernel = b.build()
        self._compare(body, kernel, loop_var="i", loop_range=(0, trip))


class TestCoalescing:
    def test_adjacent_alu_runs_merge(self, axpy_kernel):
        config = ClusterConfig()
        memmap = _memmap(axpy_kernel, config)
        body = (Compute(OpKind.ALU, 2), Compute(OpKind.ALU, 3),
                Store("x", var("i")))
        fn, _ = compile_segment(body, memmap, 16, 32, loop_var="i")
        stream = list(fn(0, 1))
        alu_macros = [arg for op, arg in stream if op == OP_ALU]
        # induction(1) + 2 + 3 merge into a single macro of 6
        assert alu_macros == [6]

    def test_jumps_never_merge(self, axpy_kernel):
        memmap = _memmap(axpy_kernel, ClusterConfig())
        body = (Compute(OpKind.JUMP, 1), Compute(OpKind.JUMP, 1))
        fn, _ = compile_segment(body, memmap, 16, 32, loop_var="i")
        stream = [instr for instr in fn(0, 1) if instr[0] == OP_JMP]
        assert len(stream) == 3  # two explicit + loop back-branch


class TestLowering:
    def test_program_shape_single_region(self, axpy_kernel):
        config = ClusterConfig()
        lowered = lower_kernel(axpy_kernel, 4, config)
        assert isinstance(lowered, LoweredProgram)
        # master: fork-run, fork-barrier, chunk, join-barrier, join-run,
        # final barrier
        kinds0 = [seg[0] for seg in lowered.programs[0]]
        assert kinds0 == ["r", "b", "r", "b", "r", "b"]
        for core in range(1, 4):
            assert [s[0] for s in lowered.programs[core]] \
                == ["b", "r", "b", "b"]
        for core in range(4, 8):
            assert lowered.programs[core] == []

    def test_barrier_team_sizes(self, axpy_kernel):
        lowered = lower_kernel(axpy_kernel, 3, ClusterConfig())
        assert set(lowered.barrier_team.values()) == {3}

    def test_team_bounds_checked(self, axpy_kernel):
        with pytest.raises(LoweringError):
            lower_kernel(axpy_kernel, 0, ClusterConfig())
        with pytest.raises(LoweringError):
            lower_kernel(axpy_kernel, 9, ClusterConfig())

    def test_unknown_backend_rejected(self, axpy_kernel):
        with pytest.raises(LoweringError):
            lower_kernel(axpy_kernel, 2, ClusterConfig(), backend="jit")

    def test_sequential_for_reuses_compiled_body(self):
        kernel = _sequential_for_kernel()
        lowered = lower_kernel(kernel, 2, ClusterConfig())
        # 6 iterations x (fork-run + fork-b + chunk + join-b + join-run)
        kinds = [seg[0] for seg in lowered.programs[0]]
        assert kinds.count("b") == 2 * 6 + 1  # fork+join per iter + final

    def test_segment_sites_positive(self):
        body = (Loop("j", 0, 4, (Compute(OpKind.ALU, 100),)),)
        assert segment_sites(body, "i", 48) >= 3


def _sequential_for_kernel():
    from repro.ir.nodes import ParallelFor
    b = KernelBuilder("seqfor", DType.INT32, 512)
    b.array("A", 32)
    region = ParallelFor("j", 0, var("t") + 1, (Load("A", var("j")),))
    b.sequential_for("t", 0, 6, [region])
    return b.build()
