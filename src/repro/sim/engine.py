"""Cycle-lockstep simulation of the PULP cluster.

Each simulated cycle, every team core in (rotating) priority order either
issues one instruction, retries a conflicted access, or sleeps:

* a TCDM bank serves one request per cycle; additional requesters record
  a *conflict* on the bank and an active-wait cycle on the core;
* FP ops arbitrate for the core's statically-mapped shared FPU (one op
  per cycle per FPU; FP divisions occupy the unit for their latency);
* L2 accesses stall the core for ``l2_latency`` cycles, taken branches
  for ``jump_cycles``, dividers for their latency;
* barrier arrivals park the core in clock gating through the event unit;
  the last arrival releases the team after ``barrier_wakeup_cycles``;
* lock probes (critical sections) are TCDM reads on the lock's bank,
  retried every ``lock_retry_cycles`` — spinning burns real bank energy.

Cores outside the team stay clock-gated for the whole window.  When no
core can issue, the engine jumps straight to the next wake-up cycle, so
barrier-heavy and long-latency phases cost little host time.

Accounting invariant (checked by ``ClusterCounters.validate``): for every
team core, ``issue_cycles + stall_cycles + cg_cycles == window cycles``.
"""

from __future__ import annotations

from repro.compiler.lowering import LoweredProgram, lower_kernel
from repro.errors import SimulationError
from repro.ir.nodes import Kernel
from repro.isa.opcodes import (
    OP_ALU,
    OP_DIV,
    OP_DMA,
    OP_FDIV,
    OP_FP,
    OP_JMP,
    OP_LD,
    OP_LD2,
    OP_LOCK,
    OP_NOP,
    OP_ST,
    OP_ST2,
    OP_UNLOCK,
)
from repro.platform.config import ClusterConfig
from repro.sim.counters import BankCounters, ClusterCounters, CoreCounters

# Core scheduling states.
_RUN = 0
_STALL = 1
_BARRIER = 2
_DONE = 3

# Per-core counter slots (lists are faster than attribute access here).
_ALU, _JMPC, _DIVC, _FPC, _FPDIVC, _L1C, _L2C, _NOPC, _STALLC, _CGC = range(10)

_DEFAULT_MAX_CYCLES = 200_000_000


def run_lowered(lowered: LoweredProgram, config: ClusterConfig,
                trace=None, max_cycles: int | None = None) -> ClusterCounters:
    """Execute a lowered program and return the event counters."""
    n_cores = config.n_cores
    team = [c for c in range(n_cores) if lowered.programs[c]]
    if not team:
        raise SimulationError("lowered program has no active cores")
    limit = max_cycles if max_cycles is not None else _DEFAULT_MAX_CYCLES

    # --- mutable per-core state -------------------------------------------------
    status = [_DONE] * n_cores
    resume = [0] * n_cores
    iters: list = [None] * n_cores
    pending: list = [None] * n_cores
    seg_idx = [0] * n_cores
    sleep_from = [0] * n_cores
    finish = [0] * n_cores
    cnt = [[0] * 10 for _ in range(n_cores)]
    for c in team:
        status[c] = _RUN

    # --- shared resources ----------------------------------------------------------
    n_l1 = config.n_l1_banks
    n_l2 = config.n_l2_banks
    l1_stamp = [-1] * n_l1
    l2_stamp = [-1] * n_l2
    l1_reads = [0] * n_l1
    l1_writes = [0] * n_l1
    l1_conf = [0] * n_l1
    l2_reads = [0] * n_l2
    l2_writes = [0] * n_l2
    l2_conf = [0] * n_l2
    l2_busy_until = [0] * n_l2
    fpu_stamp = [-1] * config.n_fpus
    fpu_busy_until = [0] * config.n_fpus
    fpu_ops = [0] * config.n_fpus
    fpu_map = [config.fpu_of_core(c) for c in range(n_cores)]
    lock_holder: dict[int, int | None] = {}
    barrier_count: dict[int, int] = {}
    barrier_waiters: dict[int, list[int]] = {}
    icache_refills = 0
    dma_busy_until = 0
    dma_transfers = 0

    programs = lowered.programs
    barrier_team = lowered.barrier_team
    wakeup = config.barrier_wakeup_cycles
    jump_cycles = config.jump_cycles
    l2_latency = config.l2_latency
    l2_occupancy = config.l2_bank_occupancy
    div_latency = config.div_latency
    fpdiv_latency = config.fpdiv_latency
    lock_retry = config.lock_retry_cycles
    line_instrs = config.icache_line_instrs

    n_team = len(team)
    orders = [[team[(r + k) % n_team] for k in range(n_team)]
              for r in range(n_team)]

    done_count = 0
    cycle = 0
    tw = trace
    if tw is not None:
        tw.kernel_marker(0, "begin")

    while done_count < n_team:
        if cycle > limit:
            raise SimulationError(
                f"simulation of {lowered.kernel_name!r} exceeded "
                f"{limit} cycles (deadlock or runaway kernel)")
        any_run = False
        for c in orders[cycle % n_team]:
            st = status[c]
            if st == _STALL:
                if resume[c] > cycle:
                    continue
                st = status[c] = _RUN
            elif st != _RUN:
                continue

            ins = pending[c]
            ccnt = cnt[c]
            # -- fetch next instruction / advance segments -------------------
            if ins is None:
                while True:
                    it = iters[c]
                    if it is not None:
                        ins = next(it, None)
                        if ins is not None:
                            break
                        iters[c] = None
                        continue
                    segs = programs[c]
                    si = seg_idx[c]
                    if si >= len(segs):
                        status[c] = _DONE
                        finish[c] = cycle
                        done_count += 1
                        break
                    seg = segs[si]
                    seg_idx[c] = si + 1
                    if seg[0] == "r":
                        iters[c] = seg[1]()
                        lines = -(-seg[2] // line_instrs)
                        icache_refills += lines
                        if tw is not None:
                            tw.icache(cycle, "refill", lines)
                        continue
                    # barrier arrival: costs one ALU-class issue cycle
                    bid = seg[1]
                    ccnt[_ALU] += 1
                    if tw is not None:
                        tw.instr(cycle, c, OP_ALU, 1)
                    arrived = barrier_count.get(bid, 0) + 1
                    if arrived >= barrier_team[bid]:
                        barrier_count[bid] = 0
                        rel = cycle + wakeup
                        for w in barrier_waiters.pop(bid, ()):
                            status[w] = _STALL
                            resume[w] = rel
                            cnt[w][_CGC] += rel - sleep_from[w]
                            if tw is not None:
                                tw.core_state(rel, w, "cg_exit")
                        status[c] = _STALL
                        resume[c] = rel
                        ccnt[_STALLC] += wakeup - 1
                        if tw is not None and wakeup > 1:
                            tw.core_state(cycle, c, f"stall {wakeup - 1}")
                    else:
                        barrier_count[bid] = arrived
                        barrier_waiters.setdefault(bid, []).append(c)
                        status[c] = _BARRIER
                        sleep_from[c] = cycle + 1
                        if tw is not None:
                            tw.core_state(cycle + 1, c, "cg_enter")
                    any_run = True  # the arrival consumed this cycle
                    break
                if ins is None:
                    continue

            # -- dispatch ------------------------------------------------------
            op = ins[0]
            arg = ins[1]
            if op == OP_ALU:
                ccnt[_ALU] += arg
                pending[c] = None
                if arg > 1:
                    status[c] = _STALL
                    resume[c] = cycle + arg  # busy issuing, not waiting
                if tw is not None:
                    tw.instr(cycle, c, op, arg)
            elif op == OP_LD or op == OP_ST:
                if l1_stamp[arg] == cycle:
                    l1_conf[arg] += 1
                    ccnt[_STALLC] += 1
                    pending[c] = ins
                    if tw is not None:
                        tw.l1(cycle, arg, "conflict")
                        tw.core_state(cycle, c, "stall 1")
                else:
                    l1_stamp[arg] = cycle
                    ccnt[_L1C] += 1
                    pending[c] = None
                    if op == OP_LD:
                        l1_reads[arg] += 1
                    else:
                        l1_writes[arg] += 1
                    if tw is not None:
                        tw.instr(cycle, c, op, arg)
                        tw.l1(cycle, arg,
                              "read" if op == OP_LD else "write")
            elif op == OP_FP:
                f = fpu_map[c]
                if fpu_stamp[f] == cycle or fpu_busy_until[f] > cycle:
                    ccnt[_STALLC] += 1
                    pending[c] = ins
                    if tw is not None:
                        tw.core_state(cycle, c, "stall 1")
                else:
                    fpu_stamp[f] = cycle
                    fpu_ops[f] += 1
                    ccnt[_FPC] += 1
                    pending[c] = (OP_FP, arg - 1) if arg > 1 else None
                    if tw is not None:
                        tw.instr(cycle, c, op, 1)
            elif op == OP_JMP:
                ccnt[_JMPC] += arg
                extra = arg * (jump_cycles - 1)
                ccnt[_STALLC] += extra
                status[c] = _STALL
                resume[c] = cycle + arg * jump_cycles
                pending[c] = None
                if tw is not None:
                    tw.instr(cycle, c, op, arg)
                    if extra:
                        tw.core_state(cycle, c, f"stall {extra}")
            elif op == OP_NOP:
                ccnt[_NOPC] += arg
                pending[c] = None
                if arg > 1:
                    status[c] = _STALL
                    resume[c] = cycle + arg
                if tw is not None:
                    tw.instr(cycle, c, op, arg)
            elif op == OP_LD2 or op == OP_ST2:
                if l2_stamp[arg] == cycle or l2_busy_until[arg] > cycle:
                    l2_conf[arg] += 1
                    ccnt[_STALLC] += 1
                    pending[c] = ins
                    if tw is not None:
                        tw.l2(cycle, arg, "conflict")
                        tw.core_state(cycle, c, "stall 1")
                else:
                    l2_stamp[arg] = cycle
                    l2_busy_until[arg] = cycle + l2_occupancy
                    ccnt[_L2C] += 1
                    ccnt[_STALLC] += l2_latency - 1
                    status[c] = _STALL
                    resume[c] = cycle + l2_latency
                    pending[c] = None
                    if op == OP_LD2:
                        l2_reads[arg] += 1
                    else:
                        l2_writes[arg] += 1
                    if tw is not None:
                        tw.instr(cycle, c, op, arg)
                        tw.l2(cycle, arg,
                              "read" if op == OP_LD2 else "write")
                        tw.core_state(cycle, c, f"stall {l2_latency - 1}")
            elif op == OP_DIV:
                ccnt[_DIVC] += arg
                extra = arg * (div_latency - 1)
                ccnt[_STALLC] += extra
                status[c] = _STALL
                resume[c] = cycle + arg * div_latency
                pending[c] = None
                if tw is not None:
                    tw.instr(cycle, c, op, arg)
                    tw.core_state(cycle, c, f"stall {extra}")
            elif op == OP_FDIV:
                f = fpu_map[c]
                if fpu_stamp[f] == cycle or fpu_busy_until[f] > cycle:
                    ccnt[_STALLC] += 1
                    pending[c] = ins
                    if tw is not None:
                        tw.core_state(cycle, c, "stall 1")
                else:
                    fpu_stamp[f] = cycle
                    fpu_busy_until[f] = cycle + fpdiv_latency
                    fpu_ops[f] += 1
                    ccnt[_FPDIVC] += 1
                    ccnt[_STALLC] += fpdiv_latency - 1
                    status[c] = _STALL
                    resume[c] = cycle + fpdiv_latency
                    pending[c] = (OP_FDIV, arg - 1) if arg > 1 else None
                    if tw is not None:
                        tw.instr(cycle, c, op, 1)
                        tw.core_state(cycle, c,
                                      f"stall {fpdiv_latency - 1}")
            elif op == OP_LOCK:
                bank = arg & 0xFF
                lock_id = arg >> 8
                if l1_stamp[bank] == cycle:
                    l1_conf[bank] += 1
                    ccnt[_STALLC] += 1
                    pending[c] = ins
                    if tw is not None:
                        tw.l1(cycle, bank, "conflict")
                        tw.core_state(cycle, c, "stall 1")
                else:
                    l1_stamp[bank] = cycle
                    l1_reads[bank] += 1
                    ccnt[_L1C] += 1
                    if tw is not None:
                        tw.instr(cycle, c, op, arg)
                        tw.l1(cycle, bank, "read")
                    if lock_holder.get(lock_id) is None:
                        lock_holder[lock_id] = c
                        pending[c] = None
                    else:
                        ccnt[_STALLC] += lock_retry
                        status[c] = _STALL
                        resume[c] = cycle + 1 + lock_retry
                        pending[c] = ins  # re-probe after the backoff
                        if tw is not None:
                            tw.core_state(cycle, c, f"stall {lock_retry}")
            elif op == OP_DMA:
                # descriptor write, then sleep on the event unit until
                # the (single-channel) DMA finishes moving `arg` words
                ccnt[_ALU] += 1
                start = cycle + 1
                if dma_busy_until > start:
                    start = dma_busy_until
                done = start + arg
                dma_busy_until = done
                dma_transfers += arg
                ccnt[_CGC] += done - cycle - 1
                status[c] = _STALL
                resume[c] = done
                pending[c] = None
                if tw is not None:
                    tw.instr(cycle, c, op, arg)
                    tw.dma(cycle, arg)
                    if done > cycle + 1:
                        tw.core_state(cycle + 1, c, "cg_enter")
                        tw.core_state(done, c, "cg_exit")
            elif op == OP_UNLOCK:
                bank = arg & 0xFF
                lock_id = arg >> 8
                if l1_stamp[bank] == cycle:
                    l1_conf[bank] += 1
                    ccnt[_STALLC] += 1
                    pending[c] = ins
                    if tw is not None:
                        tw.l1(cycle, bank, "conflict")
                        tw.core_state(cycle, c, "stall 1")
                else:
                    l1_stamp[bank] = cycle
                    l1_writes[bank] += 1
                    ccnt[_L1C] += 1
                    if lock_holder.get(lock_id) != c:
                        raise SimulationError(
                            f"core {c} released lock {lock_id} it does "
                            f"not hold")
                    lock_holder[lock_id] = None
                    pending[c] = None
                    if tw is not None:
                        tw.instr(cycle, c, op, arg)
                        tw.l1(cycle, bank, "write")
            else:
                raise SimulationError(f"unknown opcode {op}")
            any_run = True

        if done_count >= n_team:
            break
        if any_run:
            cycle += 1
        else:
            next_wake = min((resume[c] for c in team
                             if status[c] == _STALL), default=-1)
            if next_wake < 0:
                raise SimulationError(
                    f"deadlock at cycle {cycle} in "
                    f"{lowered.kernel_name!r}: no runnable core and no "
                    f"pending wake-up")
            cycle = next_wake if next_wake > cycle else cycle + 1

    total = max(finish[c] for c in team)
    if tw is not None:
        tw.kernel_marker(total, "end")

    counters = ClusterCounters(
        n_cores=n_cores, n_l1_banks=n_l1, n_l2_banks=n_l2,
        n_fpus=config.n_fpus)
    counters.cycles = total
    team_set = set(team)
    for c in range(n_cores):
        k = cnt[c]
        core = CoreCounters(
            alu_ops=k[_ALU], jump_ops=k[_JMPC], div_ops=k[_DIVC],
            fp_ops=k[_FPC], fpdiv_ops=k[_FPDIVC], l1_ops=k[_L1C],
            l2_ops=k[_L2C], nop_ops=k[_NOPC], stall_cycles=k[_STALLC],
            cg_cycles=k[_CGC])
        if c in team_set:
            core.cg_cycles += total - finish[c]
            if tw is not None and total > finish[c]:
                tw.core_state(finish[c], c, "cg_enter")
                tw.core_state(total, c, "cg_exit")
        else:
            core.cg_cycles = total
            if tw is not None and total > 0:
                tw.core_state(0, c, "cg_enter")
                tw.core_state(total, c, "cg_exit")
        counters.cores[c] = core
    for b in range(n_l1):
        counters.l1_banks[b] = BankCounters(
            reads=l1_reads[b], writes=l1_writes[b], conflicts=l1_conf[b])
    for b in range(n_l2):
        counters.l2_banks[b] = BankCounters(
            reads=l2_reads[b], writes=l2_writes[b], conflicts=l2_conf[b])
    counters.fpu_ops = fpu_ops
    counters.icache_refills = icache_refills
    counters.icache_fetches = sum(core.issue_cycles
                                  for core in counters.cores)
    counters.dma_transfers = dma_transfers
    return counters


def simulate(kernel: Kernel, team_size: int,
             config: ClusterConfig | None = None, trace=None,
             backend: str = "codegen",
             max_cycles: int | None = None) -> ClusterCounters:
    """Lower *kernel* for *team_size* cores and simulate it."""
    config = config or ClusterConfig()
    lowered = lower_kernel(kernel, team_size, config, backend=backend)
    counters = run_lowered(lowered, config, trace=trace,
                           max_cycles=max_cycles)
    counters.validate()
    return counters
