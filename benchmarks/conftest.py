"""Benchmark fixtures.

The ``dataset`` fixture loads (or builds) the labelled dataset for the
active profile — ``paper`` by default, override with
``REPRO_PROFILE=quick`` for faster cold runs.  Heavy experiment results
are computed once per session and shared across benches.

Each bench regenerates one paper artefact, prints it, and writes it to
``results/<artefact>.txt`` so the numbers are inspectable after the run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figure2 import run_figure2
from repro.experiments.runner import load_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")

#: CV repeats used by the benches (override with REPRO_CV_REPEATS).
BENCH_REPEATS = max(1, int(os.environ.get("REPRO_CV_REPEATS", "5")))


def write_artifact(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[written to {os.path.relpath(path)}]")


@pytest.fixture(scope="session")
def dataset():
    return load_dataset()


_FIGURE2_CACHE: dict = {}


@pytest.fixture(scope="session")
def figure2_left(dataset):
    if "left" not in _FIGURE2_CACHE:
        _FIGURE2_CACHE["left"] = run_figure2(dataset, "left",
                                             repeats=BENCH_REPEATS)
    return _FIGURE2_CACHE["left"]


@pytest.fixture(scope="session")
def figure2_right(dataset):
    if "right" not in _FIGURE2_CACHE:
        _FIGURE2_CACHE["right"] = run_figure2(dataset, "right",
                                              repeats=BENCH_REPEATS)
    return _FIGURE2_CACHE["right"]
