"""Experiment drivers regenerating the paper's tables and figures.

Experiment index (see DESIGN.md):

* E1 — Figure 2 left: accuracy vs energy tolerance for static-agg,
  static-opt, dynamic, dynamic-opt and the always-8 baseline;
* E2 — Figure 2 right: static feature-set exploration;
* E3 — Table IV: most relevant dynamic and static features;
* E4 — §IV.B dataset statistics (class balance);
* E7 — headline scalar claims;
* A1/A2 — our ablations (energy model sensitivity, pruning sweep).
"""

from repro.experiments.runner import load_dataset
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.dataset_stats import DatasetStats, run_dataset_stats
from repro.experiments.headline import HeadlineResult, run_headline

__all__ = [
    "load_dataset",
    "Figure2Result",
    "run_figure2",
    "Table4Result",
    "run_table4",
    "DatasetStats",
    "run_dataset_stats",
    "HeadlineResult",
    "run_headline",
]
