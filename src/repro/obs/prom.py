"""Prometheus text-format exposition for registry snapshots.

:func:`render_prometheus` turns a series list (one registry snapshot's
``"series"``, or the output of :func:`repro.obs.metrics.merge_series`)
into the Prometheus text exposition format (version 0.0.4), so
``repro fleet metrics --prom`` can feed any scraper.  Histograms
render with the cumulative ``_bucket{le=...}`` convention (including
the mandatory ``+Inf`` bucket) plus ``_sum`` / ``_count``; counters
gain the conventional ``# TYPE`` metadata per metric name.
"""

from __future__ import annotations

import re

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name) -> str:
    name = str(name)
    if _NAME_OK.match(name):
        return name
    name = _NAME_FIX.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _label_value(value) -> str:
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(labels: dict, extra: dict | None = None) -> str:
    pairs = dict(labels or {})
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{_metric_name(key)}="{_label_value(value)}"'
        for key, value in sorted(pairs.items()))
    return "{" + body + "}"


def _number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(series) -> str:
    """Render a series list as Prometheus text exposition.

    Rows sharing a metric name emit one ``# TYPE`` header (first kind
    wins); malformed rows are skipped rather than corrupting the
    scrape.  The returned text ends with a newline, as scrapers
    expect.
    """
    lines: list = []
    typed: set = set()
    for row in series or []:
        if not isinstance(row, dict):
            continue
        name = row.get("name")
        kind = row.get("kind")
        if not name or kind not in ("counter", "gauge", "histogram"):
            continue
        name = _metric_name(name)
        labels = row.get("labels") or {}
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_labels(labels)} "
                         f"{_number(row.get('value', 0))}")
            continue
        bounds = row.get("bounds") or []
        counts = row.get("counts") or []
        cumulative = 0
        for idx, bound in enumerate(bounds):
            cumulative += counts[idx] if idx < len(counts) else 0
            lines.append(
                f"{name}_bucket"
                f"{_labels(labels, {'le': _number(bound)})} "
                f"{cumulative}")
        total = row.get("count", 0)
        lines.append(f"{name}_bucket{_labels(labels, {'le': '+Inf'})} "
                     f"{_number(total)}")
        lines.append(f"{name}_sum{_labels(labels)} "
                     f"{_number(row.get('sum', 0.0))}")
        lines.append(f"{name}_count{_labels(labels)} {_number(total)}")
    return "\n".join(lines) + "\n" if lines else ""
