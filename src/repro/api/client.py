"""Wire client for the persistent scoring daemon.

:class:`ScoringClient` speaks the JSON-lines protocol of
:mod:`repro.api.protocol` over a Unix domain socket or TCP connection
to a :class:`repro.api.daemon.ScoringDaemon`.  Every request is stamped
with a monotonically increasing ``"id"`` and the response id is checked
against it, so a desynchronized stream surfaces as a loud
:class:`repro.errors.ScoringError` instead of silently mis-pairing
answers.  Typed error frames from the daemon raise
:class:`ScoringError` with the frame's machine-readable ``code``.

A daemon restart mid-session (``ConnectionResetError`` /
``BrokenPipeError`` / EOF before a response) is retried once on a
fresh connection by default (``reconnect_retries``); requests are
idempotent reads, so the retry is safe, and a daemon that stays down
surfaces as one clean ``ScoringError(code="transport")`` — never a raw
``OSError``.  Response lines are bounded by
:data:`repro.api.protocol.MAX_RESPONSE_BYTES`, mirroring the server's
request guard, so a misbehaving server cannot grow the receive buffer
without limit.

**Sharded endpoints** (see :mod:`repro.api.shard`): when the unix
``socket_path`` turns out to be a shard *registry* rather than a
socket, the client picks a shard from it — rotating across
(re)connections — and reconnect-with-retry re-reads the registry, so a
request retried after a shard crash lands on a live shard.  Sharded
TCP endpoints need nothing: the kernel balances ``SO_REUSEPORT``
listeners behind the one port.

**Codecs** (see :mod:`repro.api.wire`): with ``codec="binary-v2"``
(or ``"binary-v1"``) the client opens every (re)connection with a
``{"cmd": "hello", "codecs": [...]}`` handshake and — when the server
agrees — switches to the length-prefixed binary codec: feature rows
travel as packed float32 arrays and predictions come back as packed
ints, with every cold verb and error shape embedded as JSON frames
inside the binary framing.  A ``binary-v2`` preference offers
``["binary-v2", "binary-v1"]`` so older servers land on v1; servers
that predate codecs (or were started JSON-only) answer the hello with
an error or a ``json`` choice and the client simply stays on JSON —
requesting a binary codec is always safe.  Reconnects re-negotiate
from scratch and pending requests are re-encoded in whatever codec
the new connection agreed to.

**Pipelining**: :meth:`request_pipelined` /
:meth:`predict_pipelined` keep up to ``window`` requests in flight on
the one connection, completing them out of order by id — this is what
feeds the daemon's micro-batch coalescing from a single client and is
several times faster than sequential single rows (see
``BENCH_pipeline.json``).

Usage::

    with ScoringClient(socket_path="/tmp/repro.sock") as client:
        client.predict({"op": 3072.0, ...})     # feature mapping
        client.predict_kernel("gemm", size=512)  # registry kernel
        client.predict_batch(rows)               # (n, n_features) rows
        client.predict_pipelined(rows)           # n single rows, 1 conn
        client.info()                            # loaded-model summary
        client.stats()                           # server stats tree

Against a fleet daemon (see :mod:`repro.api.fleet`) every scoring verb
accepts ``model="family:feature_set[:dataset_tag]"`` to pick the
serving model per request.  The admin/ops verbs (stats, model
management, drain/health/promote) live on the typed
:class:`repro.api.admin.AdminClient` surface; the historical
:meth:`ScoringClient.stats` / :meth:`ScoringClient.list_models` /
:meth:`ScoringClient.load_model` / :meth:`ScoringClient.evict_model`
methods survive as delegating shims that emit ``DeprecationWarning``.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import warnings
from collections import deque

import numpy as np

from repro.api.protocol import ERROR_DRAINING, MAX_RESPONSE_BYTES
from repro.api.wire import (
    BINARY_V2_CODEC,
    CODEC_BINARY,
    CODEC_BINARY_V2,
    CODEC_JSON,
    CODECS,
    JSON_CODEC,
)
from repro.errors import ScoringError

#: raised (as ScoringError.code) on response-id mismatches.
ERROR_ID_MISMATCH = "id_mismatch"
#: raised (as ScoringError.code) on transport-level failures.
ERROR_TRANSPORT = "transport"

#: default bound on in-flight pipelined requests per connection.
DEFAULT_PIPELINE_WINDOW = 32


class ScoringClient:
    """One connection to a scoring daemon; thread-safe request pairing.

    Exactly one endpoint must be given: ``socket_path`` (Unix domain
    socket, or a shard registry written by
    :class:`repro.api.shard.ShardManager`) or ``tcp`` (a
    ``(host, port)`` pair).  The connection opens eagerly so a bad
    endpoint fails at construction, not first use.
    ``reconnect_retries`` bounds how many fresh connections a single
    request (or pipelined batch) may try after the daemon drops the
    current one (0 disables reconnection).
    """

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        timeout: float = 30.0,
        reconnect_retries: int = 1,
        codec: str = CODEC_JSON,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ScoringError(
                "configure exactly one endpoint: socket_path=PATH or "
                "tcp=(host, port)",
                code=ERROR_TRANSPORT,
            )
        if reconnect_retries < 0:
            raise ScoringError(
                f"reconnect_retries must be >= 0, got {reconnect_retries}",
                code=ERROR_TRANSPORT,
            )
        if codec not in CODECS:
            raise ScoringError(
                f"unknown codec {codec!r}; this client speaks "
                f"{sorted(CODECS)}",
                code=ERROR_TRANSPORT,
            )
        self._codec_pref = codec
        # the hello offer list, most-preferred first: asking for v2
        # also offers v1 so an older server still upgrades the
        # connection as far as it can
        if codec == CODEC_BINARY_V2:
            self._codec_offers = [CODEC_BINARY_V2, CODEC_BINARY]
        else:
            self._codec_offers = [codec]
        self._codec = JSON_CODEC  # pre-negotiation state
        self._socket_path = socket_path
        self._tcp = tuple(tcp) if tcp is not None else None
        self._timeout = timeout
        self._reconnect_retries = reconnect_retries
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._dead = True  # no live connection yet
        self._rbuf = bytearray()
        # sharded unix endpoints rotate across candidate shards; the
        # start offset spreads independent clients over the fleet
        self._rotation = int.from_bytes(os.urandom(2), "big")
        self._sock = self._connect()

    # -- connection management ---------------------------------------------

    def _candidate_endpoints(self) -> list:
        """Concrete endpoints behind the configured one, in try-order.

        A unix ``socket_path`` that holds a shard registry (see
        :mod:`repro.api.shard`) expands to the shard socket paths; the
        registry is re-read on every (re)connect, so crashed or
        re-sharded deployments are picked up without restarting the
        client.
        """
        if self._socket_path is None:
            return [("tcp", self._tcp)]
        if os.path.isfile(self._socket_path):
            from repro.api.shard import read_registry

            shards = read_registry(self._socket_path)
            if shards:
                return [("unix", shard["path"]) for shard in shards]
        return [("unix", self._socket_path)]

    def _connect(self) -> socket.socket:
        """Open one connection, trying every candidate shard once."""
        candidates = self._candidate_endpoints()
        start = self._rotation
        self._rotation += 1
        last_error: OSError | None = None
        last_endpoint: object = None
        for offset in range(len(candidates)):
            kind, target = candidates[(start + offset) % len(candidates)]
            if kind == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                endpoint: object = target
            else:
                host, port = target
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                endpoint = (host, int(port))
            sock.settimeout(self._timeout)
            try:
                sock.connect(endpoint)
            except OSError as exc:
                sock.close()
                last_error, last_endpoint = exc, endpoint
                continue
            self._rbuf.clear()
            self._dead = False
            self._sock = sock
            self._codec = JSON_CODEC
            if self._codec_pref != CODEC_JSON:
                try:
                    self._negotiate()
                except OSError as exc:
                    # the daemon dropped us mid-handshake: treat like a
                    # failed connect and move to the next candidate
                    self._teardown_connection()
                    last_error, last_endpoint = exc, endpoint
                    continue
            return sock
        raise ScoringError(
            f"cannot connect to scoring daemon at {last_endpoint!r}: "
            f"{last_error}",
            code=ERROR_TRANSPORT,
        )

    def _negotiate(self) -> None:
        """The hello handshake: offer the preferred codec, adopt the
        server's choice.

        Always spoken in JSON (the pre-negotiation floor).  A server
        that predates codecs answers a typed error frame, and a server
        configured JSON-only answers ``{"codec": "json"}`` — in both
        cases the client simply keeps speaking JSON, so requesting a
        codec never breaks compatibility.
        """
        req_id = self._next_id
        self._next_id += 1
        hello = {"cmd": "hello", "codecs": list(self._codec_offers),
                 "id": req_id}
        self._sock.sendall(JSON_CODEC.encode_request(hello))
        line = self._recv_line()
        if not line:
            raise ConnectionResetError(
                "connection closed during codec negotiation")
        try:
            response = json.loads(line)
        except ValueError:
            response = None
        if (isinstance(response, dict) and response.get("ok")
                and response.get("id") == req_id
                and response.get("codec") in CODECS):
            self._codec = CODECS[response["codec"]]

    def _recv_line(self) -> bytes:
        """One newline-terminated response frame; ``b""`` on EOF.

        A hand-rolled buffer instead of ``makefile().readline()`` —
        the buffered-text layer costs real microseconds on the
        daemon's hot single-row path.  Mirrors the server's request
        guard: a response growing past
        :data:`~repro.api.protocol.MAX_RESPONSE_BYTES` without a
        newline tears the connection down and raises cleanly.
        """
        while True:
            idx = self._rbuf.find(b"\n")
            if idx >= 0:
                line = bytes(self._rbuf[: idx + 1])
                del self._rbuf[: idx + 1]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                return b""
            self._rbuf += chunk
            if len(self._rbuf) > MAX_RESPONSE_BYTES:
                self._teardown_connection()
                raise ScoringError(
                    f"daemon streamed more than {MAX_RESPONSE_BYTES} "
                    f"bytes without a newline; closing the "
                    f"desynchronized connection",
                    code=ERROR_TRANSPORT,
                )

    def _recv_frame(self) -> bytes:
        """One response frame in the active codec; ``b""`` on EOF.

        JSON connections read newline-terminated lines; binary
        connections read a 5-byte header (u32 length + u8 type) and
        the declared payload, bounded by the same response guard.
        """
        if self._codec.name == CODEC_JSON:
            return self._recv_line()
        while True:
            if len(self._rbuf) >= 5:
                length = int.from_bytes(self._rbuf[:4], "little")
                if length > MAX_RESPONSE_BYTES:
                    self._teardown_connection()
                    raise ScoringError(
                        f"daemon announced a {length}-byte binary "
                        f"frame; the protocol accepts at most "
                        f"{MAX_RESPONSE_BYTES}",
                        code=ERROR_TRANSPORT,
                    )
                total = 5 + length
                if len(self._rbuf) >= total:
                    raw = bytes(self._rbuf[4:total])
                    del self._rbuf[:total]
                    return raw
            chunk = self._sock.recv(65536)
            if not chunk:
                return b""
            self._rbuf += chunk

    def _teardown_connection(self) -> None:
        # leaves the client re-dialable: the next request re-connects
        # lazily (see the _dead checks in the request paths)
        self._dead = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._rbuf.clear()
        self._codec = JSON_CODEC  # a fresh connection re-negotiates

    # -- plumbing ----------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request frame, await and validate its response.

        Returns the decoded success frame.  Raises
        :class:`ScoringError` on typed error frames (carrying the
        daemon's ``code``), on response-id mismatches and on transport
        failures.  A dropped connection (reset, broken pipe, EOF
        before any response byte) is transparently retried on a fresh
        connection up to ``reconnect_retries`` times.
        """
        with self._lock:
            if self._closed:
                raise ScoringError("client is closed", code=ERROR_TRANSPORT)
            req_id = self._next_id
            self._next_id += 1
            frame = dict(payload)
            frame["id"] = req_id
            response = None
            for attempt in range(self._reconnect_retries + 1):
                try:
                    if self._dead:
                        # a prior teardown (desync guard, drop) left no
                        # live connection: dial fresh before sending
                        self._sock = self._connect()
                    # encoded per attempt: a reconnect re-negotiates,
                    # so the retry must speak the new connection's codec
                    self._sock.sendall(self._codec.encode_request(frame))
                    line = self._recv_frame()
                except (ConnectionResetError, BrokenPipeError) as exc:
                    # the daemon went away mid-request (restart? shard
                    # crash?): one clean retry on a fresh connection —
                    # re-resolved through the shard registry when one
                    # is configured — then give up
                    self._teardown_connection()
                    if attempt >= self._reconnect_retries:
                        raise ScoringError(
                            f"connection to the daemon was dropped "
                            f"({exc}) and was not recovered after "
                            f"{attempt + 1} attempt(s)",
                            code=ERROR_TRANSPORT,
                            request_id=req_id,
                        )
                    self._sock = self._connect()
                    continue
                except ScoringError:
                    raise
                except OSError as exc:
                    # timeouts and other socket errors may leave the
                    # response queued: the stream cannot be trusted, so
                    # tear it down (the next request re-dials)
                    self._teardown_connection()
                    raise ScoringError(
                        f"transport failure talking to the daemon: {exc}",
                        code=ERROR_TRANSPORT,
                        request_id=req_id,
                    )
                if not line:
                    # EOF before a response: same story as a reset
                    self._teardown_connection()
                    if attempt >= self._reconnect_retries:
                        raise ScoringError(
                            "connection closed by the daemon before a "
                            "response arrived",
                            code=ERROR_TRANSPORT,
                            request_id=req_id,
                        )
                    self._sock = self._connect()
                    continue
                try:
                    response = self._codec.decode_response(line)
                except ValueError as exc:
                    raise ScoringError(
                        f"daemon sent an undecodable frame: {exc}",
                        code=ERROR_TRANSPORT,
                        request_id=req_id,
                    )
                if (isinstance(response, dict)
                        and not response.get("ok")
                        and response.get("code") == ERROR_DRAINING
                        and attempt < self._reconnect_retries):
                    # a draining server refuses new scoring work with a
                    # typed frame; reconnect — re-resolved through the
                    # shard registry — and resend on a live sibling.
                    # the refusal is an idempotent no-op server-side,
                    # so the resend is as safe as a reconnect retry
                    self._teardown_connection()
                    self._sock = self._connect()
                    continue
                break
        if not isinstance(response, dict):
            raise ScoringError(
                "daemon sent a non-object frame",
                code=ERROR_TRANSPORT,
                request_id=req_id,
            )
        if not response.get("ok") and "id" not in response:
            # an error frame may legitimately lack an id (the daemon
            # could not decode the request far enough to find one);
            # surface the daemon's code rather than an id mismatch
            raise ScoringError(
                str(response.get("error", "unspecified daemon error")),
                code=response.get("code"),
                request_id=req_id,
            )
        if response.get("id") != req_id:
            with self._lock:
                self._teardown_connection()  # desynchronized stream
            raise ScoringError(
                f"response id {response.get('id')!r} does not match "
                f"request id {req_id!r}; stream is desynchronized",
                code=ERROR_ID_MISMATCH,
                request_id=req_id,
            )
        if not response.get("ok"):
            raise ScoringError(
                str(response.get("error", "unspecified daemon error")),
                code=response.get("code"),
                request_id=req_id,
            )
        return response

    def request_pipelined(
        self,
        payloads,
        window: int = DEFAULT_PIPELINE_WINDOW,
    ) -> list:
        """Send many requests with up to *window* in flight at once.

        Responses may complete **out of order** (the daemon's event
        loop answers coalesced fast-path rows and worker-pool verbs as
        they finish); each is paired back to its request by id.
        Returns the decoded response frames in *request* order — typed
        error frames are returned in place, not raised, so one bad
        request mid-pipeline does not discard the others' results
        (:meth:`predict_pipelined` layers raising semantics on top).

        Transport failures behave like :meth:`request`: a dropped
        connection is re-dialed (through the shard registry when one
        is configured) up to ``reconnect_retries`` times and every
        request still unanswered is resent — requests are idempotent
        reads, so replaying them is safe.  A frame that cannot be
        paired to an in-flight id raises ``id_mismatch``.
        """
        if window < 1:
            raise ScoringError(
                f"window must be >= 1, got {window}",
                code=ERROR_TRANSPORT,
            )
        payloads = list(payloads)
        if not payloads:
            return []
        with self._lock:
            if self._closed:
                raise ScoringError("client is closed", code=ERROR_TRANSPORT)
            frames: list = []
            ids: list = []
            for payload in payloads:
                req_id = self._next_id
                self._next_id += 1
                frame = dict(payload)
                frame["id"] = req_id
                frames.append(frame)
                ids.append(req_id)
            codec = self._codec
            wires = [codec.encode_request(frame) for frame in frames]
            results: list = [None] * len(payloads)
            to_send: deque = deque(range(len(payloads)))
            in_flight: dict = {}  # req_id -> payload index
            drops = 0
            done = 0
            while done < len(payloads):
                try:
                    if self._dead:
                        self._sock = self._connect()
                        if self._codec is not codec:
                            # the fresh connection negotiated a
                            # different codec: re-encode what is left
                            codec = self._codec
                            wires = [codec.encode_request(frame)
                                     for frame in frames]
                    while to_send and len(in_flight) < window:
                        index = to_send.popleft()
                        in_flight[ids[index]] = index
                        self._sock.sendall(wires[index])
                    line = self._recv_frame()
                except (ConnectionResetError, BrokenPipeError) as exc:
                    drops += 1
                    self._teardown_connection()
                    if drops > self._reconnect_retries:
                        raise ScoringError(
                            f"connection to the daemon was dropped "
                            f"({exc}) and was not recovered after "
                            f"{drops} attempt(s)",
                            code=ERROR_TRANSPORT,
                        )
                    self._requeue_in_flight(in_flight, to_send)
                    # the loop top re-dials (and re-encodes the
                    # remaining wires if the codec changed)
                    continue
                except ScoringError:
                    raise
                except OSError as exc:
                    self._teardown_connection()
                    raise ScoringError(
                        f"transport failure talking to the daemon: {exc}",
                        code=ERROR_TRANSPORT,
                    )
                if not line:
                    drops += 1
                    self._teardown_connection()
                    if drops > self._reconnect_retries:
                        raise ScoringError(
                            "connection closed by the daemon before "
                            "every pipelined response arrived",
                            code=ERROR_TRANSPORT,
                        )
                    self._requeue_in_flight(in_flight, to_send)
                    # the loop top re-dials (and re-encodes the
                    # remaining wires if the codec changed)
                    continue
                try:
                    response = codec.decode_response(line)
                except ValueError as exc:
                    self._teardown_connection()
                    raise ScoringError(
                        f"daemon sent an undecodable frame: {exc}",
                        code=ERROR_TRANSPORT,
                    )
                if not isinstance(response, dict):
                    self._teardown_connection()
                    raise ScoringError(
                        "daemon sent a non-object frame",
                        code=ERROR_TRANSPORT,
                    )
                index = in_flight.pop(response.get("id"), None)
                if index is None:
                    # in-flight responses are abandoned either way, so
                    # the stream cannot be reused: tear it down before
                    # raising (the next request() dials fresh)
                    self._teardown_connection()
                    if not response.get("ok") and "id" not in response:
                        # an error frame may legitimately lack an id
                        # (e.g. the server's flood guard could not
                        # decode far enough to find one): surface the
                        # daemon's code, not a spurious id mismatch
                        raise ScoringError(
                            str(response.get("error", "unspecified daemon error")),
                            code=response.get("code"),
                        )
                    raise ScoringError(
                        f"response id {response.get('id')!r} does not "
                        f"match any in-flight pipelined request; stream "
                        f"is desynchronized",
                        code=ERROR_ID_MISMATCH,
                    )
                if (not response.get("ok")
                        and response.get("code") == ERROR_DRAINING):
                    # the shard started draining mid-pipeline: every
                    # still-unanswered request (this one included) is
                    # requeued and the stream moves to a live sibling
                    # through the registry — a drain must read as a
                    # hand-off, not as request failures
                    drops += 1
                    self._teardown_connection()
                    if drops > self._reconnect_retries:
                        raise ScoringError(
                            "the server kept draining and no live "
                            "sibling answered within "
                            f"{drops} reconnect attempt(s)",
                            code=ERROR_DRAINING,
                        )
                    in_flight[ids[index]] = index
                    self._requeue_in_flight(in_flight, to_send)
                    continue
                results[index] = response
                done += 1
            return results

    @staticmethod
    def _requeue_in_flight(in_flight: dict, to_send: deque) -> None:
        """Schedule every unanswered request for resend, oldest first."""
        for index in sorted(in_flight.values(), reverse=True):
            to_send.appendleft(index)
        in_flight.clear()

    @staticmethod
    def _with_model(payload: dict, model: str | None) -> dict:
        if model is not None:
            payload["model"] = str(model)
        return payload

    def _features_payload(self, features, model: str | None = None) -> dict:
        if hasattr(features, "keys"):
            payload = {"features": {k: float(v) for k, v in features.items()}}
        elif type(features) is list and all(
            type(v) is float for v in features
        ):
            payload = {"features": features}  # already JSON-ready
        else:
            payload = {"features": [float(v) for v in features]}
        return self._with_model(payload, model)

    # -- scoring verbs -----------------------------------------------------

    def predict(self, features, model: str | None = None) -> int:
        """Score one feature mapping or feature vector."""
        response = self.request(self._features_payload(features, model))
        return int(response["prediction"])

    def predict_pipelined(
        self,
        rows,
        model: str | None = None,
        window: int = DEFAULT_PIPELINE_WINDOW,
    ) -> list:
        """Score many single rows with up to *window* in flight.

        The single-connection streaming workhorse: unlike
        :meth:`predict_batch` (one big request) the rows travel as
        individual protocol requests, so the daemon's event loop
        coalesces them adaptively alongside other clients' traffic —
        and unlike looping :meth:`predict` the connection is never
        idle waiting for a round trip.  Returns predictions in row
        order; the first typed error frame raises
        :class:`ScoringError` with the daemon's code.

        On a negotiated ``binary-v2`` connection, default-model vector
        rows skip per-request dicts entirely: the in-flight window is
        flushed as packed multi-row ``PREDICT_STREAM`` frames built
        straight from ``(req_id, f32 row)`` arrays, and packed
        ``PREDICTIONS_STREAM`` responses are paired back by id — a
        handful of syscalls per window instead of one per row.
        """
        if window < 1:
            raise ScoringError(
                f"window must be >= 1, got {window}",
                code=ERROR_TRANSPORT,
            )
        rows = list(rows)
        if not rows:
            return []
        if (model is None and self._codec.name == CODEC_BINARY_V2
                and not any(hasattr(row, "keys") for row in rows)):
            try:
                matrix = np.ascontiguousarray(rows, dtype="<f4")
            except (TypeError, ValueError):
                matrix = None
            if matrix is not None and matrix.ndim == 2:
                results, remaining = self._stream_pipelined(matrix,
                                                            window)
                if remaining:
                    # a reconnect negotiated away from binary-v2 (an
                    # older or json-only replacement server): finish
                    # the leftover rows as classic per-request frames
                    # — same f32 values, so predictions are identical
                    payloads = [
                        {"features":
                         matrix[index].astype(np.float64).tolist()}
                        for index in remaining]
                    frames = self.request_pipelined(payloads,
                                                    window=window)
                    for index, frame in zip(remaining, frames):
                        if not frame.get("ok"):
                            raise ScoringError(
                                str(frame.get(
                                    "error",
                                    "unspecified daemon error")),
                                code=frame.get("code"),
                                request_id=frame.get("id"),
                            )
                        results[index] = int(frame["prediction"])
                return results
        payloads = [self._features_payload(row, model) for row in rows]
        frames = self.request_pipelined(payloads, window=window)
        predictions: list = []
        for frame in frames:
            if not frame.get("ok"):
                raise ScoringError(
                    str(frame.get("error", "unspecified daemon error")),
                    code=frame.get("code"),
                    request_id=frame.get("id"),
                )
            predictions.append(int(frame["prediction"]))
        return predictions

    def _stream_pipelined(self, matrix, window: int) -> tuple:
        """The ``binary-v2`` pipelined engine: the in-flight window
        travels as packed multi-row stream frames.

        Returns ``(results, remaining)``: *results* holds a prediction
        at every answered index, *remaining* lists indexes left
        unanswered because a reconnect negotiated a different codec
        (the caller finishes those generically).  Transport failures,
        drains and id mismatches behave exactly like
        :meth:`request_pipelined`; the first typed per-row error
        raises.
        """
        n = len(matrix)
        with self._lock:
            if self._closed:
                raise ScoringError("client is closed",
                                   code=ERROR_TRANSPORT)
            base = self._next_id
            self._next_id += n
            ids = np.arange(base, base + n, dtype="<i8")
            results: list = [None] * n
            to_send: deque = deque(range(n))
            in_flight: dict = {}  # req_id -> row index
            drops = 0
            done = 0
            while done < n:
                try:
                    if self._dead:
                        self._sock = self._connect()
                        if self._codec.name != CODEC_BINARY_V2:
                            break  # finish generically (see caller)
                    if to_send and len(in_flight) < window:
                        # flush the free window as ONE stream frame
                        take = min(window - len(in_flight),
                                   len(to_send))
                        indices = [to_send.popleft()
                                   for _ in range(take)]
                        for index in indices:
                            in_flight[base + index] = index
                        self._sock.sendall(
                            BINARY_V2_CODEC.encode_predict_stream(
                                ids[indices], matrix[indices]))
                    raw = self._recv_frame()
                except (ConnectionResetError, BrokenPipeError) as exc:
                    drops += 1
                    self._teardown_connection()
                    if drops > self._reconnect_retries:
                        raise ScoringError(
                            f"connection to the daemon was dropped "
                            f"({exc}) and was not recovered after "
                            f"{drops} attempt(s)",
                            code=ERROR_TRANSPORT,
                        )
                    self._requeue_in_flight(in_flight, to_send)
                    continue
                except ScoringError:
                    raise
                except OSError as exc:
                    self._teardown_connection()
                    raise ScoringError(
                        f"transport failure talking to the daemon: "
                        f"{exc}",
                        code=ERROR_TRANSPORT,
                    )
                if not raw:
                    drops += 1
                    self._teardown_connection()
                    if drops > self._reconnect_retries:
                        raise ScoringError(
                            "connection closed by the daemon before "
                            "every pipelined response arrived",
                            code=ERROR_TRANSPORT,
                        )
                    self._requeue_in_flight(in_flight, to_send)
                    continue
                try:
                    response = self._codec.decode_response(raw)
                except ValueError as exc:
                    self._teardown_connection()
                    raise ScoringError(
                        f"daemon sent an undecodable frame: {exc}",
                        code=ERROR_TRANSPORT,
                    )
                if not isinstance(response, dict):
                    self._teardown_connection()
                    raise ScoringError(
                        "daemon sent a non-object frame",
                        code=ERROR_TRANSPORT,
                    )
                stream = response.get("stream")
                if stream is not None:
                    # one packed frame completes a whole chunk of ids
                    for rid, prediction in zip(stream[0].tolist(),
                                               stream[1].tolist()):
                        index = in_flight.pop(rid, None)
                        if index is None:
                            self._teardown_connection()
                            raise ScoringError(
                                f"stream response id {rid!r} does not "
                                f"match any in-flight pipelined "
                                f"request; stream is desynchronized",
                                code=ERROR_ID_MISMATCH,
                            )
                        results[index] = prediction
                        done += 1
                    continue
                index = in_flight.pop(response.get("id"), None)
                if index is None:
                    self._teardown_connection()
                    if not response.get("ok") and "id" not in response:
                        raise ScoringError(
                            str(response.get(
                                "error", "unspecified daemon error")),
                            code=response.get("code"),
                        )
                    raise ScoringError(
                        f"response id {response.get('id')!r} does not "
                        f"match any in-flight pipelined request; "
                        f"stream is desynchronized",
                        code=ERROR_ID_MISMATCH,
                    )
                if (not response.get("ok")
                        and response.get("code") == ERROR_DRAINING):
                    # rows refused by a draining shard requeue (this
                    # one included) and move to a live sibling
                    drops += 1
                    self._teardown_connection()
                    if drops > self._reconnect_retries:
                        raise ScoringError(
                            "the server kept draining and no live "
                            "sibling answered within "
                            f"{drops} reconnect attempt(s)",
                            code=ERROR_DRAINING,
                        )
                    in_flight[base + index] = index
                    self._requeue_in_flight(in_flight, to_send)
                    continue
                if not response.get("ok"):
                    raise ScoringError(
                        str(response.get("error",
                                         "unspecified daemon error")),
                        code=response.get("code"),
                        request_id=response.get("id"),
                    )
                results[index] = int(response["prediction"])
                done += 1
            remaining = sorted(set(in_flight.values()) | set(to_send))
            return results, remaining

    def predict_kernel(
        self,
        name: str,
        dtype: str = "int32",
        size: int = 2048,
        model: str | None = None,
    ) -> int:
        """Score a registry kernel built server-side."""
        payload = {"kernel": name, "dtype": dtype, "size": size}
        response = self.request(self._with_model(payload, model))
        return int(response["prediction"])

    def predict_batch(self, rows, model: str | None = None) -> list:
        """Score many pre-assembled feature vectors in one round trip.

        On a negotiated binary connection an ndarray travels as one
        contiguous float32 matrix — no per-row Python lists are built
        on either side of the wire.
        """
        if (model is None and hasattr(rows, "ndim")
                and self._codec.name != CODEC_JSON):
            payload: dict = {"rows": rows}
        else:
            if hasattr(rows, "tolist"):
                rows = rows.tolist()
            encoded = [[float(v) for v in row] for row in rows]
            payload = self._with_model({"rows": encoded}, model)
        return [int(p) for p in self.request(payload)["predictions"]]

    def info(self, model: str | None = None) -> dict:
        """The daemon's loaded-model summary (family, features, versions)."""
        payload = self._with_model({"cmd": "info"}, model)
        return dict(self.request(payload)["info"])

    # -- deprecated admin shims --------------------------------------------
    #
    # the admin/ops verbs moved to the typed surface in
    # repro.api.admin.AdminClient; these shims delegate there (imported
    # lazily — admin imports this module) and keep the historical dict
    # shapes for one deprecation cycle.

    def _admin(self):
        from repro.api.admin import AdminClient

        return AdminClient(self)

    def stats(self) -> dict:
        """Deprecated: use :meth:`repro.api.admin.AdminClient.stats`.

        Same wire verb and payload — the AdminClient surface adds the
        typed health/fleet results and the fleet-ops verbs.
        """
        warnings.warn(
            "ScoringClient.stats() is deprecated; use "
            "repro.api.admin.AdminClient.stats()",
            DeprecationWarning, stacklevel=2,
        )
        return self._admin().stats()

    def list_models(self) -> dict:
        """Deprecated: use :meth:`repro.api.admin.AdminClient.list_models`.

        Returns the historical ``{"models": [...], "stats": {...}}``
        dict shape; the AdminClient returns a typed
        :class:`repro.api.admin.ModelListing` instead.
        """
        warnings.warn(
            "ScoringClient.list_models() is deprecated; use "
            "repro.api.admin.AdminClient.list_models()",
            DeprecationWarning, stacklevel=2,
        )
        listing = self._admin().list_models()
        return {
            "models": [info.as_row() for info in listing.models],
            "stats": dict(listing.stats),
        }

    def load_model(self, model: str) -> str:
        """Deprecated: use :meth:`repro.api.admin.AdminClient.load_model`."""
        warnings.warn(
            "ScoringClient.load_model() is deprecated; use "
            "repro.api.admin.AdminClient.load_model()",
            DeprecationWarning, stacklevel=2,
        )
        return self._admin().load_model(model)

    def evict_model(self, model: str) -> bool:
        """Deprecated: use :meth:`repro.api.admin.AdminClient.evict_model`."""
        warnings.warn(
            "ScoringClient.evict_model() is deprecated; use "
            "repro.api.admin.AdminClient.evict_model()",
            DeprecationWarning, stacklevel=2,
        )
        return self._admin().evict_model(model)

    # -- lifecycle ---------------------------------------------------------

    @property
    def codec(self) -> str:
        """The codec the current connection negotiated."""
        return self._codec.name

    def disconnect(self) -> None:
        """Drop the current connection; the next request re-dials.

        Drain orchestration uses this: a server that acknowledged a
        ``drain`` waits for its connections to empty before stopping,
        so the admin connection must let go promptly instead of
        pinning the drain open until its grace deadline.
        """
        with self._lock:
            if not self._closed:
                self._teardown_connection()

    def close(self) -> None:
        """Close the connection; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_connection()

    def __enter__(self) -> "ScoringClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
