"""Process-local metrics: counters, gauges, mergeable histograms.

The serving stack's telemetry primitives.  Three metric kinds, all
label-addressed through one :class:`MetricsRegistry` per process:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a last-write-wins level (queue depth, loop lag);
* :class:`Histogram` — fixed-bucket distributions over **pre-computed
  log-spaced bounds**, built for microsecond latencies.  The record
  path is one ``bisect`` over a small tuple plus one locked integer
  bump — cheap enough to sit on every request.

Snapshots are plain JSON-safe dicts and **mergeable**: histograms from
different shards merge by bucket-wise addition (:func:`merge_series`),
never by averaging percentiles — p99 of a fleet is the p99 of the
*union* distribution, which bucket addition preserves exactly and
percentile averaging does not.  Quantiles are read back from any
(merged) snapshot with :func:`histogram_quantile`, which interpolates
linearly inside the bucket that crosses the target rank.

Instrument sites hold direct references to their metric objects (the
registry lookup happens once, at wiring time), so the hot path never
touches the registry lock.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "BATCH_BUCKET_BOUNDS_ROWS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKET_BOUNDS_US",
    "MetricsRegistry",
    "SIZE_BUCKET_BOUNDS_BYTES",
    "histogram_quantile",
    "merge_series",
]


def _log_spaced(lo: float, hi: float, per_decade: int) -> tuple:
    """Log-spaced bucket upper bounds, rounded to 3 significant digits.

    Computed once at import; every histogram sharing a bounds tuple is
    mergeable with its peers by construction.
    """
    bounds: list = []
    i = 0
    while True:
        value = float(f"{lo * 10 ** (i / per_decade):.3g}")
        if value > hi:
            break
        if not bounds or value > bounds[-1]:
            bounds.append(value)
        i += 1
    return tuple(bounds)


#: microsecond latency bounds: 1 µs .. 10 s, five buckets per decade.
LATENCY_BUCKET_BOUNDS_US = _log_spaced(1.0, 10_000_000.0, 5)

#: payload-size bounds: 1 B .. 100 MB, three buckets per decade.
SIZE_BUCKET_BOUNDS_BYTES = _log_spaced(1.0, 100_000_000.0, 3)

#: coalesced-batch row-count bounds: powers of two up to 4096 rows.
BATCH_BUCKET_BOUNDS_ROWS = tuple(float(2 ** i) for i in range(13))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-write-wins level (queue depth, event-loop lag, ...)."""

    __slots__ = ("_lock", "_value")

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A fixed-bucket distribution over pre-computed bounds.

    ``bounds[i]`` is the *inclusive* upper edge of bucket *i* (the
    Prometheus ``le`` convention); one implicit overflow bucket catches
    everything above the last bound.  Recording is a ``bisect`` plus a
    locked bump; :meth:`record_many` amortizes the lock over a whole
    coalesced batch that shared one service time.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum")

    kind = "histogram"

    def __init__(self, bounds: tuple = LATENCY_BUCKET_BOUNDS_US) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def record(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value

    def record_many(self, value: float, n: int) -> None:
        """Record *n* observations that all measured *value*."""
        if n <= 0:
            return
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += n
            self._count += n
            self._sum += value * n

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
            }


def histogram_quantile(snapshot: dict, q: float) -> float:
    """The *q*-quantile of one histogram snapshot (merged or not).

    Finds the bucket whose cumulative count crosses ``q * count`` and
    interpolates linearly between its edges — exact up to bucket
    resolution, and identical whether computed before or after a
    bucket-wise merge (which is the whole point of merging buckets
    instead of percentiles).  Returns ``0.0`` for an empty histogram;
    ranks landing in the overflow bucket answer the last bound.
    """
    bounds = snapshot.get("bounds") or []
    counts = snapshot.get("counts") or []
    total = snapshot.get("count", 0)
    if total <= 0 or not bounds:
        return 0.0
    rank = max(0.0, min(1.0, float(q))) * total
    cumulative = 0
    for idx, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= rank:
            if idx >= len(bounds):
                return float(bounds[-1])  # overflow: no upper edge
            lo = float(bounds[idx - 1]) if idx > 0 else 0.0
            hi = float(bounds[idx])
            fraction = (rank - cumulative) / n
            return lo + fraction * (hi - lo)
        cumulative += n
    return float(bounds[-1])


class MetricsRegistry:
    """One process's named, label-addressed metric set.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first call under a ``(name, labels)`` identity creates the metric,
    later calls return the same object — so wiring code can look a
    metric up idempotently and hand the reference to its hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict = {}
        self._order: list = []

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(**kwargs)
                self._metrics[key] = metric
                self._order.append(key)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} with labels {labels!r} is already "
                    f"registered as a {metric.kind}")
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: tuple | None = None,
                  **labels) -> Histogram:
        kwargs = {} if bounds is None else {"bounds": tuple(bounds)}
        return self._get(Histogram, name, labels, **kwargs)

    def snapshot(self) -> dict:
        """Every metric as one JSON-safe ``{"series": [...]}`` tree."""
        with self._lock:
            items = [(key, self._metrics[key]) for key in self._order]
        series = []
        for (name, labels), metric in items:
            row = {"name": name, "labels": dict(labels),
                   "kind": metric.kind}
            row.update(metric.snapshot())
            series.append(row)
        return {"series": series}


def _series_key(row: dict) -> tuple:
    labels = row.get("labels") or {}
    bounds = row.get("bounds")
    return (
        row.get("name"),
        tuple(sorted(labels.items())),
        row.get("kind"),
        tuple(bounds) if bounds else None,
    )


def merge_series(snapshots) -> list:
    """Merge registry snapshots from many shards into one series list.

    Rows are matched on ``(name, labels, kind)``; histograms
    additionally match on their bounds tuple, so a shard running
    different bucket bounds merges next to — never into — its peers.
    Counters add, gauges keep the fleet-wide **maximum** (the worst
    shard's loop lag is the one an operator cares about), and
    histograms add **bucket-wise** along with their count and sum —
    percentiles of the merged row equal percentiles of the union
    distribution by construction.  Malformed rows are skipped.
    """
    merged: dict = {}
    order: list = []
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for row in snap.get("series") or []:
            if not isinstance(row, dict) or not row.get("name"):
                continue
            kind = row.get("kind")
            key = _series_key(row)
            into = merged.get(key)
            if into is None:
                into = {"name": row["name"],
                        "labels": dict(row.get("labels") or {}),
                        "kind": kind}
                if kind == "histogram":
                    into["bounds"] = list(row.get("bounds") or [])
                    into["counts"] = [0] * (len(into["bounds"]) + 1)
                    into["count"] = 0
                    into["sum"] = 0.0
                else:
                    into["value"] = 0
                merged[key] = into
                order.append(key)
            if kind == "counter":
                into["value"] += row.get("value", 0)
            elif kind == "gauge":
                into["value"] = max(into["value"], row.get("value", 0))
            elif kind == "histogram":
                counts = row.get("counts") or []
                if len(counts) != len(into["counts"]):
                    continue  # malformed row: never poison the merge
                for idx, n in enumerate(counts):
                    into["counts"][idx] += n
                into["count"] += row.get("count", 0)
                into["sum"] += row.get("sum", 0.0)
    return [merged[key] for key in order]
