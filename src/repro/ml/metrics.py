"""Classification metrics, including the paper's tolerance accuracy.

The tolerance accuracy (Figure 2's x axis) treats a prediction as
correct when the energy wasted by running the kernel with the predicted
team instead of the optimal one stays below ``t%`` of the minimum:
``E[pred] <= E_min * (1 + t/100)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError


def accuracy(y_true, y_pred) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise MLError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise MLError("empty prediction arrays")
    return float(np.mean(y_true == y_pred))


def tolerance_accuracy(y_pred, energy_matrix, tolerance_pct: float,
                       team_sizes=None) -> float:
    """Fraction of samples whose predicted team wastes <= tolerance.

    *energy_matrix* has one row per sample and one column per candidate
    team size (``team_sizes``, default 1..n_columns).
    """
    y_pred = np.asarray(y_pred)
    energy = np.asarray(energy_matrix, dtype=np.float64)
    if energy.ndim != 2 or len(y_pred) != len(energy):
        raise MLError("energy matrix must be (n_samples, n_teams) and "
                      "aligned with predictions")
    if tolerance_pct < 0:
        raise MLError(f"tolerance must be >= 0, got {tolerance_pct}")
    teams = list(team_sizes) if team_sizes is not None else list(
        range(1, energy.shape[1] + 1))
    col = {team: i for i, team in enumerate(teams)}
    try:
        pred_cols = np.asarray([col[int(p)] for p in y_pred])
    except KeyError as exc:
        raise MLError(f"prediction {exc} is not a candidate team size")
    predicted_energy = energy[np.arange(len(energy)), pred_cols]
    minima = energy.min(axis=1)
    limit = minima * (1.0 + tolerance_pct / 100.0)
    return float(np.mean(predicted_energy <= limit))


def tolerance_curve(y_pred, energy_matrix, tolerances,
                    team_sizes=None) -> list[float]:
    """Tolerance accuracy at each threshold (Figure 2 series)."""
    return [tolerance_accuracy(y_pred, energy_matrix, t, team_sizes)
            for t in tolerances]


def mean_tolerance_curve(pred_matrix, energy_matrix, tolerances,
                         team_sizes=None) -> list[float]:
    """Average the tolerance curve over repeated-CV prediction rows."""
    pred_matrix = np.asarray(pred_matrix)
    if pred_matrix.ndim == 1:
        pred_matrix = pred_matrix[None, :]
    curves = np.asarray([
        tolerance_curve(row, energy_matrix, tolerances, team_sizes)
        for row in pred_matrix])
    return [float(v) for v in curves.mean(axis=0)]


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Counts of (true row, predicted column) pairs."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return matrix
