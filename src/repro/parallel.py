"""Worker-count resolution shared by the CLI, experiments and ML layers.

Every parallel entry point (``build_dataset``, ``repeated_cv_predict``,
the ``repro`` CLI) takes a ``jobs`` argument resolved through
:func:`resolve_jobs`:

* ``None`` — consult ``$REPRO_JOBS``, falling back to *default* (1,
  i.e. serial) when unset; an unparsable value warns instead of being
  silently ignored;
* ``0`` or negative — use every available CPU;
* positive — use exactly that many workers.
"""

from __future__ import annotations

import os
import warnings

#: environment variable consulted when no explicit jobs value is given.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None, default: int = 1) -> int:
    """Resolve a ``--jobs`` / ``$REPRO_JOBS`` value to a worker count."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR)
        if raw is None:
            jobs = default
        else:
            try:
                jobs = int(raw)
            except ValueError:
                warnings.warn(
                    f"invalid {JOBS_ENV_VAR}={raw!r} (not an integer); "
                    f"falling back to {default}", RuntimeWarning,
                    stacklevel=2)
                jobs = default
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)
