"""Smoke tests: every example script must run end to end."""

import sys

import pytest

import examples.daemon_scoring as daemon_scoring
import examples.energy_exploration as energy_exploration
import examples.fleet_scoring as fleet_scoring
import examples.quickstart as quickstart
import examples.trace_inspection as trace_inspection


class TestExamples:
    def test_quickstart(self, capsys):
        quickstart.main()
        out = capsys.readouterr().out
        assert "minimum-energy configuration" in out
        assert "static features" in out

    def test_energy_exploration(self, capsys):
        energy_exploration.main()
        out = capsys.readouterr().out
        assert "TCDM pressure" in out
        assert "optimum" in out

    def test_trace_inspection(self, capsys):
        trace_inspection.main()
        out = capsys.readouterr().out
        assert "match the engine exactly" in out

    def test_daemon_scoring(self, capsys):
        daemon_scoring.main()
        out = capsys.readouterr().out
        assert "predicted min-energy cores" in out
        assert "daemon stopped cleanly" in out

    def test_fleet_scoring(self, capsys):
        fleet_scoring.main()
        out = capsys.readouterr().out
        assert "fleet serves 3 models" in out
        assert "transparently reloaded" in out
        assert "code='unknown_model'" in out
        assert "daemon stopped cleanly" in out

    @pytest.mark.slow
    def test_classify_unseen_kernel(self, capsys, monkeypatch):
        import examples.classify_unseen_kernel as classify
        monkeypatch.setattr(sys, "argv",
                            ["classify_unseen_kernel.py",
                             "--profile", "unit"])
        classify.main()
        out = capsys.readouterr().out
        assert "predicted minimum-energy cores" in out
        assert "verdict" in out
