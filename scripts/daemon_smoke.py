"""CI smoke test for the persistent scoring daemon.

Trains a small classifier (four kernels, unit profile, throwaway
caches), starts a :class:`repro.api.ScoringDaemon` on a Unix socket,
pushes ``--rows`` feature rows through ``--clients`` concurrent
:class:`repro.api.ScoringClient` connections, asserts the wire
predictions are byte-identical to a local ``predict_batch``, and
checks the daemon shuts down cleanly (socket unlinked, counters
consistent).  Exit code 0 means the deployment path works end to end.

Run from the repo root::

    PYTHONPATH=src python scripts/daemon_smoke.py [--rows 100]
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import threading

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

import numpy as np  # noqa: E402

from repro.api import (  # noqa: E402
    ReproConfig,
    ScoringClient,
    ScoringDaemon,
    load_or_train,
)
from repro.dataset.build import build_dataset  # noqa: E402
from repro.dataset.registry import get_kernel_spec  # noqa: E402

SMOKE_KERNELS = ("gemm", "atax", "fir", "stream_triad")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--workers", type=int, default=8)
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="daemon_smoke_")
    try:
        specs = [get_kernel_spec(name) for name in SMOKE_KERNELS]
        dataset = build_dataset(
            "unit",
            specs=specs,
            cache_dir=os.path.join(workdir, "sim_cache"),
        )
        classifier, cache_hit = load_or_train(
            ReproConfig(profile="unit"),
            dataset=dataset,
            cache_dir=os.path.join(workdir, "models"),
        )
        assert not cache_hit, "fresh cache dir cannot hit"

        base = dataset.matrix(classifier.feature_names_)
        reps = -(-args.rows // len(base))  # ceil division
        rows = np.tile(base, (reps, 1))[: args.rows]
        expected = [int(p) for p in classifier.predict_batch(rows)]

        socket_path = os.path.join(workdir, "repro.sock")
        shards = [rows[i :: args.clients].tolist() for i in range(args.clients)]
        results: list = [None] * args.clients
        errors: list = []

        def worker(slot: int) -> None:
            try:
                with ScoringClient(socket_path=socket_path) as client:
                    results[slot] = client.predict_batch(shards[slot])
            except Exception as exc:  # surfaced below as a failure
                errors.append(exc)

        daemon = ScoringDaemon(
            classifier,
            socket_path=socket_path,
            workers=args.workers,
        )
        with daemon:
            threads = [
                threading.Thread(target=worker, args=(slot,))
                for slot in range(args.clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        # post-stop read: stop() drains the pool, so every connection
        # handler has finished its bookkeeping by now
        stats = daemon.stats()

        if errors:
            raise errors[0]
        scored = 0
        for slot in range(args.clients):
            want = [int(p) for p in expected[slot :: args.clients]]
            assert results[slot] == want, f"client {slot} diverged"
            scored += len(results[slot])
        assert scored == args.rows
        assert stats["connections_served"] == args.clients
        assert not os.path.exists(socket_path), "socket not unlinked"

        print(
            f"daemon smoke OK: {scored} rows across {args.clients} "
            f"clients, {stats['requests_served']} requests, "
            f"clean shutdown"
        )
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
