"""Importance-based feature pruning (the paper's ``*-opt`` sets).

The canonical implementation moved to :mod:`repro.api.selection`, where
the feature-set registry resolves ``static-opt`` / ``dynamic-opt`` from
it; this module re-exports the functions so existing experiment code
and notebooks keep working unchanged.
"""

from __future__ import annotations

from repro.api.selection import (  # noqa: F401  (re-exported legacy names)
    DEFAULT_COVERAGE,
    MIN_FEATURES,
    optimised_set,
    prune_by_importance,
    rank_features,
)

__all__ = [
    "DEFAULT_COVERAGE",
    "MIN_FEATURES",
    "optimised_set",
    "prune_by_importance",
    "rank_features",
]
