"""On-disk caching of simulation results.

The campaign is 448 samples x 8 team sizes = 3584 cluster simulations —
minutes of work worth caching.  Raw *counters* are cached (not energies):
energy models are cheap to re-apply, so ablations over Table-I variants
reuse the same simulations.

Cache entries are invalidated by a fingerprint covering the kernel IR
(structure, placements, sizes), the cluster configuration and a manual
``CODE_VERSION`` bumped whenever simulator semantics change.
"""

from __future__ import annotations

import hashlib
import json
import os
import re

from repro.ir.nodes import (
    Barrier,
    Compute,
    Critical,
    Kernel,
    Load,
    Loop,
    ParallelFor,
    Sequential,
    SequentialFor,
    Store,
)
from repro.platform.config import ClusterConfig

#: bump when engine/compiler semantics change in a way that affects counts.
CODE_VERSION = 4


def _node_repr(stmt) -> str:
    if isinstance(stmt, Compute):
        return f"C({stmt.kind.value},{stmt.count})"
    if isinstance(stmt, Load):
        return f"L({stmt.array},{stmt.index.to_python()})"
    if isinstance(stmt, Store):
        return f"S({stmt.array},{stmt.index.to_python()})"
    if isinstance(stmt, Loop):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return (f"F({stmt.var},{stmt.lower.to_python()},"
                f"{stmt.upper.to_python()})[{inner}]")
    if isinstance(stmt, Critical):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return f"X({stmt.name})[{inner}]"
    if isinstance(stmt, ParallelFor):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return (f"P({stmt.var},{stmt.lower.to_python()},"
                f"{stmt.upper.to_python()},{int(stmt.nowait)})[{inner}]")
    if isinstance(stmt, Sequential):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return f"Q[{inner}]"
    if isinstance(stmt, SequentialFor):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return (f"T({stmt.var},{stmt.lower.to_python()},"
                f"{stmt.upper.to_python()})[{inner}]")
    if isinstance(stmt, Barrier):
        return "B"
    raise TypeError(f"unexpected node {type(stmt).__name__}")


def kernel_fingerprint(kernel: Kernel, config: ClusterConfig) -> str:
    """Stable hash of everything that determines simulation counts."""
    arrays = ",".join(f"{a.name}:{a.length}:{a.space}"
                      for a in kernel.arrays)
    body = ";".join(_node_repr(stmt) for stmt in kernel.body)
    text = "|".join([
        f"v{CODE_VERSION}",
        kernel.name, kernel.dtype.value, str(kernel.size_bytes),
        arrays, body, config.cache_key(),
    ])
    return hashlib.sha1(text.encode()).hexdigest()


def _safe_name(sample_id: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", sample_id)


class SimCache:
    """One JSON file per sample, holding counters for every team size."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, sample_id: str) -> str:
        return os.path.join(self.cache_dir, _safe_name(sample_id) + ".json")

    def load(self, sample_id: str, fingerprint: str) -> dict:
        """Cached ``{team(str): counters_dict}`` or an empty dict."""
        path = self._path(sample_id)
        if not os.path.exists(path):
            return {}
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        if data.get("fingerprint") != fingerprint:
            return {}
        return data.get("teams", {})

    def store(self, sample_id: str, fingerprint: str,
              teams: dict) -> None:
        path = self._path(sample_id)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump({"fingerprint": fingerprint, "teams": teams}, handle)
        os.replace(tmp, path)
