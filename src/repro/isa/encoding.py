"""Textual rendering and parsing of lowered instructions.

The format mirrors how GVSOC's instruction traces look once filtered: a
mnemonic followed by an optional operand.  It is used by the trace writer
(``cluster/pe<i>/insn`` events) and by tests that round-trip instruction
streams through text.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.isa.opcodes import (
    OP_LOCK,
    OP_UNLOCK,
    OPCODE_NAMES,
    is_l1_access,
    is_l2_access,
    pack_lock,
    unpack_lock,
    validate_opcode,
)

_NAME_TO_OP = {name: op for op, name in enumerate(OPCODE_NAMES)}


def format_instr(op: int, arg: int) -> str:
    """Render an ``(op, arg)`` pair as trace text, e.g. ``lw bank=3``."""
    validate_opcode(op)
    name = OPCODE_NAMES[op]
    if op in (OP_LOCK, OP_UNLOCK):
        lock_id, bank = unpack_lock(arg)
        return f"{name} id={lock_id} bank={bank}"
    if is_l1_access(op) or is_l2_access(op):
        return f"{name} bank={arg}"
    return f"{name} n={arg}"


def parse_instr(text: str) -> tuple[int, int]:
    """Parse the output of :func:`format_instr` back into ``(op, arg)``."""
    parts = text.split()
    if not parts:
        raise TraceError("empty instruction text")
    name = parts[0]
    if name not in _NAME_TO_OP:
        raise TraceError(f"unknown mnemonic {name!r}")
    op = _NAME_TO_OP[name]
    fields = {}
    for token in parts[1:]:
        key, _, value = token.partition("=")
        if not value:
            raise TraceError(f"malformed operand {token!r} in {text!r}")
        try:
            fields[key] = int(value)
        except ValueError as exc:
            raise TraceError(f"non-integer operand in {text!r}") from exc
    if op in (OP_LOCK, OP_UNLOCK):
        try:
            return op, pack_lock(fields["id"], fields["bank"])
        except KeyError as exc:
            raise TraceError(f"missing lock operand in {text!r}") from exc
    if is_l1_access(op) or is_l2_access(op):
        if "bank" not in fields:
            raise TraceError(f"missing bank operand in {text!r}")
        return op, fields["bank"]
    return op, fields.get("n", 1)
