"""Array placement in the cluster memories.

Both the TCDM and the L2 scratchpad are word-interleaved across their
banks: word address ``w`` lives in bank ``w % n_banks``.  The layout
allocates arrays back to back (word aligned) exactly like the PULP
``l1malloc`` bump allocator, and places one lock word per critical
section at the end of the TCDM segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LayoutError
from repro.ir.nodes import (
    Critical,
    Kernel,
    Loop,
    ParallelFor,
    Sequential,
    SequentialFor,
)


def bank_of_word(word_addr: int, n_banks: int) -> int:
    """Bank index of a word address under word interleaving."""
    return word_addr % n_banks


@dataclass(frozen=True)
class Placement:
    """Resolved placement of one array."""

    name: str
    space: str
    base_word: int
    length: int


class MemoryMap:
    """Assign every kernel array (and lock word) a base word address."""

    def __init__(self, kernel: Kernel, n_l1_banks: int, n_l2_banks: int,
                 tcdm_bytes: int, l2_bytes: int) -> None:
        self.n_l1_banks = n_l1_banks
        self.n_l2_banks = n_l2_banks
        self._placements: dict[str, Placement] = {}
        self._lock_banks: dict[str, int] = {}

        l1_cursor = 0
        l2_cursor = 0
        for arr in kernel.arrays:
            if arr.space == "l1":
                placement = Placement(arr.name, "l1", l1_cursor, arr.length)
                l1_cursor += arr.length
            else:
                placement = Placement(arr.name, "l2", l2_cursor, arr.length)
                l2_cursor += arr.length
            self._placements[arr.name] = placement

        for section in _critical_sections(kernel):
            if section not in self._lock_banks:
                self._lock_banks[section] = bank_of_word(l1_cursor,
                                                         n_l1_banks)
                l1_cursor += 1

        if l1_cursor * 4 > tcdm_bytes:
            raise LayoutError(
                f"kernel {kernel.name!r} needs {l1_cursor * 4} B of TCDM, "
                f"only {tcdm_bytes} B available")
        if l2_cursor * 4 > l2_bytes:
            raise LayoutError(
                f"kernel {kernel.name!r} needs {l2_cursor * 4} B of L2, "
                f"only {l2_bytes} B available")
        self.l1_words_used = l1_cursor
        self.l2_words_used = l2_cursor

    def placement(self, array_name: str) -> Placement:
        try:
            return self._placements[array_name]
        except KeyError:
            raise LayoutError(f"no placement for array {array_name!r}")

    def base_word(self, array_name: str) -> int:
        return self.placement(array_name).base_word

    def space(self, array_name: str) -> str:
        return self.placement(array_name).space

    def lock_bank(self, section_name: str) -> int:
        try:
            return self._lock_banks[section_name]
        except KeyError:
            raise LayoutError(f"no lock word for section {section_name!r}")


def _critical_sections(kernel: Kernel) -> list[str]:
    """Names of critical sections in source order (deterministic layout)."""
    names: list[str] = []

    def visit(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, Critical):
                if stmt.name not in names:
                    names.append(stmt.name)
                visit(stmt.body)
            elif isinstance(stmt, Loop):
                visit(stmt.body)

    def visit_region(region) -> None:
        if isinstance(region, (ParallelFor, Sequential)):
            visit(region.body)
        elif isinstance(region, SequentialFor):
            for inner in region.body:
                visit_region(inner)

    for region in kernel.body:
        visit_region(region)
    return names
