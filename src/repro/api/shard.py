"""Process-level sharding: N daemon processes behind one endpoint.

One daemon process tops out at one core's worth of scoring (the GIL
serializes everything but the numpy kernels).  The low-voltage
parallel-systems literature the paper builds on makes the scaling
argument explicit: aggregate throughput comes from *parallel
replication of slower units*.  :class:`ShardManager` applies it to the
serving stack — ``repro serve --shards N`` runs N full scoring daemons
(one per process, each with its own model pool and event loop) that
together serve a single logical endpoint:

* **TCP** — every shard binds the same ``(host, port)`` with
  ``SO_REUSEPORT``; the kernel load-balances incoming connections
  across the shard listeners.  Clients connect to the one port and
  need no changes at all.
* **Unix sockets** — shard *i* binds ``<path>.<i>`` and the manager
  writes a **shard registry** (a small JSON file with shard socket
  paths and PIDs) at ``<path>`` itself.
  :class:`repro.api.client.ScoringClient` recognizes the registry,
  picks a shard (rotating across connections), and — because its
  reconnect logic re-reads the registry — a request retried after a
  shard crash lands on a live shard.

Shard processes are forked **before** any serving threads exist, so
each child starts clean; the scorer is built inside the child by a
picklable *factory* callable (see :func:`classifier_factory` /
:func:`fleet_factory`), which also keeps spawn-based platforms
working.  Each shard daemon carries a ``shard`` stats section
(``{"index": i, "pid": ...}``) so the ``{"cmd": "stats"}`` verb
reports per-shard request counts.

Clean fan-out shutdown: :meth:`ShardManager.stop` signals every child
(SIGTERM -> daemon.stop() -> sockets unlinked), joins them, escalates
to SIGKILL for stragglers, and removes the registry.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import stat
import tempfile
import threading
import time

from repro.api.daemon import (
    DEFAULT_WORKERS,
    ScoringDaemon,
    _reclaim_stale_unix_socket,
)
from repro.errors import DaemonError
from repro.obs import get_logger

#: registry format marker (bumped on incompatible layout changes).
REGISTRY_VERSION = 1


def shard_socket_path(base: str, index: int) -> str:
    """Where shard *index* of a unix-socket deployment listens."""
    return f"{base}.{index}"


def write_registry(path: str, shards: list, epoch: int = 0) -> None:
    """Atomically write the shard registry file at *path*.

    *epoch* counts registry refreshes (respawns, deregistrations) so
    observers can tell "the fleet changed under me" apart from "I read
    the same snapshot twice" without diffing rows.
    """
    payload = {
        "repro_shards": REGISTRY_VERSION,
        "base": path,
        "epoch": int(epoch),
        "shards": shards,
    }
    directory = os.path.dirname(os.path.abspath(path))
    fd, staging = tempfile.mkstemp(prefix=".shards-", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise


def read_registry(path: str) -> list | None:
    """The shard rows of the registry at *path*, or ``None``.

    ``None`` means "not a shard registry": the path is missing, is a
    socket, or holds anything but a well-formed registry document —
    callers fall back to treating the path as a plain socket.  Never
    raises on malformed input.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("repro_shards") != REGISTRY_VERSION:
        return None
    shards = payload.get("shards")
    if not isinstance(shards, list) or not shards:
        return None
    rows = [s for s in shards if isinstance(s, dict) and s.get("path")]
    return rows or None


def registry_epoch(path: str) -> int | None:
    """The refresh epoch of the registry at *path*, or ``None``.

    ``None`` means the path does not hold a well-formed registry;
    registries written before epochs read as ``0``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("repro_shards") != REGISTRY_VERSION:
        return None
    epoch = payload.get("epoch")
    return epoch if isinstance(epoch, int) else 0


def _pid_alive(pid) -> bool:
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


# -- picklable scorer factories (run inside the shard process) -------------


def classifier_factory(artifact_path: str, backend: str | None = None):
    """A factory loading one saved model artifact (single-model shards)."""
    from repro.api.classifier import BACKEND_COMPILED, Classifier

    return Classifier.load(
        artifact_path,
        backend=backend if backend is not None else BACKEND_COMPILED)


def fleet_factory(
    model_path: str | None = None,
    profile: str = "paper",
    family: str = "tree",
    feature_set: str = "static-all",
    models: tuple = (),
    preload: bool = False,
    max_batch: int | None = None,
    max_delay_us: int | None = None,
    memory_budget_bytes: int | None = None,
    max_models: int | None = None,
    default=None,
    on_preload=None,
    backend: str | None = None,
):
    """Build the serving fleet ``repro serve`` deploys.

    The default model is *default* (an already-fitted classifier —
    the un-sharded CLI passes the one it just loaded), or is built
    here from *model_path* (a saved artifact) / the artifact cache for
    ``(profile, family, feature_set)``, training on a miss.  Extra
    *models* specs are warm pre-loaded (*on_preload* is called per
    loaded key, for progress reporting).  ``max_batch`` <= 0 disables
    micro-batching.  *backend* selects the execution backend every
    model in the fleet runs on (default: compiled decision tables; see
    :meth:`repro.api.Classifier.compile`).  Both serve paths assemble
    through this one function: the CLI calls it inline for a
    single-process fleet, and :class:`ShardManager` runs it
    (picklable, built-in defaults) inside every shard process so each
    shard owns its own pool, batcher and event loop.
    """
    from repro.api.artifact_cache import load_or_train
    from repro.api.classifier import BACKEND_COMPILED, Classifier
    from repro.api.config import ReproConfig
    from repro.api.fleet import (
        DEFAULT_MAX_BATCH,
        DEFAULT_MAX_DELAY_US,
        MicroBatcher,
        ModelFleet,
        ModelPool,
        cache_loader,
    )

    if backend is None:
        backend = BACKEND_COMPILED
    if default is None:
        if model_path:
            default = Classifier.load(model_path, backend=backend)
        else:
            config = ReproConfig(profile=profile, model=family,
                                 feature_set=feature_set)
            default, _ = load_or_train(config, backend=backend)
    pool = ModelPool(loader=cache_loader(train_on_miss=preload,
                                         backend=backend),
                     memory_budget_bytes=memory_budget_bytes,
                     max_models=max_models,
                     default_tag=profile)
    batcher = None
    if max_batch is None:
        max_batch = DEFAULT_MAX_BATCH
    if max_delay_us is None:
        max_delay_us = DEFAULT_MAX_DELAY_US
    if max_batch > 0:
        batcher = MicroBatcher(max_batch=max_batch,
                               max_delay_us=max_delay_us)
    fleet = ModelFleet(pool, batcher, default=default)
    if models:
        keys = pool.preload([s for s in models if str(s).strip()])
        if on_preload is not None:
            for key in keys:
                on_preload(key)
    return fleet


def _shard_main(factory, kind, endpoint, index, workers, ready,
                codecs=None) -> None:
    """One shard process: build the scorer, serve until SIGTERM."""
    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    scorer = factory()
    kwargs: dict = {}
    if hasattr(scorer, "handle_request"):
        kwargs["fleet"] = scorer
    else:
        kwargs["classifier"] = scorer
    daemon = ScoringDaemon(
        socket_path=endpoint if kind == "unix" else None,
        tcp=endpoint if kind == "tcp" else None,
        workers=workers,
        reuse_port=(kind == "tcp"),
        stats_extra={"shard": {"index": index, "pid": os.getpid()}},
        codecs=codecs,
        **kwargs,
    )
    # a {"cmd": "drain"} verb finishes in-flight work, stops the daemon
    # and then fires this hook: flip the same flag SIGTERM uses so the
    # shard process exits cleanly and its supervisor can retire or
    # replace it
    daemon.on_drained = stop.set
    daemon.start()
    ready.set()
    log = get_logger("shard", shard=index)
    log.info("serving", kind=kind, endpoint=str(endpoint),
             workers=workers)
    try:
        # a plain flag + timed wait is robust to signal delivery
        # semantics across platforms (handlers only set the flag)
        while not stop.wait(0.2):
            pass
    finally:
        daemon.stop()
        if hasattr(scorer, "close"):
            scorer.close()
        log.info("exit")


class ShardManager:
    """Run and supervise N shard daemons serving one logical endpoint.

    *factory* is a picklable callable returning the scorer each shard
    serves (a fitted classifier or a fleet) — it runs **inside** the
    shard process.  Exactly one endpoint must be configured:
    ``socket_path`` (unix sockets + registry file) or ``tcp`` (a
    ``(host, port)`` pair shared via ``SO_REUSEPORT``; port 0 reserves
    an ephemeral port all shards then share, readable back from
    :attr:`address`).

    Usage::

        manager = ShardManager(
            functools.partial(classifier_factory, "model.json"),
            shards=4, socket_path="/tmp/repro.sock")
        with manager:
            ...  # ScoringClient(socket_path="/tmp/repro.sock")
    """

    def __init__(
        self,
        factory,
        shards: int,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        workers: int = DEFAULT_WORKERS,
        start_timeout: float = 120.0,
        codecs: tuple | None = None,
    ) -> None:
        if shards < 1:
            raise DaemonError(f"shards must be >= 1, got {shards}")
        if (socket_path is None) == (tcp is None):
            raise DaemonError(
                "configure exactly one endpoint: socket_path=PATH or "
                "tcp=(host, port)"
            )
        self.factory = factory
        self.shards = int(shards)
        self.socket_path = socket_path
        self.tcp = tuple(tcp) if tcp is not None else None
        self.workers = workers
        self.start_timeout = start_timeout
        self.codecs = tuple(codecs) if codecs is not None else None
        self._ctx = self._pick_context()
        # the fleet state a supervisor mutates concurrently with the
        # owning thread (respawn vs stop): all writes go under the lock
        self._lock = threading.Lock()
        self._procs: list = []
        self._retired: list = []       # replaced processes awaiting reap
        self._deregistered: set = set()  # shard indexes hidden from clients
        self._epoch = 0                # registry refresh counter
        self._guard: socket.socket | None = None  # TCP port reservation
        self._bound_tcp: tuple | None = None
        self._registry_written = False

    @staticmethod
    def _pick_context():
        # fork is cheap (the parent's imports and page cache are
        # shared copy-on-write) and needs no pickling; platforms
        # without it fall back to the default start method
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return any(proc.is_alive() for proc in self._procs)

    @property
    def address(self) -> tuple:
        """``("unix", base_path)`` or ``("tcp", host, port)`` (bound)."""
        if self.socket_path is not None:
            return ("unix", self.socket_path)
        if self._bound_tcp is not None:
            return ("tcp",) + self._bound_tcp
        return ("tcp",) + self.tcp

    @property
    def pids(self) -> list:
        return [proc.pid for proc in self._procs]

    def alive(self) -> list:
        """Liveness flags, one per shard (``alive()[i]`` = shard i)."""
        return [proc.is_alive() for proc in self._procs]

    def shard_paths(self) -> list:
        """The per-shard unix socket paths (empty for TCP)."""
        if self.socket_path is None:
            return []
        return [shard_socket_path(self.socket_path, i)
                for i in range(self.shards)]

    def start(self) -> "ShardManager":
        if self._procs:
            raise DaemonError("shard manager is already started")
        if self.socket_path is not None:
            self._prepare_base_path()
            endpoints = [("unix", path) for path in self.shard_paths()]
        else:
            self._reserve_tcp_port()
            endpoints = [("tcp", self._bound_tcp)] * self.shards
        events = []
        try:
            for index, (kind, endpoint) in enumerate(endpoints):
                proc, ready = self._spawn(index, kind, endpoint)
                with self._lock:
                    self._procs.append(proc)
                events.append(ready)
            deadline = time.monotonic() + self.start_timeout
            for index, ready in enumerate(events):
                # poll readiness against child liveness: a shard whose
                # factory raised (bad artifact, failed bind) dies
                # immediately and must fail start() fast, not after
                # the full start_timeout
                while not ready.wait(0.2):
                    proc = self._procs[index]
                    if not proc.is_alive():
                        raise DaemonError(
                            f"shard {index} died during startup "
                            f"(exit code {proc.exitcode})"
                        )
                    if time.monotonic() > deadline:
                        raise DaemonError(
                            f"shard {index} did not become ready "
                            f"within {self.start_timeout}s"
                        )
            self._refresh_registry()
        except BaseException:
            self.stop()
            raise
        return self

    def _spawn(self, index: int, kind: str, endpoint):
        """Fork one shard process; returns ``(process, ready_event)``."""
        ready = self._ctx.Event()
        proc = self._ctx.Process(
            target=_shard_main,
            args=(self.factory, kind, endpoint, index,
                  self.workers, ready, self.codecs),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        proc.start()
        return proc, ready

    def _endpoint_for(self, index: int) -> tuple:
        if self.socket_path is not None:
            return ("unix", shard_socket_path(self.socket_path, index))
        return ("tcp", self._bound_tcp)

    # -- supervision hooks -------------------------------------------------

    @property
    def epoch(self) -> int:
        """The registry refresh counter (see :func:`write_registry`)."""
        with self._lock:
            return self._epoch

    def proc(self, index: int):
        """The current process object serving shard *index*."""
        with self._lock:
            if not 0 <= index < len(self._procs):
                raise DaemonError(f"no shard with index {index}")
            return self._procs[index]

    def deregister(self, index: int) -> None:
        """Hide shard *index* from the registry (the drain hand-off).

        Client (re)connections resolve endpoints through the registry,
        so a deregistered shard stops receiving fresh connections while
        it finishes in-flight work; :meth:`respawn` re-registers the
        replacement.
        """
        with self._lock:
            if not 0 <= index < self.shards:
                raise DaemonError(f"no shard with index {index}")
            self._deregistered.add(index)
        self._refresh_registry()

    def respawn(self, index: int, ready_timeout: float | None = None) -> int:
        """Replace shard *index* with a fresh process; returns its pid.

        The old process must already be dead (crashed, killed or
        drained to exit) — respawning over a live shard raises, because
        two processes racing for one endpoint is never what a
        supervisor wants.  The replaced process object is retired and
        reaped by :meth:`stop`, and the registry is refreshed (new pid,
        bumped epoch, deregistration cleared) once the replacement is
        ready.
        """
        old = self.proc(index)
        if old.is_alive():
            raise DaemonError(
                f"shard {index} (pid {old.pid}) is still alive; drain "
                f"or kill it before respawning")
        old.join(0.1)  # reap promptly; stop() covers stragglers
        kind, endpoint = self._endpoint_for(index)
        proc, ready = self._spawn(index, kind, endpoint)
        with self._lock:
            self._retired.append(old)
            self._procs[index] = proc
        timeout = (ready_timeout if ready_timeout is not None
                   else self.start_timeout)
        deadline = time.monotonic() + timeout
        try:
            while not ready.wait(0.2):
                if not proc.is_alive():
                    raise DaemonError(
                        f"respawned shard {index} died during startup "
                        f"(exit code {proc.exitcode})")
                if time.monotonic() > deadline:
                    raise DaemonError(
                        f"respawned shard {index} did not become ready "
                        f"within {timeout}s")
        except BaseException:
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
            raise
        with self._lock:
            self._deregistered.discard(index)
        self._refresh_registry()
        return proc.pid

    def _refresh_registry(self) -> None:
        """Rewrite the registry from live state (bumps the epoch)."""
        if self.socket_path is None:
            return
        with self._lock:
            if not self._procs:
                return
            self._epoch += 1
            epoch = self._epoch
            rows = [
                {"index": i,
                 "path": shard_socket_path(self.socket_path, i),
                 "pid": self._procs[i].pid}
                for i in range(self.shards)
                if i not in self._deregistered
            ]
        write_registry(self.socket_path, rows, epoch=epoch)
        self._registry_written = True

    def stop(self, timeout: float = 10.0) -> None:
        """Fan-out shutdown: SIGTERM all shards, join, escalate, clean.

        Covers supervision leftovers too: processes respawned after the
        initial fork set and the retired originals they replaced are
        all reaped here, so a supervised shutdown leaves no zombies.
        """
        with self._lock:
            procs = list(self._procs) + list(self._retired)
            self._procs = []
            self._retired = []
            self._deregistered = set()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout)
        for proc in procs:
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
        if self._guard is not None:
            try:
                self._guard.close()
            except OSError:
                pass
            self._guard = None
        if self.socket_path is not None:
            if self._registry_written:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
                self._registry_written = False
            for path in self.shard_paths():
                # clean exits unlink their own socket; this reaps the
                # leftovers of killed shards
                try:
                    if stat.S_ISSOCK(os.stat(path).st_mode):
                        os.unlink(path)
                except OSError:
                    pass

    def __enter__(self) -> "ShardManager":
        if not self._procs:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- endpoint preparation ----------------------------------------------

    def _prepare_base_path(self) -> None:
        base = self.socket_path
        if not os.path.exists(base):
            return
        if stat.S_ISSOCK(os.stat(base).st_mode):
            # a plain (un-sharded) daemon endpoint: reclaim only if dead
            _reclaim_stale_unix_socket(base)
            return
        shards = read_registry(base)
        if shards is not None:
            if any(_pid_alive(s.get("pid")) for s in shards):
                raise DaemonError(
                    f"socket path {base!r} holds a shard registry with "
                    f"live shard processes; refusing to serve over it"
                )
            os.unlink(base)  # stale registry from a dead manager
            return
        raise DaemonError(
            f"socket path {base!r} exists and is neither a socket nor "
            f"a shard registry; refusing to overwrite it"
        )

    def _reserve_tcp_port(self) -> None:
        if not hasattr(socket, "SO_REUSEPORT"):
            raise DaemonError(
                "this platform does not support SO_REUSEPORT; sharded "
                "TCP serving is unavailable (use unix sockets)"
            )
        host, port = self.tcp
        guard = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        guard.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            guard.bind((host, int(port)))
        except OSError as exc:
            guard.close()
            raise DaemonError(f"cannot bind tcp {host}:{port}: {exc}")
        # bound but never listening: reserves the port for the shard
        # lifetime without receiving connections (the kernel only
        # balances across *listening* SO_REUSEPORT sockets)
        self._guard = guard
        self._bound_tcp = (host, guard.getsockname()[1])


def collect_stats(base_path: str, timeout: float = 10.0) -> dict:
    """Deprecated: use :func:`repro.api.admin.collect_stats`.

    The aggregation moved onto the typed admin surface, which returns
    a :class:`repro.api.admin.FleetStats`; this shim keeps the
    historical dict shape (``FleetStats.as_dict()``) for one
    deprecation cycle.
    """
    import warnings

    from repro.api.admin import collect_stats as admin_collect_stats

    warnings.warn(
        "repro.api.shard.collect_stats() is deprecated; use "
        "repro.api.admin.collect_stats()",
        DeprecationWarning, stacklevel=2,
    )
    return admin_collect_stats(base_path, timeout=timeout).as_dict()
