"""CI helper scripts (importable for tests)."""
