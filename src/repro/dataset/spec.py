"""Kernel and sample specifications, size grids and profiles.

The paper evaluates payloads of 512, 2048, 8192 and 32768 bytes (its
"8196" is read as the obvious typo for 8192) — all sized to fit the
64 KiB TCDM so no DMA traffic is needed.  Profiles trade campaign time
for fidelity:

* ``paper`` — the full grid (448 samples);
* ``quick`` — drops the 32768 B point (336 samples), for benches;
* ``unit``  — one small size (112 samples), for integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import DatasetError
from repro.ir.nodes import Kernel
from repro.ir.types import DType

PAPER_SIZES = (512, 2048, 8192, 32768)

PROFILES: dict[str, tuple[int, ...]] = {
    "paper": PAPER_SIZES,
    "quick": (512, 2048, 8192),
    "unit": (512,),
}


@dataclass(frozen=True)
class KernelSpec:
    """One of the 59 dataset kernels (still parametric)."""

    name: str
    suite: str
    builder: Callable[[DType, int], Kernel]
    dtypes: tuple = (DType.INT32, DType.FP32)

    def build(self, dtype: DType, size_bytes: int) -> Kernel:
        if dtype not in self.dtypes:
            raise DatasetError(f"kernel {self.name!r} does not support "
                               f"dtype {dtype}")
        kernel = self.builder(dtype, size_bytes)
        if kernel.name != self.name:
            raise DatasetError(f"builder for {self.name!r} produced "
                               f"kernel {kernel.name!r}")
        return kernel


@dataclass(frozen=True)
class SampleSpec:
    """One dataset sample: a kernel instantiated at (dtype, size)."""

    kernel: KernelSpec
    dtype: DType
    size_bytes: int

    @property
    def sample_id(self) -> str:
        return f"{self.kernel.name}:{self.dtype.value}:{self.size_bytes}"

    def build(self) -> Kernel:
        return self.kernel.build(self.dtype, self.size_bytes)


def enumerate_samples(specs, sizes) -> list[SampleSpec]:
    """The sample grid: every kernel x supported dtype x size."""
    samples = []
    for spec in specs:
        for dtype in spec.dtypes:
            for size in sizes:
                samples.append(SampleSpec(spec, dtype, size))
    return samples


def profile_sizes(profile: str) -> tuple[int, ...]:
    try:
        return PROFILES[profile]
    except KeyError:
        raise DatasetError(f"unknown profile {profile!r}; available: "
                           f"{sorted(PROFILES)}")
