"""``python -m repro.analysis`` — same entry point as ``repro lint``."""

from repro.analysis.engine import main

if __name__ == "__main__":
    raise SystemExit(main())
