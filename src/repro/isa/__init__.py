"""Abstract RI5CY-class instruction set used by the lowered kernels.

The simulator does not model a bit-accurate RISC-V pipeline; it models the
*classes* of instructions that the paper's energy model (Table I) and
dynamic features (Table III) distinguish: ALU-like integer work, floating
point work routed to the shared FPUs, TCDM (L1) and L2 memory accesses,
taken branches, explicit NOPs, long-latency dividers and the
synchronisation primitives of the OpenMP runtime.
"""

from repro.isa.opcodes import (
    OP_ALU,
    OP_DIV,
    OP_FDIV,
    OP_FP,
    OP_JMP,
    OP_LD,
    OP_LD2,
    OP_LOCK,
    OP_NOP,
    OP_ST,
    OP_ST2,
    OP_UNLOCK,
    OPCODE_NAMES,
    Instr,
    is_l1_access,
    is_l2_access,
    pack_lock,
    unpack_lock,
)
from repro.isa.encoding import format_instr, parse_instr

__all__ = [
    "OP_ALU",
    "OP_FP",
    "OP_LD",
    "OP_ST",
    "OP_LD2",
    "OP_ST2",
    "OP_JMP",
    "OP_NOP",
    "OP_DIV",
    "OP_FDIV",
    "OP_LOCK",
    "OP_UNLOCK",
    "OPCODE_NAMES",
    "Instr",
    "is_l1_access",
    "is_l2_access",
    "pack_lock",
    "unpack_lock",
    "format_instr",
    "parse_instr",
]
