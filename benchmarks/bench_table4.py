"""E3 — Table IV: most relevant dynamic and static features.

Regenerates both halves of the table (gini importances averaged over the
repeated stratified CV) and benchmarks one importance-producing CV pass
over the 80-dimensional dynamic feature set.
"""

from repro.experiments.table4 import run_table4
from repro.features.sets import feature_names
from repro.ml.model_selection import cross_val_predict
from repro.ml.tree import DecisionTreeClassifier

from benchmarks.conftest import BENCH_REPEATS, write_artifact


def test_table4_regeneration(dataset, benchmark):
    result = run_table4(dataset, repeats=BENCH_REPEATS)
    write_artifact("table4.txt", result.render())

    # paper-shape check: clock-gating (PE_sleep) features are the top
    # dynamic discriminators family-wise
    top_dynamic_metrics = [label for label, _, _ in result.dynamic_rows[:4]]
    assert any(metric in ("PE_sleep", "PE_idle")
               for metric in top_dynamic_metrics)

    X = dataset.matrix(feature_names("dynamic"))
    y = dataset.labels

    def one_importance_pass():
        _, importances = cross_val_predict(
            lambda: DecisionTreeClassifier(random_state=0), X, y,
            n_splits=10, seed=0)
        return importances

    importances = benchmark(one_importance_pass)
    assert importances.shape == (80,)
