"""JSON-lines batch-scoring service (the ``repro serve`` backend).

One JSON object per input line, one JSON object per output line — the
simplest protocol that composes with shell pipes, socket wrappers and
container health checks alike.  Requests:

``{"kernel": "gemm", "dtype": "fp32", "size": 2048}``
    build the named dataset kernel and score it (``dtype`` defaults to
    ``int32``, ``size`` to 2048 bytes);
``{"features": {"name": value, ...}}``
    score an explicit feature mapping;
``{"rows": [[...], ...]}``
    score a batch of pre-assembled feature vectors;
``{"cmd": "info"}``
    describe the loaded model (family, feature set, versions).

Every request may carry an ``"id"`` which is echoed in the response.
Responses are ``{"ok": true, "prediction": k}`` (or ``"predictions"``
for batches, ``"info"`` for info) or typed error frames
``{"ok": false, "code": "...", "error": "..."}`` (see
:mod:`repro.api.protocol` for the code vocabulary); a malformed line
never kills the service.

The frame codec lives in :mod:`repro.api.protocol`; the dispatch and
framing shell shared by every transport lives in
:mod:`repro.api.transport`, so the stdin/stdout loop here and the
socket daemons in :mod:`repro.api.daemon` serve byte-identical
responses for the same requests.  This module keeps the single-model
request semantics (:func:`handle_request`) and the text-line protocol
shell (:func:`process_request_line`) the transport core builds on.
"""

from __future__ import annotations

from repro.api.classifier import Classifier
from repro.api.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    decode_request,
    encode_frame,
    error_frame,
    ok_frame,
    request_id,
)
from repro.dataset.registry import get_kernel_spec
from repro.errors import ReproError
from repro.ir.types import parse_dtype


def handle_request(classifier: Classifier, request) -> dict:
    """Score one decoded request; errors become typed error frames."""
    req_id = request_id(request)
    try:
        if not isinstance(request, dict):
            raise ReproError("request must be a JSON object")
        if request.get("cmd") == "info":
            return ok_frame({"info": classifier.info()}, req_id)
        if "rows" in request:
            preds = classifier.predict_batch(request["rows"])
            return ok_frame(
                {"predictions": [int(p) for p in preds]}, req_id)
        if "features" in request:
            prediction = classifier.predict(request["features"])
            return ok_frame({"prediction": prediction}, req_id)
        if "kernel" in request:
            spec = get_kernel_spec(str(request["kernel"]))
            dtype = parse_dtype(str(request.get("dtype", "int32")))
            size = int(request.get("size", 2048))
            kernel = spec.build(dtype, size)
            return ok_frame(
                {"prediction": classifier.predict(kernel)}, req_id)
        raise ReproError(
            "unsupported request; expected one of the keys "
            "'kernel', 'features', 'rows' or cmd='info'")
    except (ReproError, TypeError, ValueError) as exc:
        # bare KeyError is deliberately NOT caught here: no well-formed
        # client input raises it, so one surfacing is a server bug and
        # belongs in process_line's 'internal' frame, not 'bad_request'
        return error_frame(ERROR_BAD_REQUEST, str(exc), req_id)


def process_request_line(line: str, handle) -> str | None:
    """The transport-agnostic protocol shell around a request handler.

    Decodes one line, dispatches the decoded request to *handle*
    (a ``request -> response-frame`` callable) and encodes the result.
    Blank lines yield ``None`` (nothing to answer); malformed JSON,
    oversized lines and unexpected handler exceptions yield encoded
    typed error frames.  Both the single-model path
    (:func:`process_line`) and the multi-model fleet router
    (:class:`repro.api.fleet.ModelFleet`) are thin wrappers over this.
    """
    request, decode_error = decode_request(line)
    if decode_error is not None:
        return encode_frame(decode_error)
    if request is None:
        return None
    try:
        return encode_frame(handle(request))
    except Exception as exc:
        # unexpected server-side condition (including responses that
        # fail to JSON-encode): answer a typed internal frame carrying
        # the request id instead of killing the serving loop
        return encode_frame(error_frame(ERROR_INTERNAL,
                                        f"internal error: {exc}",
                                        request_id(request)))


def process_line(classifier: Classifier, line: str) -> str | None:
    """One protocol turn: request line in, encoded response frame out.

    Blank lines yield ``None`` (nothing to answer); malformed JSON and
    unservable requests yield encoded error frames.  This is the shared
    core of the stdio loop below and of every daemon worker thread.
    """
    return process_request_line(
        line, lambda request: handle_request(classifier, request))


def serve(scorer, stdin=None, stdout=None) -> int:
    """Serve JSON-lines requests until EOF; returns requests handled.

    *scorer* is a fitted :class:`Classifier`, a multi-model
    :class:`repro.api.fleet.ModelFleet`, an already-built
    :class:`repro.api.transport.RequestEngine`, or — the legacy
    duck-typed extension point — any object exposing a
    ``process_line(line) -> str | None`` method.  Engine-backed
    scorers dispatch through the unified transport core, so the stdio
    loop answers the exact frames the socket daemons would — including
    the ``{"cmd": "stats"}`` admin verb.
    """
    # function-local import: transport layers on top of this module
    from repro.api.transport import RequestEngine, serve_lines, serve_stdio

    if isinstance(scorer, RequestEngine):
        engine = scorer
    elif hasattr(scorer, "handle_request") or \
            not hasattr(scorer, "process_line"):
        engine = RequestEngine(scorer)
    else:
        # an embedder's custom scorer with only process_line: drive
        # its own line handler instead of misreading it as a classifier
        return serve_lines(scorer.process_line, stdin, stdout)
    return serve_stdio(engine, stdin, stdout)
