"""Wire client for the persistent scoring daemon.

:class:`ScoringClient` speaks the JSON-lines protocol of
:mod:`repro.api.protocol` over a Unix domain socket or TCP connection
to a :class:`repro.api.daemon.ScoringDaemon`.  Every request is stamped
with a monotonically increasing ``"id"`` and the response id is checked
against it, so a desynchronized stream surfaces as a loud
:class:`repro.errors.ScoringError` instead of silently mis-pairing
answers.  Typed error frames from the daemon raise
:class:`ScoringError` with the frame's machine-readable ``code``.

A daemon restart mid-session (``ConnectionResetError`` /
``BrokenPipeError`` / EOF before a response) is retried once on a
fresh connection by default (``reconnect_retries``); requests are
idempotent reads, so the retry is safe, and a daemon that stays down
surfaces as one clean ``ScoringError(code="transport")`` — never a raw
``OSError``.

Usage::

    with ScoringClient(socket_path="/tmp/repro.sock") as client:
        client.predict({"op": 3072.0, ...})     # feature mapping
        client.predict_kernel("gemm", size=512)  # registry kernel
        client.predict_batch(rows)               # (n, n_features) rows
        client.info()                            # loaded-model summary

Against a fleet daemon (see :mod:`repro.api.fleet`) every scoring verb
accepts ``model="family:feature_set[:dataset_tag]"`` to pick the
serving model per request, and the admin verbs
:meth:`ScoringClient.list_models` / :meth:`ScoringClient.load_model` /
:meth:`ScoringClient.evict_model` manage the resident set.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.errors import ScoringError

#: raised (as ScoringError.code) on response-id mismatches.
ERROR_ID_MISMATCH = "id_mismatch"
#: raised (as ScoringError.code) on transport-level failures.
ERROR_TRANSPORT = "transport"


class ScoringClient:
    """One connection to a scoring daemon; thread-safe request pairing.

    Exactly one endpoint must be given: ``socket_path`` (Unix domain
    socket) or ``tcp`` (a ``(host, port)`` pair).  The connection opens
    eagerly so a bad endpoint fails at construction, not first use.
    ``reconnect_retries`` bounds how many fresh connections a single
    request may try after the daemon drops the current one (0 disables
    reconnection).
    """

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        timeout: float = 30.0,
        reconnect_retries: int = 1,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ScoringError(
                "configure exactly one endpoint: socket_path=PATH or "
                "tcp=(host, port)",
                code=ERROR_TRANSPORT,
            )
        if reconnect_retries < 0:
            raise ScoringError(
                f"reconnect_retries must be >= 0, got {reconnect_retries}",
                code=ERROR_TRANSPORT,
            )
        self._socket_path = socket_path
        self._tcp = tuple(tcp) if tcp is not None else None
        self._timeout = timeout
        self._reconnect_retries = reconnect_retries
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._rbuf = bytearray()
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        """Open one connection to the configured endpoint."""
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            endpoint: object = self._socket_path
        else:
            host, port = self._tcp
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            endpoint = (host, int(port))
        sock.settimeout(self._timeout)
        try:
            sock.connect(endpoint)
        except OSError as exc:
            sock.close()
            raise ScoringError(
                f"cannot connect to scoring daemon at {endpoint!r}: {exc}",
                code=ERROR_TRANSPORT,
            )
        self._rbuf.clear()
        return sock

    def _recv_line(self) -> bytes:
        """One newline-terminated response frame; ``b""`` on EOF.

        A hand-rolled buffer instead of ``makefile().readline()`` —
        the buffered-text layer costs real microseconds on the
        daemon's hot single-row path.
        """
        while True:
            idx = self._rbuf.find(b"\n")
            if idx >= 0:
                line = bytes(self._rbuf[:idx + 1])
                del self._rbuf[:idx + 1]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                return b""
            self._rbuf += chunk

    def _teardown_connection(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._rbuf.clear()

    # -- plumbing ----------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request frame, await and validate its response.

        Returns the decoded success frame.  Raises
        :class:`ScoringError` on typed error frames (carrying the
        daemon's ``code``), on response-id mismatches and on transport
        failures.  A dropped connection (reset, broken pipe, EOF
        before any response byte) is transparently retried on a fresh
        connection up to ``reconnect_retries`` times.
        """
        with self._lock:
            if self._closed:
                raise ScoringError("client is closed", code=ERROR_TRANSPORT)
            req_id = self._next_id
            self._next_id += 1
            frame = dict(payload)
            frame["id"] = req_id
            wire = (json.dumps(frame) + "\n").encode("utf-8")
            line = None
            for attempt in range(self._reconnect_retries + 1):
                try:
                    self._sock.sendall(wire)
                    line = self._recv_line()
                except (ConnectionResetError, BrokenPipeError) as exc:
                    # the daemon went away mid-request (restart?): one
                    # clean retry on a fresh connection, then give up
                    self._teardown_connection()
                    if attempt >= self._reconnect_retries:
                        raise ScoringError(
                            f"connection to the daemon was dropped "
                            f"({exc}) and was not recovered after "
                            f"{attempt + 1} attempt(s)",
                            code=ERROR_TRANSPORT,
                            request_id=req_id,
                        )
                    self._sock = self._connect()
                    continue
                except OSError as exc:
                    raise ScoringError(
                        f"transport failure talking to the daemon: {exc}",
                        code=ERROR_TRANSPORT,
                        request_id=req_id,
                    )
                if line:
                    break
                # EOF before a response: same story as a reset
                self._teardown_connection()
                if attempt >= self._reconnect_retries:
                    raise ScoringError(
                        "connection closed by the daemon before a "
                        "response arrived",
                        code=ERROR_TRANSPORT,
                        request_id=req_id,
                    )
                self._sock = self._connect()
            try:
                response = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ScoringError(
                    f"daemon sent an undecodable frame: {exc}",
                    code=ERROR_TRANSPORT,
                    request_id=req_id,
                )
        if not isinstance(response, dict):
            raise ScoringError(
                "daemon sent a non-object frame",
                code=ERROR_TRANSPORT,
                request_id=req_id,
            )
        if not response.get("ok") and "id" not in response:
            # an error frame may legitimately lack an id (the daemon
            # could not decode the request far enough to find one);
            # surface the daemon's code rather than an id mismatch
            raise ScoringError(
                str(response.get("error", "unspecified daemon error")),
                code=response.get("code"),
                request_id=req_id,
            )
        if response.get("id") != req_id:
            raise ScoringError(
                f"response id {response.get('id')!r} does not match "
                f"request id {req_id!r}; stream is desynchronized",
                code=ERROR_ID_MISMATCH,
                request_id=req_id,
            )
        if not response.get("ok"):
            raise ScoringError(
                str(response.get("error", "unspecified daemon error")),
                code=response.get("code"),
                request_id=req_id,
            )
        return response

    @staticmethod
    def _with_model(payload: dict, model: str | None) -> dict:
        if model is not None:
            payload["model"] = str(model)
        return payload

    # -- scoring verbs -----------------------------------------------------

    def predict(self, features, model: str | None = None) -> int:
        """Score one feature mapping or feature vector."""
        if hasattr(features, "keys"):
            payload = {"features": {k: float(v) for k, v in features.items()}}
        elif type(features) is list and all(
            type(v) is float for v in features
        ):
            payload = {"features": features}  # already JSON-ready
        else:
            payload = {"features": [float(v) for v in features]}
        response = self.request(self._with_model(payload, model))
        return int(response["prediction"])

    def predict_kernel(
        self,
        name: str,
        dtype: str = "int32",
        size: int = 2048,
        model: str | None = None,
    ) -> int:
        """Score a registry kernel built server-side."""
        payload = {"kernel": name, "dtype": dtype, "size": size}
        response = self.request(self._with_model(payload, model))
        return int(response["prediction"])

    def predict_batch(self, rows, model: str | None = None) -> list:
        """Score many pre-assembled feature vectors in one round trip."""
        if hasattr(rows, "tolist"):
            rows = rows.tolist()
        encoded = [[float(v) for v in row] for row in rows]
        payload = self._with_model({"rows": encoded}, model)
        return [int(p) for p in self.request(payload)["predictions"]]

    def info(self, model: str | None = None) -> dict:
        """The daemon's loaded-model summary (family, features, versions)."""
        payload = self._with_model({"cmd": "info"}, model)
        return dict(self.request(payload)["info"])

    # -- fleet admin verbs -------------------------------------------------

    def list_models(self) -> dict:
        """The fleet's resident set: ``{"models": [...], "stats": {...}}``.

        Requires a fleet daemon; a single-model daemon answers
        ``bad_request`` (raised as :class:`ScoringError`).
        """
        response = self.request({"cmd": "list_models"})
        return {
            "models": list(response["models"]),
            "stats": dict(response.get("stats", {})),
        }

    def load_model(self, model: str) -> str:
        """Warm-load one model key into the fleet; returns the full spec."""
        response = self.request({"cmd": "load_model", "model": str(model)})
        return str(response["model"])

    def evict_model(self, model: str) -> bool:
        """Evict one model key; ``False`` when it was not resident."""
        response = self.request({"cmd": "evict_model", "model": str(model)})
        return bool(response["evicted"])

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the connection; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._teardown_connection()

    def __enter__(self) -> "ScoringClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
