"""Opcode constants for the lowered instruction stream.

Instructions are plain ``(opcode, arg)`` tuples rather than objects: the
cycle-lockstep simulator consumes millions of them per run and tuple
dispatch on small integers is the fastest portable representation in
CPython.  The meaning of ``arg`` depends on the opcode:

=============  =======================================================
opcode         arg
=============  =======================================================
``OP_ALU``     number of back-to-back single-cycle integer ops
``OP_FP``      number of floating-point ops (each needs an FPU slot)
``OP_LD``      TCDM bank index of the word read
``OP_ST``      TCDM bank index of the word written
``OP_LD2``     L2 bank index of the word read
``OP_ST2``     L2 bank index of the word written
``OP_JMP``     number of taken branches
``OP_NOP``     number of explicit NOP cycles
``OP_DIV``     number of integer divisions (multi-cycle)
``OP_FDIV``    number of FP divisions (multi-cycle, occupies the FPU)
``OP_LOCK``    packed ``(lock_id, bank)`` — test-and-set in TCDM
``OP_UNLOCK``  packed ``(lock_id, bank)`` — release store in TCDM
=============  =======================================================

Coalescing runs of single-cycle integer ops into one ``(OP_ALU, n)``
macro-instruction preserves cycle counts and event counts exactly on an
in-order single-issue core, because no shared resource is touched while
the run executes.
"""

from __future__ import annotations

from typing import NamedTuple

OP_ALU = 0
OP_FP = 1
OP_LD = 2
OP_ST = 3
OP_LD2 = 4
OP_ST2 = 5
OP_JMP = 6
OP_NOP = 7
OP_DIV = 8
OP_FDIV = 9
OP_LOCK = 10
OP_UNLOCK = 11
#: blocking DMA transfer of ``arg`` words between L2 and TCDM; the
#: issuing core waits clock-gated on the event unit until completion
#: (the paper's future-work extension, see DESIGN.md).
OP_DMA = 12

#: Human-readable mnemonics, indexed by opcode.
OPCODE_NAMES = (
    "alu",
    "fp",
    "lw",
    "sw",
    "lw.l2",
    "sw.l2",
    "jmp",
    "nop",
    "div",
    "fdiv",
    "lock",
    "unlock",
    "dma",
)

_N_OPCODES = len(OPCODE_NAMES)

# Width (in bits) reserved for the bank index inside a packed lock arg.
_LOCK_BANK_BITS = 8
_LOCK_BANK_MASK = (1 << _LOCK_BANK_BITS) - 1


class Instr(NamedTuple):
    """A decoded instruction; interchangeable with a raw ``(op, arg)`` tuple."""

    op: int
    arg: int

    @property
    def mnemonic(self) -> str:
        return OPCODE_NAMES[self.op]


def is_l1_access(op: int) -> bool:
    """Return True if *op* touches a TCDM bank (including lock traffic)."""
    return op in (OP_LD, OP_ST, OP_LOCK, OP_UNLOCK)


def is_l2_access(op: int) -> bool:
    """Return True if *op* touches an L2 bank."""
    return op in (OP_LD2, OP_ST2)


def pack_lock(lock_id: int, bank: int) -> int:
    """Pack a lock identifier and the TCDM bank holding the lock word."""
    if lock_id < 0:
        raise ValueError(f"lock_id must be non-negative, got {lock_id}")
    if not 0 <= bank <= _LOCK_BANK_MASK:
        raise ValueError(f"bank out of range [0, {_LOCK_BANK_MASK}]: {bank}")
    return (lock_id << _LOCK_BANK_BITS) | bank


def unpack_lock(arg: int) -> tuple[int, int]:
    """Inverse of :func:`pack_lock`; returns ``(lock_id, bank)``."""
    return arg >> _LOCK_BANK_BITS, arg & _LOCK_BANK_MASK


def validate_opcode(op: int) -> None:
    """Raise ``ValueError`` when *op* is not a known opcode constant."""
    if not 0 <= op < _N_OPCODES:
        raise ValueError(f"unknown opcode {op}")
