"""Simulator engine tests: accounting invariants, shared-resource
arbitration, synchronisation, and cross-team conservation laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.ir import (
    Compute,
    Critical,
    KernelBuilder,
    Load,
    OpKind,
    Store,
)
from repro.ir.expr import var
from repro.ir.types import DType
from repro.platform.config import ClusterConfig
from repro.sim.engine import simulate
from tests.conftest import make_axpy, make_matmul


def _simple_kernel(body_factory, n=32, dtype=DType.INT32, arrays=("A", "B")):
    b = KernelBuilder("t", dtype, 512)
    arrs = {name: b.array(name, n) for name in arrays}
    b.parallel_for("i", 0, n, body_factory(b, arrs, var("i")))
    return b.build()


class TestCycleBudget:
    """issue + stall + cg == window for every core, every config."""

    @pytest.mark.parametrize("team", [1, 2, 3, 5, 8])
    def test_budget_axpy(self, team):
        counters = simulate(make_axpy(DType.INT32, 512), team)
        counters.validate()  # raises on violation
        for core in counters.cores:
            assert (core.issue_cycles + core.stall_cycles
                    + core.cg_cycles) == counters.cycles

    @pytest.mark.parametrize("team", [1, 4, 8])
    def test_budget_matmul_fp(self, team):
        counters = simulate(make_matmul(DType.FP32, 1024), team)
        counters.validate()

    def test_offteam_cores_fully_gated(self):
        counters = simulate(make_axpy(DType.INT32, 512), 3)
        for core in counters.cores[3:]:
            assert core.cg_cycles == counters.cycles
            assert core.issue_cycles == 0


class TestWorkConservation:
    """The kernel's useful ops don't depend on the team size."""

    def test_memory_ops_conserved_across_teams(self):
        totals = []
        for team in range(1, 9):
            counters = simulate(make_axpy(DType.INT32, 512), team)
            totals.append(counters.total_l1_reads
                          + counters.total_l1_writes)
        assert len(set(totals)) == 1

    def test_fp_ops_conserved_and_on_fpus(self):
        for team in (1, 4, 8):
            counters = simulate(make_axpy(DType.FP32, 512), team)
            core_fp = sum(c.fp_ops + c.fpdiv_ops for c in counters.cores)
            assert sum(counters.fpu_ops) == core_fp

    def test_int_kernel_never_touches_fpu(self):
        counters = simulate(make_matmul(DType.INT32, 512), 8)
        assert sum(counters.fpu_ops) == 0

    def test_runtime_decreases_with_cores_for_scalable_kernel(self):
        cycles = [simulate(make_matmul(DType.INT32, 2048), t).cycles
                  for t in (1, 2, 4, 8)]
        assert cycles[0] > cycles[1] > cycles[2] > cycles[3]


class TestBankConflicts:
    def test_same_bank_stride_conflicts(self):
        def body(b, arrs, i):
            return [Load("A", i * 16), Store("B", i * 16)]

        kernel = _simple_kernel(body, n=64)
        serial = simulate(kernel, 1)
        parallel = simulate(kernel, 8)
        assert serial.total_l1_conflicts == 0
        assert parallel.total_l1_conflicts > 0

    def test_conflicts_hit_single_bank(self):
        def body(b, arrs, i):
            return [Load("A", i * 16), Compute(OpKind.ALU, 1)]

        kernel = _simple_kernel(body, n=64, arrays=("A",))
        counters = simulate(kernel, 8)
        busy = [idx for idx, bank in enumerate(counters.l1_banks)
                if bank.conflicts > 0]
        assert busy == [0]  # array A is at base word 0

    def test_stride1_conflicts_below_hammer(self):
        # Static contiguous chunks put every core on the same start bank,
        # so stride-1 is not conflict-free — but it must stay well below
        # the worst-case same-bank hammer pattern.
        def stride1(b, arrs, i):
            return [Load("A", i), Compute(OpKind.ALU, 2), Store("B", i)]

        def hammer(b, arrs, i):
            return [Load("A", i * 16), Compute(OpKind.ALU, 2),
                    Store("B", i * 16)]

        friendly = simulate(_simple_kernel(stride1, n=128), 8)
        hammered = simulate(_simple_kernel(hammer, n=128), 8)
        assert friendly.total_l1_conflicts < hammered.total_l1_conflicts
        assert friendly.cycles < hammered.cycles


class TestFpuSharing:
    def test_fp_dense_kernel_saturates_shared_fpus(self):
        def body(b, arrs, i):
            return [Load("A", i), Compute(OpKind.FP, 16), Store("B", i)]

        kernel = _simple_kernel(body, n=64, dtype=DType.FP32)
        t4 = simulate(kernel, 4)   # one core per FPU: no sharing
        t8 = simulate(kernel, 8)   # two cores per FPU: contention
        stalls4 = sum(c.stall_cycles for c in t4.cores)
        stalls8 = sum(c.stall_cycles for c in t8.cores)
        assert stalls8 > stalls4 * 2
        # speed-up from 4 to 8 cores collapses under saturation
        assert t8.cycles > t4.cycles * 0.75

    def test_fpdiv_occupies_fpu(self):
        def body(b, arrs, i):
            return [Load("A", i), Compute(OpKind.FPDIV, 1), Store("B", i)]

        kernel = _simple_kernel(body, n=16, dtype=DType.FP32)
        counters = simulate(kernel, 8)
        assert sum(c.fpdiv_ops for c in counters.cores) == 16
        assert sum(c.stall_cycles for c in counters.cores) > 0


class TestLongLatencies:
    def test_l2_access_stalls_core(self):
        b = KernelBuilder("l2", DType.INT32, 512)
        b.array("Z", 64, space="l2")
        b.parallel_for("i", 0, 16, [Load("Z", var("i"))])
        kernel = b.build()
        config = ClusterConfig()
        counters = simulate(kernel, 1, config)
        core = counters.cores[0]
        assert core.l2_ops == 16
        assert core.stall_cycles >= 16 * (config.l2_latency - 1)
        assert sum(bank.reads for bank in counters.l2_banks) == 16

    def test_div_latency_accounted(self):
        def body(b, arrs, i):
            return [Compute(OpKind.DIV, 1), Load("A", i)]

        kernel = _simple_kernel(body, n=8, arrays=("A",))
        config = ClusterConfig()
        counters = simulate(kernel, 1, config)
        core = counters.cores[0]
        assert core.div_ops == 8
        assert core.stall_cycles >= 8 * (config.div_latency - 1)


class TestCriticalSections:
    def test_lock_serialises_and_burns_bank_reads(self):
        def body(b, arrs, i):
            return [Critical([Load("A", 0), Compute(OpKind.ALU, 1),
                              Store("A", 0)], name="sec")]

        kernel = _simple_kernel(body, n=32, arrays=("A",))
        serial = simulate(kernel, 1)
        parallel = simulate(kernel, 8)
        # contended locks spin: more probe reads than the serial run
        assert (parallel.total_l1_reads > serial.total_l1_reads)
        # serialisation destroys the speed-up
        assert parallel.cycles > serial.cycles * 0.5


class TestDeterminism:
    def test_same_input_same_counters(self):
        kernel = make_matmul(DType.FP32, 512)
        a = simulate(kernel, 5).as_dict()
        b = simulate(kernel, 5).as_dict()
        assert a == b

    @settings(max_examples=10, deadline=None)
    @given(team=st.integers(min_value=1, max_value=8),
           size=st.sampled_from([256, 512, 1024]))
    def test_budget_property(self, team, size):
        counters = simulate(make_axpy(DType.FP32, size), team)
        counters.validate()


class TestGuards:
    def test_runaway_guard(self):
        kernel = make_matmul(DType.INT32, 2048)
        with pytest.raises(SimulationError, match="exceeded"):
            simulate(kernel, 1, max_cycles=100)

    def test_icache_counts_positive(self):
        counters = simulate(make_axpy(DType.INT32, 512), 2)
        assert counters.icache_fetches == sum(c.issue_cycles
                                              for c in counters.cores)
        assert counters.icache_refills > 0
