"""Decision tree tests: correctness, invariants, importances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLError
from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.ml.metrics import accuracy


def _blobs(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = np.where(X[:, 0] + 0.5 * X[:, 1] > 0, 1, 2)
    return X, y


class TestFitPredict:
    def test_memorises_training_data(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier().fit(X, y)
        assert accuracy(y, tree.predict(X)) == 1.0

    def test_single_class_is_single_leaf(self):
        X = np.zeros((10, 3))
        y = np.full(10, 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_leaves() == 1
        assert (tree.predict(X) == 5).all()

    def test_constant_features_yield_majority_leaf(self):
        X = np.ones((12, 2))
        y = np.array([1] * 8 + [2] * 4)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == 1).all()

    def test_max_depth_limits_depth(self):
        X, y = _blobs(400)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf_respected(self):
        X, y = _blobs(100)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [int(node.value.sum())]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree._root)) >= 10

    def test_labels_preserved_non_contiguous(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 5)
        y = np.array([3, 5, 8, 8] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) <= {3, 5, 8}
        assert accuracy(y, tree.predict(X)) == 1.0

    def test_shapes_validated(self):
        with pytest.raises(MLError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(MLError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4))
        tree = DecisionTreeClassifier().fit(np.zeros((4, 2)),
                                            np.array([1, 1, 2, 2]))
        with pytest.raises(MLError):
            tree.predict(np.zeros((3, 5)))

    def test_unfitted_predict_rejected(self):
        with pytest.raises(MLError):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))

    def test_bad_hyperparams_rejected(self):
        with pytest.raises(MLError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(MLError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestImportances:
    def test_normalised(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier().fit(X, y)
        imp = tree.feature_importances_
        assert imp.shape == (4,)
        assert imp.sum() == pytest.approx(1.0)
        assert (imp >= 0).all()

    def test_informative_feature_dominates(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 5))
        y = (X[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_.argmax() == 2

    def test_pure_fit_has_zero_importance_mass(self):
        X = np.zeros((10, 3))
        tree = DecisionTreeClassifier().fit(X, np.ones(10, dtype=int))
        assert tree.feature_importances_.sum() == 0.0


class TestTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=5, max_value=60))
    def test_predictions_are_training_labels(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 3))
        y = rng.integers(1, 5, size=n)
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) <= set(y)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_proba_rows_sum_to_one(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 3))
        y = rng.integers(0, 3, size=30)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probs = tree.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self):
        X, y = _blobs(150, seed=7)
        a = DecisionTreeClassifier(max_features=2, random_state=11).fit(X, y)
        b = DecisionTreeClassifier(max_features=2, random_state=11).fit(X, y)
        assert (a.predict(X) == b.predict(X)).all()


class TestForest:
    def test_fits_and_beats_chance(self):
        X, y = _blobs(300)
        forest = RandomForestClassifier(n_estimators=15,
                                        random_state=0).fit(X, y)
        assert accuracy(y, forest.predict(X)) > 0.9

    def test_importances_normalised(self):
        X, y = _blobs(200)
        forest = RandomForestClassifier(n_estimators=10,
                                        random_state=1).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_unfitted_rejected(self):
        with pytest.raises(MLError):
            RandomForestClassifier().predict(np.zeros((2, 2)))
