"""E6 — Tables II/III: the feature inventories.

Regenerates the static (RAW/AGG/MCA) and dynamic feature vectors for a
reference kernel — the rows of paper Tables IIa, IIb and III — and
benchmarks the static extraction pipeline.
"""

from repro.dataset.registry import get_kernel_spec
from repro.features import (
    AGG_FEATURES,
    DYNAMIC_METRICS,
    MCA_FEATURES,
    RAW_FEATURES,
    extract_agg,
    extract_dynamic,
    extract_mca,
    extract_raw,
)
from repro.ir.types import DType
from repro.sim.engine import simulate

from benchmarks.conftest import write_artifact


def test_feature_tables_regeneration(benchmark):
    kernel = get_kernel_spec("gemm").build(DType.FP32, 2048)

    def extract_static():
        return {**extract_raw(kernel), **extract_agg(kernel),
                **extract_mca(kernel)}

    static = benchmark(extract_static)
    counters = simulate(kernel, 8)
    dynamic = extract_dynamic(counters)

    lines = ["Table IIa (RAW + AGG static features), gemm fp32 2048B:"]
    for name in RAW_FEATURES + AGG_FEATURES:
        lines.append(f"  {name:<10} {static[name]:>14.4f}")
    lines.append("Table IIb (MCA features):")
    for name in MCA_FEATURES:
        lines.append(f"  {name:<10} {static[name]:>14.4f}")
    lines.append("Table III (dynamic features @ 8 cores):")
    for name in DYNAMIC_METRICS:
        lines.append(f"  {name:<13} {dynamic[name]:>14.4f}")
    write_artifact("table23_features.txt", "\n".join(lines))

    assert set(RAW_FEATURES + AGG_FEATURES + MCA_FEATURES) <= set(static)
    assert set(DYNAMIC_METRICS) == set(dynamic)
