"""Adaptive micro-batching: coalesce single-row requests into batches.

``BENCH_pipeline.json`` records a ~6x gap between single-row daemon
throughput (~11k rows/s) and one-connection batched throughput (~64k
rows/s): almost all of the per-request cost is fixed overhead (numpy
call setup, frame codec, scheduling), not tree traversal.  The
:class:`MicroBatcher` closes that gap for *concurrent* single-row
clients: connection handlers enqueue ``(classifier, vector)`` work
items onto one bounded queue, and a scheduler thread drains it into
per-model ``predict_batch`` calls — up to ``max_batch`` rows, waiting
at most ``max_delay_us`` after the first row of a batch arrives.

Under load the batch fills instantly (adaptive: batch size tracks
concurrency); a lone client pays at most ``max_delay_us`` extra
latency.  Predictions are byte-identical to unbatched calls because
each group goes through the same public
:meth:`repro.api.Classifier.predict_batch` the single-row path wraps.

Completion is callback-based: every item carries an ``on_done``
callable invoked from the scheduler thread with ``(prediction, error)``
— the daemon writes the response frame straight from that callback, so
a coalesced request costs one thread wake-up, not two.
:meth:`MicroBatcher.close` flushes: queued items are answered, never
dropped.
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from repro.errors import FleetError
from repro.obs import BATCH_BUCKET_BOUNDS_ROWS

#: default largest coalesced batch (rows per predict_batch call).
DEFAULT_MAX_BATCH = 64
#: default longest wait for followers after a batch opens (microseconds).
DEFAULT_MAX_DELAY_US = 2000
#: default bound on queued-but-unscheduled rows (backpressure).
DEFAULT_QUEUE_SIZE = 4096


class _Item:
    __slots__ = ("classifier", "vector", "on_done", "enqueued_ns")

    #: single-row items carry a vector, never a row block
    rows = None

    def __init__(self, classifier, vector, on_done,
                 enqueued_ns: int = 0) -> None:
        self.classifier = classifier
        self.vector = vector
        self.on_done = on_done
        self.enqueued_ns = enqueued_ns


class _BlockItem:
    """A pre-packed f32 row block (the zero-decode stream path).

    The block's rows ride through the same per-model grouping as
    single-row items — its float32 buffer is lifted to float64 once
    and concatenated with its group, never unpacked into Python
    floats.  ``on_done(predictions, error)`` fires once for the whole
    block.
    """

    __slots__ = ("classifier", "rows", "on_done", "enqueued_ns")

    #: block items carry a row matrix, never a single vector
    vector = None

    def __init__(self, classifier, rows, on_done,
                 enqueued_ns: int = 0) -> None:
        self.classifier = classifier
        self.rows = rows
        self.on_done = on_done
        self.enqueued_ns = enqueued_ns


class MicroBatcher:
    """One scheduler thread turning single rows into batch predictions.

    Thread-safe producers call :meth:`submit` (callback completion) or
    :meth:`predict` (blocking convenience).  ``max_batch`` bounds rows
    per coalesced call, ``max_delay_us`` bounds how long an open batch
    waits for followers, ``queue_size`` bounds unscheduled rows — a
    full queue blocks producers (bounded backpressure) rather than
    growing without limit.
    """

    def __init__(self, max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay_us: int = DEFAULT_MAX_DELAY_US,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 submit_timeout: float = 10.0) -> None:
        if max_batch < 1:
            raise FleetError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_us < 0:
            raise FleetError(f"max_delay_us must be >= 0, got "
                             f"{max_delay_us}")
        if queue_size < 1:
            raise FleetError(f"queue_size must be >= 1, got {queue_size}")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_us / 1e6
        self.submit_timeout = submit_timeout
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._closing = threading.Event()
        self._lock = threading.Lock()
        self._rows = 0
        self._batches = 0
        self._largest_batch = 0
        self._thread: threading.Thread | None = None
        # telemetry handles; None until bind_metrics (zero overhead)
        self._obs_queue_wait = None
        self._obs_batch_rows = None

    def bind_metrics(self, registry) -> None:
        """Attach queue-wait / batch-size histograms from *registry*."""
        if registry is None:
            return
        self._obs_queue_wait = registry.histogram(
            "repro_batcher_queue_wait_us")
        self._obs_batch_rows = registry.histogram(
            "repro_batcher_batch_rows",
            bounds=BATCH_BUCKET_BOUNDS_ROWS)

    # -- producer side -----------------------------------------------------

    @property
    def is_running(self) -> bool:
        return not self._closing.is_set()

    def _ensure_scheduler(self) -> None:
        # lazy: a batcher that only exists to carry knobs (the daemon's
        # event loop batches inline) never spins up a thread
        if self._thread is None:
            with self._lock:
                if self._thread is None and not self._closing.is_set():
                    self._thread = threading.Thread(
                        target=self._run, name="repro-batcher",
                        daemon=True)
                    self._thread.start()

    def submit(self, classifier, vector, on_done) -> None:
        """Enqueue one row; *on_done(prediction, error)* fires later.

        Exactly one of the callback's arguments is ``None``.  The
        callback runs on the scheduler thread — keep it short (encode a
        frame, write a socket).  Raises :class:`FleetError` once the
        batcher is closed or when the queue stays full for
        ``submit_timeout`` seconds.
        """
        if self._closing.is_set():
            raise FleetError("micro-batcher is closed")
        self._ensure_scheduler()
        item = _Item(classifier, vector, on_done,
                     enqueued_ns=(time.perf_counter_ns()
                                  if self._obs_queue_wait is not None
                                  else 0))
        try:
            self._queue.put(item, timeout=self.submit_timeout)
        except queue.Full:
            raise FleetError(
                f"micro-batch queue stayed full for "
                f"{self.submit_timeout}s; the fleet is overloaded")
        if self._closing.is_set():
            # lost the race with close(): the drain loop may already
            # have passed; answer directly so the caller never hangs
            self._drain_once()

    def predict(self, classifier, vector, timeout: float = 30.0) -> int:
        """Blocking convenience wrapper around :meth:`submit`."""
        done = threading.Event()
        slot: dict = {}

        def on_done(prediction, error) -> None:
            slot["prediction"], slot["error"] = prediction, error
            done.set()

        self.submit(classifier, vector, on_done)
        if not done.wait(timeout):
            raise FleetError(f"micro-batched prediction timed out "
                             f"after {timeout}s")
        if slot["error"] is not None:
            raise slot["error"]
        return slot["prediction"]

    def submit_block(self, classifier, rows, on_done) -> None:
        """Enqueue one pre-packed row block (the stream fast path).

        *rows* is an ``(n, cols)`` float32 matrix whose buffer is
        concatenated — not decoded — with whatever else coalesces for
        the same model; ``on_done(predictions, error)`` fires once
        with the block's prediction array (row order preserved).  A
        block occupies one queue slot regardless of row count: the
        queue bounds *scheduling units*, and a block is one.
        """
        if self._closing.is_set():
            raise FleetError("micro-batcher is closed")
        self._ensure_scheduler()
        item = _BlockItem(classifier, rows, on_done,
                          enqueued_ns=(time.perf_counter_ns()
                                       if self._obs_queue_wait is not None
                                       else 0))
        try:
            self._queue.put(item, timeout=self.submit_timeout)
        except queue.Full:
            raise FleetError(
                f"micro-batch queue stayed full for "
                f"{self.submit_timeout}s; the fleet is overloaded")
        if self._closing.is_set():
            self._drain_once()

    def predict_block(self, classifier, rows, timeout: float = 30.0):
        """Blocking convenience wrapper around :meth:`submit_block`."""
        done = threading.Event()
        slot: dict = {}

        def on_done(predictions, error) -> None:
            slot["predictions"], slot["error"] = predictions, error
            done.set()

        self.submit_block(classifier, rows, on_done)
        if not done.wait(timeout):
            raise FleetError(f"micro-batched block prediction timed "
                             f"out after {timeout}s")
        if slot["error"] is not None:
            raise slot["error"]
        return slot["predictions"]

    # -- scheduler side ----------------------------------------------------

    def _run(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._closing.is_set():
                    return
                continue
            batch = [first]
            deadline = time.monotonic() + self.max_delay_s \
                if self.max_delay_s else None
            while len(batch) < self.max_batch:
                if deadline is None:
                    remaining = 0.0
                else:
                    remaining = deadline - time.monotonic()
                if self._closing.is_set():
                    remaining = 0.0  # flush now; stop waiting for followers
                try:
                    if remaining > 0:
                        # short slices so a close() is noticed promptly
                        batch.append(self._queue.get(
                            timeout=min(remaining, 0.05)))
                    else:
                        batch.append(self._queue.get_nowait())
                except queue.Empty:
                    if remaining > 0:
                        continue  # slice expired, deadline has not
                    break
            self._execute(batch)

    def _execute(self, batch: list) -> None:
        """Group one drained batch by model and predict each group.

        Single-row items assemble into one float64 matrix as before;
        row blocks (:meth:`submit_block`) are lifted from their f32
        buffers and concatenated in item order — one ``predict_batch``
        per model either way, with predictions scattered back per
        item.
        """
        groups: dict = {}
        total_rows = 0
        for item in batch:
            groups.setdefault(id(item.classifier), []).append(item)
            total_rows += 1 if item.rows is None else len(item.rows)
        for items in groups.values():
            classifier = items[0].classifier
            try:
                if all(item.rows is None for item in items):
                    X = np.asarray([item.vector for item in items],
                                   dtype=np.float64)
                else:
                    parts = [
                        item.rows.astype(np.float64)
                        if item.rows is not None
                        else np.asarray([item.vector],
                                        dtype=np.float64)
                        for item in items]
                    X = (np.concatenate(parts) if len(parts) > 1
                         else parts[0])
                predictions = classifier.predict_batch(X)
            except Exception:
                # a poisoned group (shape drift, concurrent evict+swap):
                # fall back to per-row / per-block scoring so one bad
                # item cannot fail its neighbours
                for item in items:
                    if item.rows is None:
                        self._complete_single(item)
                    else:
                        self._complete_block(item)
                continue
            offset = 0
            for item in items:
                if item.rows is None:
                    self._finish(item, int(predictions[offset]), None)
                    offset += 1
                else:
                    n = len(item.rows)
                    self._finish(item, predictions[offset:offset + n],
                                 None)
                    offset += n
        with self._lock:
            self._rows += total_rows
            self._batches += 1
            self._largest_batch = max(self._largest_batch, total_rows)
        queue_wait = self._obs_queue_wait
        if queue_wait is not None:
            drained_ns = time.perf_counter_ns()
            for item in batch:
                if item.enqueued_ns:
                    queue_wait.record(
                        (drained_ns - item.enqueued_ns) / 1000.0)
            self._obs_batch_rows.record(total_rows)

    def _complete_single(self, item: _Item) -> None:
        try:
            prediction = item.classifier.predict(item.vector)
        except Exception as exc:
            self._finish(item, None, exc)
        else:
            self._finish(item, int(prediction), None)

    def _complete_block(self, item: _BlockItem) -> None:
        """Score one block alone (its group's combined batch failed)."""
        try:
            predictions = item.classifier.predict_batch(
                item.rows.astype(np.float64))
        except Exception as exc:
            self._finish(item, None, exc)
        else:
            self._finish(item, predictions, None)

    @staticmethod
    def _finish(item: _Item, prediction, error) -> None:
        try:
            item.on_done(prediction, error)
        except Exception:
            pass  # a dead client's callback must not kill the scheduler

    # -- lifecycle ---------------------------------------------------------

    def _drain_once(self) -> None:
        """Answer everything currently queued (used by flush paths)."""
        leftovers: list = []
        while True:
            try:
                leftovers.append(self._queue.get_nowait())
            except queue.Empty:
                break
        if leftovers:
            self._execute(leftovers)

    def close(self, timeout: float = 10.0) -> None:
        """Stop the scheduler, *flushing* queued items first.

        Every row already accepted by :meth:`submit` is answered before
        the thread exits; idempotent.
        """
        if self._closing.is_set():
            return
        self._closing.set()
        if self._thread is not None:
            self._thread.join(timeout)
        self._drain_once()  # anything that raced past the drain loop

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            rows, batches = self._rows, self._batches
            return {
                "rows": rows,
                "batches": batches,
                "mean_batch_size": round(rows / batches, 2) if batches
                else 0.0,
                "largest_batch": self._largest_batch,
                "max_batch": self.max_batch,
                "max_delay_us": int(self.max_delay_s * 1e6),
                "queued": self._queue.qsize(),
            }
