"""Protocol- and concurrency-aware static analysis for this repo.

Generic linters gate syntax and style; they cannot know that a verb
handled by :class:`repro.api.transport.RequestEngine` must have a
:class:`repro.api.client.ScoringClient` method sending it, that the
selectors event loop must never block, or that every binary frame type
packed in :mod:`repro.api.wire` needs a matching unpack branch.  The
source paper classifies programs by *statically extracted* features;
this package applies the same move to the repo's own source: walk the
ASTs, extract the protocol/concurrency facts, and report drift before
runtime does.

Entry points:

* ``repro lint`` (see :mod:`repro.cli`) and ``python -m repro.analysis``
  both drive :func:`repro.analysis.engine.main`;
* :func:`run_lint` is the library surface (used by the test suite and
  embedders).

The rule battery lives in :mod:`repro.analysis.rules`:

======= ==================================================
RPL001  protocol consistency (verbs / error codes)
RPL002  event-loop blocking-call detector
RPL003  lock discipline (guarded attributes written bare)
RPL004  fork safety (pre-fork state crossing into children)
RPL005  codec symmetry (frame types / struct formats)
======= ==================================================

Findings are waived per line with ``# repro: noqa[RPL003]`` (comma for
several rules, bare ``# repro: noqa`` for all) — deliberate violations
stay visible in the source next to their justification.
"""

from repro.analysis.engine import (
    Finding,
    LintReport,
    Project,
    main,
    run_lint,
)
from repro.analysis.rules import RULES, get_rule
from repro.errors import AnalysisError

__all__ = [
    "AnalysisError",
    "Finding",
    "LintReport",
    "Project",
    "RULES",
    "get_rule",
    "main",
    "run_lint",
]
