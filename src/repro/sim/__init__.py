"""Cycle-level cluster simulator (the GVSOC substitute).

The engine advances all cores in lockstep, arbitrating the shared
resources that create the paper's energy trade-off: TCDM bank ports
(one request per bank per cycle; losers stall and count a conflict),
the 2-cores-per-FPU sharing, the 15-cycle L2 and the event unit that
parks barrier waiters in clock gating.
"""

from repro.sim.counters import BankCounters, ClusterCounters, CoreCounters
from repro.sim.engine import simulate
from repro.sim.results import SimulationResult, sweep_cores

__all__ = [
    "BankCounters",
    "ClusterCounters",
    "CoreCounters",
    "simulate",
    "SimulationResult",
    "sweep_cores",
]
