"""Data types manipulated by the dataset kernels.

The paper restricts itself to 32-bit integers and 32-bit single-precision
floats (PULP's RI5CY cores have no double-precision support); compact 8/16
bit types are explicitly left to future work.  We model the same two.
"""

from __future__ import annotations

from enum import Enum


class DType(Enum):
    """Element type of a kernel's data arrays."""

    INT32 = "int32"
    FP32 = "fp32"

    @property
    def size_bytes(self) -> int:
        """Size in bytes of one element (both supported types are 32-bit)."""
        return 4

    @property
    def is_float(self) -> bool:
        """True when arithmetic on this type is routed to the shared FPUs."""
        return self is DType.FP32

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def parse_dtype(text: str) -> DType:
    """Parse ``"int32"``/``"fp32"`` (case-insensitive) into a :class:`DType`."""
    normalized = text.strip().lower()
    for dtype in DType:
        if dtype.value == normalized:
            return dtype
    raise ValueError(f"unknown dtype {text!r}; expected one of "
                     f"{[d.value for d in DType]}")
