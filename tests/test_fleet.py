"""Tests for the multi-model serving fleet (pool, batching, router)."""

import json
import threading

import numpy as np
import pytest

from repro.api import (
    Classifier,
    MicroBatcher,
    ModelFleet,
    ModelKey,
    ModelPool,
    ReproConfig,
    ScoringClient,
    ScoringDaemon,
)
from repro.api.fleet.pool import cache_loader
from repro.api.protocol import MAX_REQUEST_BYTES, decode_request
from repro.errors import FleetError, ScoringError

TAG = "unit"


@pytest.fixture()
def tree_clf(tiny_dataset) -> Classifier:
    return Classifier(ReproConfig(profile="unit")).train(tiny_dataset)


@pytest.fixture()
def forest_clf(tiny_dataset) -> Classifier:
    config = ReproConfig(profile="unit", model="forest",
                         model_params={"n_estimators": 5},
                         feature_set="static-agg")
    return Classifier(config).train(tiny_dataset)


@pytest.fixture()
def agg_clf(tiny_dataset) -> Classifier:
    config = ReproConfig(profile="unit", feature_set="static-agg")
    return Classifier(config).train(tiny_dataset)


def counting_loader(variants: dict):
    """A pool loader over prebuilt classifiers that counts loads."""
    calls = {"n": 0, "keys": []}

    def load(key: ModelKey) -> Classifier:
        calls["n"] += 1
        calls["keys"].append(key.spec)
        try:
            return variants[(key.family, key.feature_set)]
        except KeyError:
            raise FleetError(f"no artifact for {key.spec!r}")

    return load, calls


class TestModelKey:
    def test_parse_full_and_default_tag(self):
        key = ModelKey.parse("forest:dynamic:paper")
        assert key == ModelKey("forest", "dynamic", "paper")
        assert key.spec == "forest:dynamic:paper"
        short = ModelKey.parse("tree:static-all", default_tag="unit")
        assert short.dataset_tag == "unit"

    @pytest.mark.parametrize("bad", ["", "tree", "a:b:c:d", ":static-all",
                                     "tree::unit", None, 7, "  "])
    def test_parse_rejects_malformed_specs(self, bad):
        with pytest.raises(FleetError):
            ModelKey.parse(bad, default_tag="unit")

    def test_for_classifier(self, tree_clf):
        key = ModelKey.for_classifier(tree_clf)
        assert key == ModelKey("tree", "static-all", "unit")


class TestModelPool:
    def test_default_model_and_explicit_key(self, tree_clf, forest_clf):
        pool = ModelPool(loader=lambda key: forest_clf, default_tag=TAG)
        default_key = pool.add(tree_clf, default=True)
        assert pool.default_key == default_key
        assert pool.get() is tree_clf
        assert pool.get("tree:static-all") is tree_clf
        assert pool.get("forest:static-agg") is forest_clf  # lazy load
        assert len(pool) == 2

    def test_no_default_raises(self):
        pool = ModelPool(loader=lambda key: None, default_tag=TAG)
        with pytest.raises(FleetError, match="no default"):
            pool.get()

    def test_lru_eviction_then_transparent_reload(self, tree_clf, agg_clf,
                                                  forest_clf):
        loader, calls = counting_loader({
            ("tree", "static-all"): tree_clf,
            ("tree", "static-agg"): agg_clf,
            ("forest", "static-agg"): forest_clf,
        })
        pool = ModelPool(loader=loader, max_models=2, default_tag=TAG)
        pool.get("tree:static-all")
        pool.get("tree:static-agg")
        # touch static-all so static-agg is the LRU victim
        pool.get("tree:static-all")
        pool.get("forest:static-agg")  # admits a third -> evicts one
        assert len(pool) == 2
        assert "tree:static-agg:unit" not in pool
        assert pool.stats()["evictions"] == 1
        # the evicted key stays servable: next request reloads it
        before = calls["n"]
        assert pool.get("tree:static-agg") is agg_clf
        assert calls["n"] == before + 1
        # a resident key is served without a reload
        pool.get("tree:static-agg")
        assert calls["n"] == before + 1

    def test_memory_budget_eviction(self, tree_clf, agg_clf):
        loader, calls = counting_loader({
            ("tree", "static-all"): tree_clf,
            ("tree", "static-agg"): agg_clf,
        })
        pool = ModelPool(loader=loader, default_tag=TAG)
        pool.get("tree:static-all")
        size = pool.entries()[0]["size_bytes"]
        assert size > 0
        # budget holds one model but not two
        pool.memory_budget_bytes = int(size * 1.5)
        pool.get("tree:static-agg")
        assert len(pool) == 1
        assert "tree:static-agg:unit" in pool  # newest survives

    def test_pinned_default_is_never_evicted(self, tree_clf, agg_clf,
                                             forest_clf):
        loader, _ = counting_loader({
            ("tree", "static-agg"): agg_clf,
            ("forest", "static-agg"): forest_clf,
        })
        pool = ModelPool(loader=loader, max_models=1, default_tag=TAG)
        pool.add(tree_clf, default=True)
        pool.get("tree:static-agg")
        pool.get("forest:static-agg")
        assert "tree:static-all:unit" in pool  # pinned default survived
        with pytest.raises(FleetError, match="pinned"):
            pool.evict("tree:static-all")

    def test_evict_unknown_key_returns_false(self, tree_clf):
        pool = ModelPool(loader=lambda key: tree_clf, default_tag=TAG)
        assert pool.evict("tree:static-all") is False

    def test_loader_failure_is_a_fleet_error(self):
        loader, _ = counting_loader({})
        pool = ModelPool(loader=loader, default_tag=TAG)
        with pytest.raises(FleetError, match="no artifact"):
            pool.get("tree:static-all")
        # the failed load does not poison later attempts
        with pytest.raises(FleetError, match="no artifact"):
            pool.get("tree:static-all")

    def test_concurrent_cold_gets_load_once(self, tree_clf):
        loading = threading.Event()
        calls = {"n": 0}

        def slow_loader(key):
            calls["n"] += 1
            loading.wait(2)
            return tree_clf

        pool = ModelPool(loader=slow_loader, default_tag=TAG)
        results: list = []

        def get() -> None:
            results.append(pool.get("tree:static-all"))

        threads = [threading.Thread(target=get) for _ in range(6)]
        for thread in threads:
            thread.start()
        loading.set()
        for thread in threads:
            thread.join(10)
        assert results == [tree_clf] * 6
        assert calls["n"] == 1  # single-flight

    def test_cache_loader_miss_refuses_to_train(self, tmp_path):
        loader = cache_loader(cache_dir=str(tmp_path))
        with pytest.raises(FleetError, match="no cached artifact"):
            loader(ModelKey("tree", "static-all", "unit"))


class TestMicroBatcher:
    def test_blocking_predict_matches_direct(self, tree_clf, tiny_dataset):
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        with MicroBatcher(max_batch=4, max_delay_us=200) as batcher:
            got = [batcher.predict(tree_clf, list(row)) for row in X]
        assert got == [int(p) for p in tree_clf.predict_batch(X)]

    def test_concurrent_rows_coalesce_and_match(self, tree_clf,
                                                tiny_dataset):
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        expected = [int(p) for p in tree_clf.predict_batch(X)]
        batcher = MicroBatcher(max_batch=64, max_delay_us=5000)
        results: dict = {}
        lock = threading.Lock()

        def score(slot: int) -> None:
            got = [batcher.predict(tree_clf, list(row)) for row in X]
            with lock:
                results[slot] = got

        threads = [threading.Thread(target=score, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        batcher.close()
        assert results == {i: expected for i in range(8)}
        stats = batcher.stats()
        assert stats["rows"] == 8 * len(X)
        assert stats["largest_batch"] > 1  # rows actually coalesced

    def test_flush_on_shutdown_answers_every_queued_row(self, tree_clf,
                                                        tiny_dataset):
        """close() must flush: accepted rows are answered, not dropped."""
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        expected = [int(p) for p in tree_clf.predict_batch(X)]
        # a huge delay window: without the flush, rows would sit queued
        batcher = MicroBatcher(max_batch=1024, max_delay_us=30_000_000)
        answered: list = [None] * len(X)

        def on_done_for(slot: int):
            def on_done(prediction, error) -> None:
                answered[slot] = (prediction, error)
            return on_done

        for slot, row in enumerate(X):
            batcher.submit(tree_clf, list(row), on_done_for(slot))
        batcher.close()
        assert [p for p, _ in answered] == expected
        assert all(err is None for _, err in answered)

    def test_predict_block_matches_direct(self, tree_clf, tiny_dataset):
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        block = np.ascontiguousarray(X, dtype="<f4")
        with MicroBatcher(max_batch=4, max_delay_us=200) as batcher:
            got = batcher.predict_block(tree_clf, block)
        assert [int(p) for p in got] == \
            [int(p) for p in tree_clf.predict_batch(
                block.astype(np.float64))]

    def test_blocks_and_singles_coalesce_in_order(self, tree_clf,
                                                  tiny_dataset):
        """A block and single rows sharing one coalesced batch scatter
        back to their own callers, in item order."""
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        block = np.ascontiguousarray(X, dtype="<f4")
        expected = [int(p) for p in tree_clf.predict_batch(
            block.astype(np.float64))]
        batcher = MicroBatcher(max_batch=256, max_delay_us=5000)
        results: dict = {}
        lock = threading.Lock()

        def score_block() -> None:
            got = [int(p) for p in
                   batcher.predict_block(tree_clf, block)]
            with lock:
                results["block"] = got

        def score_singles() -> None:
            got = [batcher.predict(tree_clf, list(row)) for row in X]
            with lock:
                results["singles"] = got

        threads = [threading.Thread(target=score_block),
                   threading.Thread(target=score_singles)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        batcher.close()
        assert results == {"block": expected, "singles": expected}
        assert batcher.stats()["rows"] == 2 * len(X)

    def test_submit_block_after_close_raises(self, tree_clf,
                                             tiny_dataset):
        X = np.ascontiguousarray(
            tiny_dataset.matrix(tree_clf.feature_names_), dtype="<f4")
        batcher = MicroBatcher()
        batcher.close()
        with pytest.raises(FleetError, match="closed"):
            batcher.submit_block(tree_clf, X, lambda p, e: None)

    def test_submit_after_close_raises(self, tree_clf, tiny_dataset):
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        batcher = MicroBatcher()
        batcher.close()
        batcher.close()  # idempotent
        with pytest.raises(FleetError, match="closed"):
            batcher.submit(tree_clf, list(X[0]), lambda p, e: None)

    def test_knob_validation(self):
        with pytest.raises(FleetError):
            MicroBatcher(max_batch=0)
        with pytest.raises(FleetError):
            MicroBatcher(max_delay_us=-1)
        with pytest.raises(FleetError):
            MicroBatcher(queue_size=0)


class TestProtocolEdges:
    def test_oversized_request_line(self):
        line = '{"pad": "' + "x" * 64 + '"}'
        request, error = decode_request(line, max_bytes=32)
        assert request is None
        assert error["ok"] is False
        assert error["code"] == "too_large"
        # and the default bound is permissive but real
        assert decode_request('{"cmd": "info"}')[0] == {"cmd": "info"}
        assert MAX_REQUEST_BYTES >= 1024 * 1024

    def test_oversized_line_through_the_fleet(self, tree_clf):
        fleet = ModelFleet(default=tree_clf)
        line = '{"pad": "' + "x" * (MAX_REQUEST_BYTES + 16) + '"}\n'
        frame = json.loads(fleet.process_line(line))
        assert frame["ok"] is False
        assert frame["code"] == "too_large"


class TestModelFleetRouter:
    def _fleet(self, tree_clf, variants=None, batcher=None):
        loader, calls = counting_loader(variants or {})
        pool = ModelPool(loader=loader, default_tag=TAG)
        fleet = ModelFleet(pool, batcher=batcher, default=tree_clf)
        return fleet, calls

    def test_default_model_serves_requests_without_model_field(
            self, tree_clf, tiny_dataset):
        fleet, _ = self._fleet(tree_clf)
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        frame = fleet.handle_request({"rows": X.tolist(), "id": 1})
        assert frame["ok"] is True
        assert frame["predictions"] == \
            [int(p) for p in tree_clf.predict_batch(X)]
        assert frame["id"] == 1

    def test_model_field_routes_to_the_named_variant(
            self, tree_clf, forest_clf, tiny_dataset):
        fleet, calls = self._fleet(
            tree_clf, {("forest", "static-agg"): forest_clf})
        Xf = tiny_dataset.matrix(forest_clf.feature_names_)
        frame = fleet.handle_request(
            {"rows": Xf.tolist(), "model": "forest:static-agg"})
        assert frame["predictions"] == \
            [int(p) for p in forest_clf.predict_batch(Xf)]
        assert calls["keys"] == ["forest:static-agg:unit"]
        info = fleet.handle_request(
            {"cmd": "info", "model": "forest:static-agg"})
        assert info["info"]["model_family"] == "forest"

    def test_missing_artifact_answers_unknown_model(self, tree_clf):
        fleet, _ = self._fleet(tree_clf)
        frame = fleet.handle_request(
            {"features": [0.0], "model": "forest:static-agg", "id": 9})
        assert frame["ok"] is False
        assert frame["code"] == "unknown_model"
        assert frame["id"] == 9

    def test_malformed_model_spec_answers_bad_request(self, tree_clf):
        fleet, _ = self._fleet(tree_clf)
        frame = fleet.handle_request(
            {"features": [0.0], "model": "not-a-spec"})
        assert frame["ok"] is False
        assert frame["code"] == "bad_request"

    def test_unknown_verb_answers_bad_request(self, tree_clf):
        fleet, _ = self._fleet(tree_clf)
        # deliberately unknown verb: the bad_request path under test
        frame = fleet.handle_request(
            {"cmd": "frobnicate", "id": 3})  # repro: noqa[RPL001]
        assert frame["ok"] is False
        assert frame["code"] == "bad_request"
        assert frame["id"] == 3

    def test_admin_verbs(self, tree_clf, forest_clf):
        fleet, _ = self._fleet(
            tree_clf, {("forest", "static-agg"): forest_clf})
        loaded = fleet.handle_request(
            {"cmd": "load_model", "model": "forest:static-agg"})
        assert loaded["ok"] is True
        assert loaded["model"] == "forest:static-agg:unit"
        listing = fleet.handle_request({"cmd": "list_models"})
        specs = [m["model"] for m in listing["models"]]
        assert specs == ["tree:static-all:unit", "forest:static-agg:unit"]
        assert listing["models"][0]["pinned"] is True
        assert listing["stats"]["pool"]["resident_models"] == 2
        evicted = fleet.handle_request(
            {"cmd": "evict_model", "model": "forest:static-agg"})
        assert evicted["evicted"] is True
        assert len(fleet.pool) == 1

    def test_evicting_the_pinned_default_is_refused(self, tree_clf):
        fleet, _ = self._fleet(tree_clf)
        frame = fleet.handle_request(
            {"cmd": "evict_model", "model": "tree:static-all"})
        assert frame["ok"] is False
        assert frame["code"] == "bad_request"
        assert "pinned" in frame["error"]

    def test_admin_verbs_require_a_model_key(self, tree_clf):
        fleet, _ = self._fleet(tree_clf)
        for cmd in ("load_model", "evict_model"):
            frame = fleet.handle_request({"cmd": cmd})
            assert frame["ok"] is False
            assert frame["code"] == "bad_request"

    def test_batched_and_unbatched_frames_are_identical(
            self, tree_clf, tiny_dataset):
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        plain = ModelFleet(default=tree_clf)
        batched = ModelFleet(default=tree_clf,
                             batcher=MicroBatcher(max_batch=8,
                                                  max_delay_us=100))
        try:
            for row in X:
                line = json.dumps({"features": list(row), "id": 5}) + "\n"
                assert batched.process_line(line) == \
                    plain.process_line(line)
        finally:
            batched.close()


class TestFleetDaemon:
    def test_two_models_concurrently_byte_identical(
            self, tree_clf, forest_clf, tiny_dataset, tmp_path):
        """Acceptance: one daemon, >= 2 distinct model/feature-set
        artifacts, concurrent clients, per-model byte-identical wire
        predictions vs direct Classifier.predict_batch."""
        loader, _ = counting_loader(
            {("forest", "static-agg"): forest_clf})
        pool = ModelPool(loader=loader, default_tag=TAG)
        fleet = ModelFleet(pool, MicroBatcher(max_batch=16,
                                              max_delay_us=500),
                           default=tree_clf)
        Xt = tiny_dataset.matrix(tree_clf.feature_names_)
        Xf = tiny_dataset.matrix(forest_clf.feature_names_)
        expected = {
            None: [int(p) for p in tree_clf.predict_batch(Xt)],
            "forest:static-agg": [int(p) for p in
                                  forest_clf.predict_batch(Xf)],
        }
        unix_path = str(tmp_path / "fleet.sock")
        results: list = [None] * 8
        errors: list = []

        def worker(slot: int) -> None:
            model = None if slot % 2 == 0 else "forest:static-agg"
            X = Xt if model is None else Xf
            try:
                with ScoringClient(socket_path=unix_path) as client:
                    batch = client.predict_batch(X, model=model)
                    singles = [client.predict(list(row), model=model)
                               for row in X]
                    results[slot] = (model, batch, singles)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        daemon = ScoringDaemon(fleet=fleet, socket_path=unix_path,
                               workers=8)
        with daemon:
            threads = [threading.Thread(target=worker, args=(slot,))
                       for slot in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
        fleet.close()
        assert not errors
        for model, batch, singles in results:
            assert batch == expected[model]
            assert singles == expected[model]

    def test_old_clients_keep_working_against_a_fleet_daemon(
            self, tree_clf, tiny_dataset, tmp_path):
        """Protocol backward compatibility: requests without a 'model'
        field (the entire PR 3 client surface) serve from the pinned
        default with identical frames."""
        fleet = ModelFleet(default=tree_clf)
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        unix_path = str(tmp_path / "compat.sock")
        with ScoringDaemon(fleet=fleet, socket_path=unix_path, workers=2):
            with ScoringClient(socket_path=unix_path) as client:
                # the PR 3 verbs, untouched: no model= anywhere
                assert client.predict_batch(X) == \
                    [int(p) for p in tree_clf.predict_batch(X)]
                assert client.predict(list(X[0])) == \
                    tree_clf.predict(X[0])
                mapping = dict(zip(tree_clf.feature_names_, X[1]))
                assert client.predict(mapping) == tree_clf.predict(X[1])
                assert client.info()["model_family"] == "tree"
                with pytest.raises(ScoringError) as excinfo:
                    client.predict({"op": 1.0})
                assert excinfo.value.code == "bad_request"

    def test_daemon_requires_exactly_one_scorer(self, tree_clf, tmp_path):
        from repro.errors import DaemonError
        fleet = ModelFleet(default=tree_clf)
        path = str(tmp_path / "x.sock")
        with pytest.raises(DaemonError, match="exactly one scorer"):
            ScoringDaemon(tree_clf, socket_path=path, fleet=fleet)
        with pytest.raises(DaemonError, match="exactly one scorer"):
            ScoringDaemon(socket_path=path)


class TestClientReconnect:
    def test_retry_survives_a_daemon_restart(self, tree_clf, tiny_dataset,
                                             tmp_path):
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        expected = tree_clf.predict(X[0])
        unix_path = str(tmp_path / "restart.sock")
        first = ScoringDaemon(tree_clf, socket_path=unix_path, workers=1)
        first.start()
        client = ScoringClient(socket_path=unix_path)
        try:
            assert client.predict(list(X[0])) == expected
            first.stop()
            second = ScoringDaemon(tree_clf, socket_path=unix_path,
                                   workers=1)
            second.start()
            try:
                # the old connection is dead; the client reconnects and
                # the request succeeds instead of raising
                assert client.predict(list(X[0])) == expected
            finally:
                second.stop()
        finally:
            client.close()
            first.stop()

    def test_daemon_gone_for_good_raises_one_clean_error(
            self, tree_clf, tiny_dataset, tmp_path):
        X = tiny_dataset.matrix(tree_clf.feature_names_)
        unix_path = str(tmp_path / "gone.sock")
        daemon = ScoringDaemon(tree_clf, socket_path=unix_path, workers=1)
        daemon.start()
        client = ScoringClient(socket_path=unix_path)
        try:
            client.predict(list(X[0]))
            daemon.stop()  # socket unlinked; nothing to reconnect to
            with pytest.raises(ScoringError) as excinfo:
                client.predict(list(X[0]))
            assert excinfo.value.code == "transport"
            assert not isinstance(excinfo.value, OSError)
        finally:
            client.close()

    def test_reconnect_can_be_disabled(self, tmp_path):
        with pytest.raises(ScoringError):
            ScoringClient(socket_path=str(tmp_path / "x.sock"),
                          reconnect_retries=-1)


def test_numpy_roundtrip_is_byte_identical_through_batching(
        tree_clf, tiny_dataset, tmp_path):
    """JSON wire frames from the micro-batched path carry plain ints."""
    X = tiny_dataset.matrix(tree_clf.feature_names_)
    fleet = ModelFleet(default=tree_clf,
                       batcher=MicroBatcher(max_batch=4, max_delay_us=100))
    try:
        frame = json.loads(fleet.process_line(
            json.dumps({"features": list(X[0])}) + "\n"))
        assert frame["prediction"] == tree_clf.predict(X[0])
        assert np.asarray(frame["prediction"]).dtype.kind == "i"
    finally:
        fleet.close()


def test_eventloop_shim_warns_on_import():
    """The PR 4 fleet event-loop module is a deprecated alias now."""
    import importlib
    import sys
    import warnings

    sys.modules.pop("repro.api.fleet.eventloop", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module("repro.api.fleet.eventloop")
    assert any(issubclass(w.category, DeprecationWarning)
               and "repro.api.transport" in str(w.message)
               for w in caught)
    # the shimmed names still resolve for embedders
    from repro.api.transport import EventLoopServer

    assert issubclass(module.FleetEventLoop, EventLoopServer)
