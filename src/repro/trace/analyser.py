"""The trace analyser: regex parsing + listener dispatch.

Reads a GVSOC-style trace line by line, parses each with a regular
expression into (cycle, component path, payload), and forwards the event
to whichever listener registered that path — the same two-module design
(listeners + trace-analyser) the paper describes in §IV.A.  Events can be
filtered to the kernel's cycle window before dispatch.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TraceError
from repro.trace.format import KERNEL_PATH, parse_line
from repro.trace.listeners import PULPListeners


class TraceAnalyser:
    """Dispatches parsed trace events to registered listeners."""

    def __init__(self, listeners: PULPListeners) -> None:
        self.listeners = listeners
        self._dispatch: dict[str, object] = {}
        for listener in listeners.all_listeners():
            for path in listener.paths():
                if path in self._dispatch:
                    raise TraceError(f"duplicate listener path {path!r}")
                self._dispatch[path] = listener

    def process(self, lines: Iterable[str],
                cycle_range: tuple[int, int] | None = None) -> int:
        """Parse and dispatch *lines*; returns the number of events used.

        *cycle_range* restricts dispatch to ``lo <= cycle <= hi`` (the
        paper filters events to the ``void kernel(...)`` region; our
        traces cover exactly that region, delimited by the
        ``cluster/kernel/trace`` begin/end markers).
        """
        dispatched = 0
        for line in lines:
            if not line.strip():
                continue
            cycle, path, payload = parse_line(line)
            if path == KERNEL_PATH:
                if payload == "begin":
                    self.listeners.kernel_begin = cycle
                elif payload == "end":
                    self.listeners.kernel_end = cycle
                else:
                    raise TraceError(f"unknown kernel marker {payload!r}")
                continue
            if cycle_range is not None:
                lo, hi = cycle_range
                if not lo <= cycle <= hi:
                    continue
            listener = self._dispatch.get(path)
            if listener is None:
                raise TraceError(f"no listener registered for {path!r}")
            listener.on_event(cycle, path, payload)
            dispatched += 1
        return dispatched


def analyse_trace(lines: Iterable[str], n_cores: int = 8,
                  n_l1_banks: int = 16, n_l2_banks: int = 32,
                  n_fpus: int = 4) -> PULPListeners:
    """Convenience wrapper: build listeners, process *lines*, return them."""
    listeners = PULPListeners(n_cores=n_cores, n_l1_banks=n_l1_banks,
                              n_l2_banks=n_l2_banks, n_fpus=n_fpus)
    TraceAnalyser(listeners).process(lines)
    return listeners
