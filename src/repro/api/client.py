"""Wire client for the persistent scoring daemon.

:class:`ScoringClient` speaks the JSON-lines protocol of
:mod:`repro.api.protocol` over a Unix domain socket or TCP connection
to a :class:`repro.api.daemon.ScoringDaemon`.  Every request is stamped
with a monotonically increasing ``"id"`` and the response id is checked
against it, so a desynchronized stream surfaces as a loud
:class:`repro.errors.ScoringError` instead of silently mis-pairing
answers.  Typed error frames from the daemon raise
:class:`ScoringError` with the frame's machine-readable ``code``.

Usage::

    with ScoringClient(socket_path="/tmp/repro.sock") as client:
        client.predict({"op": 3072.0, ...})     # feature mapping
        client.predict_kernel("gemm", size=512)  # registry kernel
        client.predict_batch(rows)               # (n, n_features) rows
        client.info()                            # loaded-model summary
"""

from __future__ import annotations

import json
import socket
import threading

from repro.errors import ScoringError

#: raised (as ScoringError.code) on response-id mismatches.
ERROR_ID_MISMATCH = "id_mismatch"
#: raised (as ScoringError.code) on transport-level failures.
ERROR_TRANSPORT = "transport"


class ScoringClient:
    """One connection to a scoring daemon; thread-safe request pairing.

    Exactly one endpoint must be given: ``socket_path`` (Unix domain
    socket) or ``tcp`` (a ``(host, port)`` pair).  The connection opens
    eagerly so a bad endpoint fails at construction, not first use.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        timeout: float = 30.0,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ScoringError(
                "configure exactly one endpoint: socket_path=PATH or "
                "tcp=(host, port)",
                code=ERROR_TRANSPORT,
            )
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            endpoint: object = socket_path
        else:
            host, port = tcp
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            endpoint = (host, int(port))
        sock.settimeout(timeout)
        try:
            sock.connect(endpoint)
        except OSError as exc:
            sock.close()
            raise ScoringError(
                f"cannot connect to scoring daemon at {endpoint!r}: {exc}",
                code=ERROR_TRANSPORT,
            )
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8")
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False

    # -- plumbing ----------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one request frame, await and validate its response.

        Returns the decoded success frame.  Raises
        :class:`ScoringError` on typed error frames (carrying the
        daemon's ``code``), on response-id mismatches and on transport
        failures.
        """
        with self._lock:
            if self._closed:
                raise ScoringError("client is closed", code=ERROR_TRANSPORT)
            req_id = self._next_id
            self._next_id += 1
            frame = dict(payload)
            frame["id"] = req_id
            try:
                self._sock.sendall((json.dumps(frame) + "\n").encode("utf-8"))
                line = self._reader.readline()
            except OSError as exc:
                raise ScoringError(
                    f"transport failure talking to the daemon: {exc}",
                    code=ERROR_TRANSPORT,
                    request_id=req_id,
                )
            if not line:
                raise ScoringError(
                    "connection closed by the daemon before a response "
                    "arrived",
                    code=ERROR_TRANSPORT,
                    request_id=req_id,
                )
            try:
                response = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ScoringError(
                    f"daemon sent an undecodable frame: {exc}",
                    code=ERROR_TRANSPORT,
                    request_id=req_id,
                )
        if not isinstance(response, dict):
            raise ScoringError(
                "daemon sent a non-object frame",
                code=ERROR_TRANSPORT,
                request_id=req_id,
            )
        if not response.get("ok") and "id" not in response:
            # an error frame may legitimately lack an id (the daemon
            # could not decode the request far enough to find one);
            # surface the daemon's code rather than an id mismatch
            raise ScoringError(
                str(response.get("error", "unspecified daemon error")),
                code=response.get("code"),
                request_id=req_id,
            )
        if response.get("id") != req_id:
            raise ScoringError(
                f"response id {response.get('id')!r} does not match "
                f"request id {req_id!r}; stream is desynchronized",
                code=ERROR_ID_MISMATCH,
                request_id=req_id,
            )
        if not response.get("ok"):
            raise ScoringError(
                str(response.get("error", "unspecified daemon error")),
                code=response.get("code"),
                request_id=req_id,
            )
        return response

    # -- scoring verbs -----------------------------------------------------

    def predict(self, features) -> int:
        """Score one feature mapping or feature vector."""
        if hasattr(features, "keys"):
            payload = {"features": {k: float(v) for k, v in features.items()}}
        else:
            payload = {"features": [float(v) for v in features]}
        return int(self.request(payload)["prediction"])

    def predict_kernel(
        self,
        name: str,
        dtype: str = "int32",
        size: int = 2048,
    ) -> int:
        """Score a registry kernel built server-side."""
        response = self.request({"kernel": name, "dtype": dtype, "size": size})
        return int(response["prediction"])

    def predict_batch(self, rows) -> list:
        """Score many pre-assembled feature vectors in one round trip."""
        if hasattr(rows, "tolist"):
            rows = rows.tolist()
        encoded = [[float(v) for v in row] for row in rows]
        response = self.request({"rows": encoded})
        return [int(p) for p in response["predictions"]]

    def info(self) -> dict:
        """The daemon's loaded-model summary (family, features, versions)."""
        return dict(self.request({"cmd": "info"})["info"])

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the connection; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._reader.close()
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ScoringClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
