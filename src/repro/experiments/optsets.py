"""Importance-based feature pruning (the paper's ``*-opt`` sets).

§IV.C: "Scoring the features used by the decision tree by importance and
pruning less informative ones allows getting an optimised classifier".
We reproduce that: run the repeated CV once on the full set, average the
gini importances over folds/repeats, and keep the smallest prefix of the
importance ranking that covers a target share of the total importance.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.build import Dataset
from repro.ml.model_selection import repeated_cv_predict
from repro.ml.tree import DecisionTreeClassifier

#: cumulative importance share the pruned set must retain.
DEFAULT_COVERAGE = 0.90
#: never prune below this many features.
MIN_FEATURES = 3


def rank_features(dataset: Dataset, names: list[str], n_splits: int = 10,
                  repeats: int = 5, seed: int = 0,
                  ) -> list[tuple[str, float]]:
    """(feature, mean importance) pairs, sorted by importance."""
    X = dataset.matrix(names)
    y = dataset.labels
    _, importances = repeated_cv_predict(
        lambda: DecisionTreeClassifier(random_state=seed), X, y,
        n_splits=n_splits, repeats=repeats, seed=seed)
    order = np.argsort(importances)[::-1]
    return [(names[i], float(importances[i])) for i in order]


def prune_by_importance(ranking: list[tuple[str, float]],
                        coverage: float = DEFAULT_COVERAGE,
                        min_features: int = MIN_FEATURES) -> list[str]:
    """Shortest importance-ranked prefix covering *coverage* of the mass."""
    total = sum(score for _, score in ranking) or 1.0
    kept: list[str] = []
    acc = 0.0
    for name, score in ranking:
        kept.append(name)
        acc += score / total
        if acc >= coverage and len(kept) >= min_features:
            break
    return kept


def optimised_set(dataset: Dataset, base_names: list[str],
                  n_splits: int = 10, repeats: int = 5, seed: int = 0,
                  coverage: float = DEFAULT_COVERAGE) -> list[str]:
    """The pruned (``*-opt``) feature list for a base feature set."""
    ranking = rank_features(dataset, base_names, n_splits=n_splits,
                            repeats=repeats, seed=seed)
    return prune_by_importance(ranking, coverage=coverage)
