"""Trace sink implementing the engine's callback protocol.

Collects lines in memory (or streams them to a file-like object).  Line
order is emission order; cycles within a line are authoritative, so
consumers must not assume global cycle ordering (barrier releases emit
exit events for several cores at once).
"""

from __future__ import annotations

from typing import IO

from repro.isa.encoding import format_instr
from repro.trace.format import (
    DMA_PATH,
    ICACHE_PATH,
    KERNEL_PATH,
    format_line,
    l1_bank_path,
    l2_bank_path,
    pe_insn_path,
    pe_state_path,
)


class TraceWriter:
    """Accumulates GVSOC-style trace lines from a simulation."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.lines: list[str] = []
        self._stream = stream

    def _emit(self, cycle: int, path: str, payload: str) -> None:
        line = format_line(cycle, path, payload)
        if self._stream is not None:
            self._stream.write(line + "\n")
        else:
            self.lines.append(line)

    # -- engine callback protocol -------------------------------------------------

    def instr(self, cycle: int, core: int, op: int, arg: int) -> None:
        self._emit(cycle, pe_insn_path(core), format_instr(op, arg))

    def core_state(self, cycle: int, core: int, state: str) -> None:
        self._emit(cycle, pe_state_path(core), state)

    def l1(self, cycle: int, bank: int, kind: str) -> None:
        self._emit(cycle, l1_bank_path(bank), kind)

    def l2(self, cycle: int, bank: int, kind: str) -> None:
        self._emit(cycle, l2_bank_path(bank), kind)

    def icache(self, cycle: int, kind: str, count: int = 1) -> None:
        self._emit(cycle, ICACHE_PATH, f"{kind} n={count}")

    def dma(self, cycle: int, words: int) -> None:
        self._emit(cycle, DMA_PATH, f"transfer n={words}")

    def kernel_marker(self, cycle: int, which: str) -> None:
        self._emit(cycle, KERNEL_PATH, which)
