"""Version constants shared by the library, CLI and model artifacts.

``CODE_VERSION`` is bumped whenever engine/compiler semantics change in
a way that affects simulation counts — it invalidates both the on-disk
simulation cache and serialized classifier artifacts (labels may no
longer hold under the new semantics).  The package version's minor
component tracks it, so ``repro --version`` output and artifact
metadata can be correlated.
"""

#: bump when engine/compiler semantics change in a way that affects counts.
CODE_VERSION = 5

__version__ = f"1.{CODE_VERSION}.0"
