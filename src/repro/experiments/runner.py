"""Shared experiment plumbing: dataset loading and evaluation defaults.

The evaluation protocol follows §IV.B: stratified 10-fold CV; the paper
repeats it 100 times — our default is 10 repeats (set
``REPRO_CV_REPEATS=100`` to match exactly; curves move by well under a
point beyond ~10 repeats).

``REPRO_PROFILE`` selects the dataset profile (``paper`` by default;
``quick`` drops the largest payload size for faster cold builds) and
``REPRO_JOBS`` the worker count for the labelling campaign and CV
repeats.  Misconfigured values warn instead of being silently ignored.
"""

from __future__ import annotations

import os
import warnings

from repro.dataset.build import Dataset, build_dataset
from repro.dataset.spec import PROFILES
from repro.parallel import resolve_jobs

DEFAULT_TOLERANCES = tuple(range(0, 9))


def cv_repeats(default: int = 10) -> int:
    raw = os.environ.get("REPRO_CV_REPEATS")
    if raw is None:
        return max(1, default)
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"invalid REPRO_CV_REPEATS={raw!r} (not an integer); "
            f"falling back to {default}", RuntimeWarning, stacklevel=2)
        return default


def active_profile(default: str = "paper") -> str:
    profile = os.environ.get("REPRO_PROFILE", default)
    if profile not in PROFILES:
        warnings.warn(
            f"unknown REPRO_PROFILE={profile!r}; known profiles: "
            f"{sorted(PROFILES)}", RuntimeWarning, stacklevel=2)
    return profile


def default_jobs(default: int = 1) -> int:
    """Worker count from ``$REPRO_JOBS`` (see :mod:`repro.parallel`)."""
    return resolve_jobs(None, default=default)


def load_dataset(profile: str | None = None, progress=None,
                 jobs: int | None = None) -> Dataset:
    """Build or reload the dataset for the active profile."""
    return build_dataset(profile or active_profile(), progress=progress,
                         jobs=jobs)
