"""On-disk caching of simulation results.

The campaign is 448 samples x 8 team sizes = 3584 cluster simulations —
minutes of work worth caching.  Raw *counters* are cached (not energies):
energy models are cheap to re-apply, so ablations over Table-I variants
reuse the same simulations.

Cache entries are invalidated by a fingerprint covering the kernel IR
(structure, placements, sizes), the cluster configuration and a manual
``CODE_VERSION`` bumped whenever simulator semantics change.

Concurrency and safety guarantees
---------------------------------

The cache is safe to share between processes (the parallel labelling
campaign points every worker at the same directory):

* **Atomic publication** — :meth:`SimCache.store` writes to a unique
  temporary file (``tempfile.mkstemp`` in the cache directory, so the
  rename never crosses a filesystem boundary) and publishes it with
  ``os.replace``.  Readers only ever see a missing file or a complete
  one, never a half-written entry.  Two concurrent writers of the same
  sample race benignly: each publishes a complete file and the last
  rename wins.
* **Collision-free filenames** — cache paths append a short hash of the
  *original* sample id to the sanitised name, so distinct ids that
  sanitise identically (``a/b`` vs ``a_b``) cannot cross-contaminate.
* **Corruption tolerance** — :meth:`SimCache.load` treats unreadable or
  fingerprint-mismatched entries as cache misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile

from repro.ir.nodes import (
    Barrier,
    Compute,
    Critical,
    Kernel,
    Load,
    Loop,
    ParallelFor,
    Sequential,
    SequentialFor,
    Store,
)
from repro.platform.config import ClusterConfig
from repro.version import CODE_VERSION  # noqa: F401  (canonical home moved)


def _node_repr(stmt) -> str:
    if isinstance(stmt, Compute):
        return f"C({stmt.kind.value},{stmt.count})"
    if isinstance(stmt, Load):
        return f"L({stmt.array},{stmt.index.to_python()})"
    if isinstance(stmt, Store):
        return f"S({stmt.array},{stmt.index.to_python()})"
    if isinstance(stmt, Loop):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return (f"F({stmt.var},{stmt.lower.to_python()},"
                f"{stmt.upper.to_python()})[{inner}]")
    if isinstance(stmt, Critical):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return f"X({stmt.name})[{inner}]"
    if isinstance(stmt, ParallelFor):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return (f"P({stmt.var},{stmt.lower.to_python()},"
                f"{stmt.upper.to_python()},{int(stmt.nowait)})[{inner}]")
    if isinstance(stmt, Sequential):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return f"Q[{inner}]"
    if isinstance(stmt, SequentialFor):
        inner = ";".join(_node_repr(s) for s in stmt.body)
        return (f"T({stmt.var},{stmt.lower.to_python()},"
                f"{stmt.upper.to_python()})[{inner}]")
    if isinstance(stmt, Barrier):
        return "B"
    raise TypeError(f"unexpected node {type(stmt).__name__}")


def kernel_fingerprint(kernel: Kernel, config: ClusterConfig) -> str:
    """Stable hash of everything that determines simulation counts."""
    arrays = ",".join(f"{a.name}:{a.length}:{a.space}"
                      for a in kernel.arrays)
    body = ";".join(_node_repr(stmt) for stmt in kernel.body)
    text = "|".join([
        f"v{CODE_VERSION}",
        kernel.name, kernel.dtype.value, str(kernel.size_bytes),
        arrays, body, config.cache_key(),
    ])
    return hashlib.sha1(text.encode()).hexdigest()


def _safe_name(sample_id: str) -> str:
    """Filesystem-safe, collision-free filename stem for *sample_id*.

    Sanitising alone is lossy (``a/b`` and ``a_b`` both become ``a_b``),
    so a short hash of the original id disambiguates.
    """
    digest = hashlib.sha1(sample_id.encode()).hexdigest()[:8]
    return re.sub(r"[^A-Za-z0-9._-]", "_", sample_id) + "-" + digest


class SimCache:
    """One JSON file per sample, holding counters for every team size."""

    def __init__(self, cache_dir: str) -> None:
        self.cache_dir = cache_dir
        os.makedirs(cache_dir, exist_ok=True)

    def _path(self, sample_id: str) -> str:
        return os.path.join(self.cache_dir, _safe_name(sample_id) + ".json")

    def load(self, sample_id: str, fingerprint: str) -> dict:
        """Cached ``{team(str): counters_dict}`` or an empty dict."""
        path = self._path(sample_id)
        if not os.path.exists(path):
            return {}
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        if data.get("fingerprint") != fingerprint:
            return {}
        return data.get("teams", {})

    def store(self, sample_id: str, fingerprint: str,
              teams: dict) -> None:
        """Atomically publish the entry (safe under concurrent writers).

        A fixed ``path + ".tmp"`` staging name would let two concurrent
        writers truncate each other mid-dump and ``os.replace`` publish
        a half-written file; ``mkstemp`` gives each writer a private
        staging file in the same directory instead.
        """
        path = self._path(sample_id)
        fd, tmp = tempfile.mkstemp(
            dir=self.cache_dir,
            prefix=os.path.basename(path) + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"fingerprint": fingerprint, "teams": teams},
                          handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
