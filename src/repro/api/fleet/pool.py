"""Resident multi-model pool: many artifacts, one memory budget.

A :class:`ModelPool` hosts fitted :class:`repro.api.Classifier`
instances keyed by :class:`ModelKey` — *(model family, feature set,
dataset tag)*, the same identity the artifact cache uses.  Keys can be
**warm pre-loaded** at startup, **lazily loaded** on first request (from
the artifact cache, never by silently training), and **evicted** —
either explicitly or by LRU pressure when the pool exceeds its
configurable memory budget.  The daemon's default model is admitted
*pinned*: it is never evicted, so old single-model clients keep a
resident model no matter what traffic the rest of the fleet sees.

Loads are single-flight: concurrent first requests for the same cold
key share one load instead of racing, and prediction traffic for
already-resident keys never blocks behind a load of a different key.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.api.artifact_cache import load_cached
from repro.api.classifier import BACKEND_COMPILED, Classifier
from repro.api.config import ReproConfig
from repro.api.registry import model_payload_bytes
from repro.errors import FleetError, MLError


@dataclass(frozen=True)
class ModelKey:
    """Identity of one servable model variant.

    The wire spelling (the ``"model"`` request field) is
    ``family:feature_set[:dataset_tag]`` — e.g. ``tree:static-all`` or
    ``forest:dynamic-opt:paper``; the dataset tag defaults to the
    pool's default profile when omitted.
    """

    family: str
    feature_set: str
    dataset_tag: str

    @property
    def spec(self) -> str:
        return f"{self.family}:{self.feature_set}:{self.dataset_tag}"

    @classmethod
    def parse(cls, spec, default_tag: str = "paper") -> "ModelKey":
        if not isinstance(spec, str) or not spec.strip():
            raise FleetError(
                f"model key must be a non-empty string "
                f"'family:feature_set[:dataset_tag]', got {spec!r}")
        parts = [p.strip() for p in spec.split(":")]
        if len(parts) == 2:
            parts.append(default_tag)
        if len(parts) != 3 or not all(parts):
            raise FleetError(
                f"model key {spec!r} does not parse as "
                f"'family:feature_set[:dataset_tag]'")
        return cls(*parts)

    @classmethod
    def for_classifier(cls, classifier: Classifier,
                       default_tag: str = "paper") -> "ModelKey":
        """The key a fitted classifier naturally serves under."""
        cfg = classifier.config
        tag = classifier.trained_profile_ or cfg.profile or default_tag
        return cls(cfg.model, cfg.feature_set, tag)


def cache_loader(cache_dir: str | None = None, train_on_miss: bool = False,
                 backend: str = BACKEND_COMPILED):
    """The default pool loader: artifact cache in, classifier out.

    Maps a :class:`ModelKey` to a :class:`ReproConfig` whose profile is
    the key's dataset tag and loads the matching cached artifact.  A
    cache miss raises :class:`FleetError` unless *train_on_miss* — a
    scoring request must not silently start a training campaign; train
    the variant first (``repro train``) or pre-load it explicitly.
    *backend* selects the execution backend of every classifier the
    loader hands the pool (see :meth:`repro.api.Classifier.compile`).
    """

    def load(key: ModelKey) -> Classifier:
        try:
            config = ReproConfig(profile=key.dataset_tag, model=key.family,
                                 feature_set=key.feature_set)
        except Exception as exc:
            raise FleetError(f"model key {key.spec!r} is not servable: "
                             f"{exc}")
        classifier = load_cached(config, cache_dir=cache_dir,
                                 backend=backend)
        if classifier is not None:
            return classifier
        if train_on_miss:
            from repro.api.artifact_cache import load_or_train
            classifier, _ = load_or_train(config, cache_dir=cache_dir,
                                          backend=backend)
            return classifier
        raise FleetError(
            f"no cached artifact for model key {key.spec!r}; train it "
            f"first (repro train --model {key.family} --features "
            f"{key.feature_set} --profile {key.dataset_tag}) or start "
            f"the daemon with --preload")

    return load


class _Entry:
    """One resident model plus its bookkeeping (guarded by the pool lock)."""

    __slots__ = ("classifier", "size_bytes", "pinned", "hits", "loads",
                 "loaded_at")

    def __init__(self, classifier: Classifier, size_bytes: int,
                 pinned: bool) -> None:
        self.classifier = classifier
        self.size_bytes = size_bytes
        self.pinned = pinned
        self.hits = 0
        self.loads = 1
        self.loaded_at = time.monotonic()


class ModelPool:
    """LRU-bounded host for many resident classifiers.

    *loader* maps a :class:`ModelKey` to a fitted classifier (default:
    :func:`cache_loader`, the artifact cache).  *memory_budget_bytes* /
    *max_models* bound the resident set: crossing either bound evicts
    least-recently-used unpinned entries.  The most recently admitted
    entry always survives admission (a single over-budget model is
    served, not refused), and pinned entries are never evicted.
    """

    def __init__(self, loader=None, memory_budget_bytes: int | None = None,
                 max_models: int | None = None,
                 default_tag: str = "paper") -> None:
        if memory_budget_bytes is not None and memory_budget_bytes <= 0:
            raise FleetError("memory_budget_bytes must be positive")
        if max_models is not None and max_models < 1:
            raise FleetError("max_models must be >= 1")
        self._loader = loader if loader is not None else cache_loader()
        self.memory_budget_bytes = memory_budget_bytes
        self.max_models = max_models
        self.default_tag = default_tag
        self._lock = threading.Lock()
        self._entries: "OrderedDict[ModelKey, _Entry]" = OrderedDict()
        self._loading: dict = {}        # key -> threading.Event
        self._load_errors: dict = {}    # key -> FleetError (while loading)
        self._evictions = 0
        self.default_key: ModelKey | None = None
        # telemetry handles; None until bind_metrics (zero overhead)
        self._obs_hits = None
        self._obs_misses = None
        self._obs_load_us = None
        self._obs_evict_us = None
        self._obs_evictions = None

    def bind_metrics(self, registry) -> None:
        """Attach hit/miss/load/evict instruments from *registry*."""
        if registry is None:
            return
        self._obs_hits = registry.counter(
            "repro_pool_requests_total", outcome="hit")
        self._obs_misses = registry.counter(
            "repro_pool_requests_total", outcome="miss")
        self._obs_load_us = registry.histogram("repro_pool_load_us")
        self._obs_evict_us = registry.histogram("repro_pool_evict_us")
        self._obs_evictions = registry.counter(
            "repro_pool_evictions_total")

    # -- admission ---------------------------------------------------------

    def resolve_key(self, spec) -> ModelKey:
        """Parse a wire spec against this pool's default dataset tag."""
        if isinstance(spec, ModelKey):
            return spec
        return ModelKey.parse(spec, default_tag=self.default_tag)

    def add(self, classifier: Classifier, key: ModelKey | str | None = None,
            pinned: bool = False, default: bool = False) -> ModelKey:
        """Admit an already-fitted classifier under *key*.

        ``default=True`` marks the entry as the pool's default model
        (served to requests without a ``"model"`` field) and implies
        ``pinned``.
        """
        if not classifier.is_fitted:
            raise FleetError("cannot pool an unfitted classifier")
        if key is None:
            key = ModelKey.for_classifier(classifier, self.default_tag)
        else:
            key = self.resolve_key(key)
        size = self._estimate_size(classifier)
        with self._lock:
            entry = _Entry(classifier, size, pinned or default)
            if key in self._entries:
                entry.loads = self._entries[key].loads + 1
                entry.hits = self._entries[key].hits
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if default:
                self.default_key = key
            self._evict_over_budget_locked()
        return key

    def _estimate_size(self, classifier: Classifier) -> int:
        try:
            return model_payload_bytes(classifier.config.model,
                                       classifier.model_)
        except (MLError, TypeError, ValueError):
            return 0  # unknown family codec: exempt from the budget

    # -- lookup ------------------------------------------------------------

    def get(self, key: ModelKey | str | None = None) -> Classifier:
        """The resident classifier for *key* (the default when omitted).

        Cold keys are loaded on first request via the pool loader
        (single-flight across threads) and admitted unpinned, so later
        memory pressure can evict them; a key the loader cannot satisfy
        raises :class:`FleetError`.
        """
        if key is None:
            with self._lock:
                if self.default_key is None:
                    raise FleetError("pool has no default model; requests "
                                     "must name a model key")
                key = self.default_key
        key = self.resolve_key(key)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    entry.hits += 1
                    self._entries.move_to_end(key)
                    if self._obs_hits is not None:
                        self._obs_hits.inc()
                    return entry.classifier
                waiter = self._loading.get(key)
                if waiter is None:
                    self._loading[key] = threading.Event()
                    break  # this thread performs the load
            waiter.wait()
            with self._lock:
                error = self._load_errors.get(key)
            if error is not None:
                raise error
            # else: loaded (or evicted again already) — re-check
        if self._obs_misses is not None:
            self._obs_misses.inc()
        load_from = (time.perf_counter_ns()
                     if self._obs_load_us is not None else 0)
        try:
            classifier = self._loader(key)
        except FleetError as exc:
            self._finish_load(key, error=exc)
            raise
        except Exception as exc:
            error = FleetError(f"loading model {key.spec!r} failed: {exc}")
            self._finish_load(key, error=error)
            raise error
        if self._obs_load_us is not None:
            self._obs_load_us.record(
                (time.perf_counter_ns() - load_from) / 1000.0)
        if not isinstance(classifier, Classifier) or not classifier.is_fitted:
            error = FleetError(f"loader returned no fitted classifier for "
                               f"model {key.spec!r}")
            self._finish_load(key, error=error)
            raise error
        self.add(classifier, key)
        self._finish_load(key)
        return classifier

    def peek(self, key: ModelKey | str | None = None) -> Classifier | None:
        """The resident classifier for *key*, or ``None`` — never loads.

        Counts as an LRU touch when resident.  The daemon event loop
        uses this to decide fast-path eligibility without ever
        blocking the IO thread on an artifact load.
        """
        if key is None:
            with self._lock:
                if self.default_key is None:
                    return None
                key = self.default_key
        else:
            key = self.resolve_key(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            entry.hits += 1
            self._entries.move_to_end(key)
            if self._obs_hits is not None:
                self._obs_hits.inc()
            return entry.classifier

    def _finish_load(self, key: ModelKey, error=None) -> None:
        with self._lock:
            waiter = self._loading.pop(key, None)
            if error is not None:
                self._load_errors[key] = error
            else:
                self._load_errors.pop(key, None)
        if waiter is not None:
            waiter.set()

    def preload(self, keys) -> list:
        """Warm-load every key (specs or :class:`ModelKey`); returns them."""
        resolved = [self.resolve_key(k) for k in keys]
        for key in resolved:
            self.get(key)
        return resolved

    # -- eviction ----------------------------------------------------------

    def evict(self, key: ModelKey | str) -> bool:
        """Drop one resident entry; ``False`` when it was not resident.

        Pinned entries (the default model) are protected: evicting them
        raises :class:`FleetError`.  An evicted key stays servable — the
        next request for it transparently reloads through the loader.
        """
        key = self.resolve_key(key)
        evict_from = (time.perf_counter_ns()
                      if self._obs_evict_us is not None else 0)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if entry.pinned:
                raise FleetError(f"model {key.spec!r} is pinned (the "
                                 f"default model) and cannot be evicted")
            del self._entries[key]
            self._load_errors.pop(key, None)
            self._evictions += 1
            if self._obs_evictions is not None:
                self._obs_evictions.inc()
        if self._obs_evict_us is not None:
            self._obs_evict_us.record(
                (time.perf_counter_ns() - evict_from) / 1000.0)
        return True

    def promote(self, key: ModelKey | str) -> ModelKey:
        """Make an already-resident *key* the pool's pinned default.

        The hot-swap endgame (see :mod:`repro.api.supervisor`): after
        the new artifact is warm-loaded and canary-checked, promotion
        atomically repoints the default route — requests without a
        ``"model"`` field — at it.  The previous default is unpinned
        (it stays resident but becomes evictable under LRU pressure),
        the new default is pinned.  A key that is not resident raises
        :class:`FleetError`: promotion must never block scoring
        traffic behind an artifact load — warm the key first
        (:meth:`get` / ``load_model``).
        """
        key = self.resolve_key(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise FleetError(
                    f"model {key.spec!r} is not resident and cannot be "
                    f"promoted; warm-load it first (load_model)")
            if self.default_key == key:
                entry.pinned = True  # idempotent re-promotion
                return key
            old = self._entries.get(self.default_key) \
                if self.default_key is not None else None
            if old is not None:
                old.pinned = False
            entry.pinned = True
            self.default_key = key
            self._entries.move_to_end(key)
        return key

    def _evict_over_budget_locked(self) -> None:
        def over() -> bool:
            if self.max_models is not None and \
                    len(self._entries) > self.max_models:
                return True
            if self.memory_budget_bytes is not None and \
                    self._resident_bytes_locked() > self.memory_budget_bytes:
                return True
            return False

        newest = next(reversed(self._entries), None)
        while over():
            victim = next((k for k, e in self._entries.items()
                           if not e.pinned and k != newest), None)
            if victim is None:
                return  # only pinned entries (or the newest) remain
            del self._entries[victim]
            self._evictions += 1
            if self._obs_evictions is not None:
                self._obs_evictions.inc()

    def _resident_bytes_locked(self) -> int:
        return sum(e.size_bytes for e in self._entries.values())

    # -- introspection -----------------------------------------------------

    def __contains__(self, key) -> bool:
        try:
            key = self.resolve_key(key)
        except FleetError:
            return False
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> list:
        """JSON-safe per-model rows (the ``list_models`` payload), in
        LRU order — least recently used first."""
        with self._lock:
            return [{
                "model": key.spec,
                "family": key.family,
                "feature_set": key.feature_set,
                "dataset_tag": key.dataset_tag,
                "size_bytes": entry.size_bytes,
                "hits": entry.hits,
                "loads": entry.loads,
                "pinned": entry.pinned,
                "default": key == self.default_key,
            } for key, entry in self._entries.items()]

    def stats(self) -> dict:
        with self._lock:
            return {
                "resident_models": len(self._entries),
                "resident_bytes": self._resident_bytes_locked(),
                "memory_budget_bytes": self.memory_budget_bytes,
                "max_models": self.max_models,
                "evictions": self._evictions,
                "default_model": (self.default_key.spec
                                  if self.default_key else None),
            }
