"""Wire codec for the JSON-lines scoring protocol.

Both transports — ``repro serve`` on stdin/stdout and the persistent
:class:`repro.api.daemon.ScoringDaemon` on a Unix/TCP socket — speak
the same protocol: one JSON object per line in, one JSON object per
line out.  This module is the single place that encodes and decodes
those frames, so the two paths cannot drift apart.

Success frames are ``{"ok": true, ...payload...}``; error frames are::

    {"ok": false, "code": "<machine-readable>", "error": "<human text>"}

with the request ``"id"`` echoed on both when the request carried one.
The error ``code`` is one of the ``ERROR_*`` constants below, so
clients (see :class:`repro.api.client.ScoringClient`) can dispatch on
it without parsing prose.
"""

from __future__ import annotations

import json

#: the request line was not valid JSON at all.
ERROR_INVALID_JSON = "invalid_json"
#: the request decoded but could not be served (unknown kernel, missing
#: features, bad shapes, unsupported verb, non-object request, ...).
ERROR_BAD_REQUEST = "bad_request"
#: the server hit an unexpected condition; the connection survives.
ERROR_INTERNAL = "internal"
#: the request named a model key the serving fleet does not know and
#: cannot load (see :mod:`repro.api.fleet`).
ERROR_UNKNOWN_MODEL = "unknown_model"
#: the request line exceeded :data:`MAX_REQUEST_BYTES`.
ERROR_TOO_LARGE = "too_large"
#: a frame on a negotiated binary connection could not be decoded
#: (unknown frame type, truncated or inconsistent payload); the
#: connection is torn down after answering, because a length-prefixed
#: stream cannot be resynchronized (see :mod:`repro.api.wire`).
ERROR_INVALID_FRAME = "invalid_frame"
#: the server is draining (graceful shutdown: it answers in-flight
#: work but accepts no new scoring requests).  Clients should retry on
#: another endpoint — :class:`repro.api.client.ScoringClient` treats
#: this code as retryable and re-resolves the shard registry, so a
#: drained shard hands its traffic to its siblings (see
#: :mod:`repro.api.supervisor`).
ERROR_DRAINING = "draining"

ERROR_CODES = (
    ERROR_INVALID_JSON,
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_UNKNOWN_MODEL,
    ERROR_TOO_LARGE,
    ERROR_INVALID_FRAME,
    ERROR_DRAINING,
)

#: upper bound on one request line (16 MiB — a ~40k-row batch of the
#: paper's 24-feature vectors fits comfortably).  Decoding refuses
#: longer lines with a typed ``too_large`` frame instead of burning CPU
#: JSON-parsing unbounded input.
MAX_REQUEST_BYTES = 16 * 1024 * 1024

#: upper bound on one response line, enforced *client-side* by
#: :class:`repro.api.client.ScoringClient`: a misbehaving or
#: desynchronized server streaming bytes without a newline must not
#: grow the client's receive buffer without limit.  Mirrors the
#: server-side request guard.
MAX_RESPONSE_BYTES = MAX_REQUEST_BYTES


def request_id(request) -> object | None:
    """The correlation id of a decoded request, if it carries one."""
    if isinstance(request, dict) and "id" in request:
        return request["id"]
    return None


def ok_frame(payload: dict, req_id=None) -> dict:
    """A success frame carrying *payload*, echoing the request id."""
    frame: dict = {"ok": True}
    if req_id is not None:
        frame["id"] = req_id
    frame.update(payload)
    return frame


def error_frame(code: str, message: str, req_id=None) -> dict:
    """A typed error frame (``ok=false`` + machine-readable ``code``)."""
    frame: dict = {"ok": False, "code": code, "error": message}
    if req_id is not None:
        frame["id"] = req_id
    return frame


def decode_request(line: str, max_bytes: int = MAX_REQUEST_BYTES):
    """Decode one request line.

    Returns ``(request, None)`` on success and ``(None, error_frame)``
    when the line is not valid JSON or longer than *max_bytes*; blank
    lines decode to ``(None, None)`` and should be skipped by the
    caller.
    """
    # len() counts characters; UTF-8 spends up to 4 bytes each, so the
    # cheap check is only a pre-filter and the encode runs just for
    # lines that could actually be over the byte limit
    if max_bytes and len(line) > max_bytes // 4:
        n_bytes = len(line.encode("utf-8", errors="replace"))
        if n_bytes > max_bytes:
            return None, error_frame(
                ERROR_TOO_LARGE,
                f"request line is {n_bytes} bytes; the protocol "
                f"accepts at most {max_bytes}",
            )
    line = line.strip()
    if not line:
        return None, None
    try:
        return json.loads(line), None
    except json.JSONDecodeError as exc:
        return None, error_frame(ERROR_INVALID_JSON, f"invalid JSON: {exc}")


def encode_frame(frame: dict) -> str:
    """Serialize one response frame, newline-terminated."""
    return json.dumps(frame) + "\n"
