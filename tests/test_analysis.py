"""Tests for :mod:`repro.analysis` — the ``repro lint`` rule engine.

Every rule gets a firing + clean fixture pair (tiny source files
written to ``tmp_path``), the engine gets waiver-parsing, JSON-schema
and exit-code coverage, and the acceptance drill from the issue runs
against the *real* sources: inject a new verb into a copy of
``transport.py`` with no client method and RPL001 must catch it.
"""

import json
import os
import textwrap

import pytest

from repro.analysis import RULES, get_rule, run_lint
from repro.analysis.engine import (
    REPORT_VERSION,
    WAIVE_ALL,
    main as lint_main,
    parse_waivers,
)
from repro.errors import AnalysisError

import repro.api as _api_pkg

API_DIR = os.path.dirname(os.path.abspath(_api_pkg.__file__))


def dedent_map(sources: dict) -> dict:
    """Dedent fixture sources up front so tests can string-surgery
    them (append/replace) without breaking indentation."""
    return {name: textwrap.dedent(text) for name, text in sources.items()}


def lint_sources(tmp_path, sources: dict, **kwargs):
    """Write *sources* (name -> code) to tmp_path and lint them."""
    for name, text in sources.items():
        (tmp_path / name).write_text(text)
    return run_lint([str(tmp_path)], root=str(tmp_path), **kwargs)


def codes(report) -> list:
    return [finding.rule for finding in report.unwaived]


# ---------------------------------------------------------------- RPL001

VERBS_CLEAN = dedent_map({
    "server.py": """
        ERROR_BAD_REQUEST = "bad_request"
        ERROR_CODES = (ERROR_BAD_REQUEST,)

        def handle(request):
            cmd = request.get("cmd")
            if cmd == "stats":
                return {"ok": True}
            return error_frame(ERROR_BAD_REQUEST, "no such verb")
    """,
    "client.py": """
        def stats(self):
            return self.request({"cmd": "stats"})
    """,
})


class TestProtocolConsistency:
    def test_clean_pair(self, tmp_path):
        report = lint_sources(tmp_path, VERBS_CLEAN, select="RPL001")
        assert report.findings == []

    def test_handled_verb_without_sender_fires(self, tmp_path):
        sources = dict(VERBS_CLEAN)
        sources["server.py"] = sources["server.py"].replace(
            'if cmd == "stats":',
            'if cmd in ("stats", "teleport"):',
        )
        report = lint_sources(tmp_path, sources, select="RPL001")
        assert codes(report) == ["RPL001"]
        assert "'teleport'" in report.findings[0].message
        assert "handled" in report.findings[0].message

    def test_sent_verb_without_handler_fires(self, tmp_path):
        sources = dict(VERBS_CLEAN)
        sources["client.py"] += textwrap.dedent("""
            def teleport(self):
                return self.request({"cmd": "teleport"})
        """)
        report = lint_sources(tmp_path, sources, select="RPL001")
        assert codes(report) == ["RPL001"]
        assert "'teleport'" in report.findings[0].message
        assert "sent" in report.findings[0].message

    def test_unregistered_error_code_literal_fires(self, tmp_path):
        sources = dict(VERBS_CLEAN)
        sources["server.py"] = sources["server.py"].replace(
            'error_frame(ERROR_BAD_REQUEST, "no such verb")',
            'error_frame("wat", "no such verb")',
        )
        report = lint_sources(tmp_path, sources, select="RPL001")
        assert any("'wat'" in f.message for f in report.findings)

    def test_dead_error_code_fires(self, tmp_path):
        sources = dict(VERBS_CLEAN)
        sources["server.py"] = sources["server.py"].replace(
            'ERROR_CODES = (ERROR_BAD_REQUEST,)',
            'ERROR_UNUSED = "unused"\n'
            'ERROR_CODES = (ERROR_BAD_REQUEST, ERROR_UNUSED)',
        )
        report = lint_sources(tmp_path, sources, select="RPL001")
        assert any("ERROR_UNUSED" in f.message and "never emitted"
                   in f.message for f in report.findings)

    def test_constant_missing_from_error_codes_tuple_fires(
            self, tmp_path):
        sources = dict(VERBS_CLEAN)
        sources["server.py"] = sources["server.py"].replace(
            'ERROR_CODES = (ERROR_BAD_REQUEST,)',
            'ERROR_LOST = "lost"\n'
            'ERROR_CODES = (ERROR_BAD_REQUEST,)',
        ).replace(
            'return error_frame(ERROR_BAD_REQUEST, "no such verb")',
            'if cmd == "x":\n'
            '        return error_frame(ERROR_LOST, "gone")\n'
            '    return error_frame(ERROR_BAD_REQUEST, "no such verb")',
        )
        sources["client.py"] += textwrap.dedent("""
            def x(self):
                return self.request({"cmd": "x"})
        """)
        report = lint_sources(tmp_path, sources, select="RPL001")
        assert codes(report) == ["RPL001"]
        assert "missing from ERROR_CODES" in report.findings[0].message

    API_NAMES = ("transport.py", "client.py", "admin.py", "wire.py",
                 "protocol.py", "service.py",
                 os.path.join("fleet", "router.py"))

    def _copy_api_sources(self, tmp_path, names=API_NAMES) -> None:
        for name in names:
            with open(os.path.join(API_DIR, name), encoding="utf-8") as f:
                (tmp_path / os.path.basename(name)).write_text(f.read())

    def test_real_sources_with_injected_verb_are_caught(self, tmp_path):
        """The acceptance drill: new verb in the engine, no client
        method -> RPL001 reports the drift."""
        self._copy_api_sources(tmp_path)
        baseline = run_lint([str(tmp_path)], select="RPL001",
                            root=str(tmp_path))
        assert baseline.findings == []
        drifted = (tmp_path / "transport.py").read_text() + textwrap.dedent(
            """

            def _handle_teleport(request):
                if request.get("cmd") == "teleport":
                    return {"ok": True, "teleported": True}
                return None
            """
        )
        (tmp_path / "transport.py").write_text(drifted)
        report = run_lint([str(tmp_path)], select="RPL001",
                          root=str(tmp_path))
        assert codes(report) == ["RPL001"]
        assert "'teleport'" in report.findings[0].message
        assert report.exit_code == 1

    def test_fleet_ops_verbs_balance_without_waivers(self, tmp_path):
        """The fleet-ops verbs (drain/health/promote plus the model
        management ones) are covered by the handled-vs-sent inventory:
        clean over the real sources with zero waivers, and dropping
        the AdminClient module (the only sender) makes every one of
        them fire."""
        self._copy_api_sources(tmp_path)
        report = run_lint([str(tmp_path)], select="RPL001",
                          root=str(tmp_path))
        assert report.findings == []  # nothing waived, nothing fired

        for name in self.API_NAMES:
            if os.path.basename(name) != "admin.py":
                (tmp_path / "noadmin" / os.path.basename(name)).parent \
                    .mkdir(exist_ok=True)
                with open(os.path.join(API_DIR, name),
                          encoding="utf-8") as f:
                    (tmp_path / "noadmin" / os.path.basename(name)) \
                        .write_text(f.read())
        report = run_lint([str(tmp_path / "noadmin")], select="RPL001",
                          root=str(tmp_path / "noadmin"))
        orphaned = {f.message.split("'")[1] for f in report.findings
                    if "is handled here" in f.message}
        assert {"drain", "health", "promote", "stats", "list_models",
                "load_model", "evict_model"} <= orphaned


# ---------------------------------------------------------------- RPL002

LOOP_FIRING = dedent_map({
    "loop.py": """
        import selectors
        import time

        class Server:
            def _run(self):
                sel = selectors.DefaultSelector()
                while True:
                    self._tick()

            def _tick(self):
                time.sleep(0.1)
    """
})

LOOP_CLEAN = dedent_map({
    "loop.py": """
        import selectors
        import time

        class Server:
            def _run(self):
                sel = selectors.DefaultSelector()
                while True:
                    self._submit()

            def _submit(self):
                def work():
                    time.sleep(0.1)  # runs on the worker pool
                self._pool.submit(work)

            def helper(self):
                # not reachable from _run: allowed to block
                time.sleep(1.0)
    """
})


class TestEventLoopBlocking:
    def test_blocking_call_via_helper_fires(self, tmp_path):
        report = lint_sources(tmp_path, LOOP_FIRING, select="RPL002")
        assert codes(report) == ["RPL002"]
        message = report.findings[0].message
        assert "time.sleep" in message
        assert "Server._run -> _tick" in message

    def test_nested_callback_and_unreachable_helper_are_clean(
            self, tmp_path):
        report = lint_sources(tmp_path, LOOP_CLEAN, select="RPL002")
        assert report.findings == []

    def test_scheduler_thread_class_detected(self, tmp_path):
        sources = dedent_map({
            "batcher.py": """
                import threading

                class Batcher:
                    def start(self):
                        self._thread = threading.Thread(
                            target=self._run, daemon=True)
                        self._thread.start()

                    def _run(self):
                        while True:
                            item = self._queue.get()
                            self._flush(item)

                    def _flush(self, item):
                        with open("/tmp/log", "a") as fh:
                            fh.write(str(item))
            """
        })
        report = lint_sources(tmp_path, sources, select="RPL002")
        assert codes(report) == ["RPL002"]
        assert "open()" in report.findings[0].message
        # queue.get on the scheduler thread is its job, not a finding
        assert all("get" not in f.message.split("(")[0]
                   for f in report.findings)

    def test_thread_join_on_loop_path_fires(self, tmp_path):
        sources = dedent_map({
            "loop.py": """
                import selectors

                class Server:
                    def _run(self):
                        sel = selectors.DefaultSelector()
                        self._writer_thread.join()
            """
        })
        report = lint_sources(tmp_path, sources, select="RPL002")
        assert codes(report) == ["RPL002"]
        assert "join()" in report.findings[0].message


# ---------------------------------------------------------------- RPL003

LOCKS_FIRING = dedent_map({
    "counter.py": """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def reset(self):
                self._count = 0  # bare write: races with bump()
    """
})

LOCKS_CLEAN = dedent_map({
    "counter.py": """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0
                self._reset_locked()

            def bump(self):
                with self._lock:
                    self._count += 1

            def reset(self):
                with self._lock:
                    self._reset_locked()

            def _reset_locked(self):
                # every call site holds the lock (or is __init__)
                self._count = 0
    """
})


class TestLockDiscipline:
    def test_bare_write_fires(self, tmp_path):
        report = lint_sources(tmp_path, LOCKS_FIRING, select="RPL003")
        assert codes(report) == ["RPL003"]
        message = report.findings[0].message
        assert "self._count" in message
        assert "reset()" in message

    def test_lock_held_callee_fixpoint_is_clean(self, tmp_path):
        report = lint_sources(tmp_path, LOCKS_CLEAN, select="RPL003")
        assert report.findings == []

    def test_unguarded_class_is_ignored(self, tmp_path):
        sources = dedent_map({
            "plain.py": """
                class Plain:
                    def set(self, value):
                        self.value = value

                    def clear(self):
                        self.value = None
            """
        })
        report = lint_sources(tmp_path, sources, select="RPL003")
        assert report.findings == []


# ---------------------------------------------------------------- RPL004

FORK_FIRING = dedent_map({
    "manager.py": """
        import multiprocessing

        class Manager:
            def start(self):
                proc = multiprocessing.Process(
                    target=_child_main,
                    args=(self._listener_sock, self.endpoint))
                proc.start()
    """
})

FORK_CLEAN = dedent_map({
    "manager.py": """
        import multiprocessing

        class Manager:
            def start(self):
                ready = multiprocessing.Event()
                proc = multiprocessing.Process(
                    target=_child_main,
                    args=(self.factory, self.endpoint, 3, ready))
                proc.start()
    """
})


class TestForkSafety:
    def test_socket_in_args_fires(self, tmp_path):
        report = lint_sources(tmp_path, FORK_FIRING, select="RPL004")
        assert codes(report) == ["RPL004"]
        assert "_listener_sock" in report.findings[0].message

    def test_plain_data_args_are_clean(self, tmp_path):
        report = lint_sources(tmp_path, FORK_CLEAN, select="RPL004")
        assert report.findings == []

    def test_ready_event_is_not_a_hazard(self, tmp_path):
        # the whole point of a ready Event is to cross the fork
        sources = dedent_map({
            "manager.py": """
                import multiprocessing as mp

                def start(factory):
                    ready_event = mp.Event()
                    mp.Process(target=run, args=(factory, ready_event))
            """
        })
        report = lint_sources(tmp_path, sources, select="RPL004")
        assert report.findings == []


# ---------------------------------------------------------------- RPL005

CODEC_FIRING = dedent_map({
    "wire.py": """
        import struct

        FRAME_JSON = 0
        FRAME_GHOST = 7

        HEADER = struct.Struct("<IB")
        ORPHAN = struct.Struct("<qqq")

        def encode(payload):
            return HEADER.pack(len(payload), FRAME_JSON) + payload

        def encode_ghost(payload):
            return HEADER.pack(len(payload), FRAME_GHOST) + payload

        def encode_orphan(a, b, c):
            return ORPHAN.pack(a, b, c)

        def decode(buf):
            length, type_ = HEADER.unpack(buf[:5])
            if type_ == FRAME_JSON:
                return buf[5:5 + length]
            raise ValueError(type_)
    """
})

CODEC_CLEAN = dedent_map({
    "wire.py": """
        import struct

        FRAME_JSON = 0
        FRAME_ROW = 1

        HEADER = struct.Struct("<IB")
        # packed fused with the header by the encoder, decoded alone
        # once the generic reader has consumed the header
        ROW_FULL = struct.Struct("<IBqi")
        ROW_BODY = struct.Struct("<qi")

        def encode(payload):
            return HEADER.pack(len(payload), FRAME_JSON) + payload

        def encode_row(request_id, label):
            return ROW_FULL.pack(12, FRAME_ROW, request_id, label)

        def decode(buf):
            length, type_ = HEADER.unpack(buf[:5])
            if type_ == FRAME_JSON:
                return buf[5:5 + length]
            if type_ == FRAME_ROW:
                return ROW_BODY.unpack(buf[5:17])
            raise ValueError(type_)
    """
})


class TestCodecSymmetry:
    def test_undedcoded_frame_and_one_sided_struct_fire(self, tmp_path):
        report = lint_sources(tmp_path, CODEC_FIRING, select="RPL005")
        messages = [f.message for f in report.findings]
        assert codes(report) == ["RPL005", "RPL005"]
        assert any("FRAME_GHOST" in m and "no decoder branch" in m
                   for m in messages)
        assert any("ORPHAN" in m and "never unpacked" in m
                   for m in messages)

    def test_composed_structs_are_clean(self, tmp_path):
        report = lint_sources(tmp_path, CODEC_CLEAN, select="RPL005")
        assert report.findings == []

    def test_native_byte_order_fires(self, tmp_path):
        sources = dict(CODEC_CLEAN)
        sources["wire.py"] = sources["wire.py"].replace(
            'struct.Struct("<IB")', 'struct.Struct("IB")')
        report = lint_sources(tmp_path, sources, select="RPL005")
        assert codes(report) == ["RPL005"]
        assert "byte order" in report.findings[0].message

    def test_real_wire_module_is_clean(self, tmp_path):
        with open(os.path.join(API_DIR, "wire.py"),
                  encoding="utf-8") as f:
            (tmp_path / "wire.py").write_text(f.read())
        report = run_lint([str(tmp_path)], select="RPL005",
                          root=str(tmp_path))
        assert report.findings == []

    def test_stream_frame_pair_is_inside_rule_coverage(self, tmp_path):
        """Deleting binary-v2's decoder branch must fire RPL005 — the
        new stream FRAME_* constants are tracked by the rule, not
        silently skipped (so the clean run above means something)."""
        with open(os.path.join(API_DIR, "wire.py"),
                  encoding="utf-8") as f:
            source = f.read()
        mutated = source.replace(
            "if raw[0] != FRAME_PREDICTIONS_STREAM:",
            "if raw[0] != 0x83:")
        assert mutated != source
        (tmp_path / "wire.py").write_text(mutated)
        report = run_lint([str(tmp_path)], select="RPL005",
                          root=str(tmp_path))
        assert any("FRAME_PREDICTIONS_STREAM" in f.message
                   for f in report.findings)


# --------------------------------------------------------------- waivers


class TestWaivers:
    def test_parse_variants(self):
        text = "\n".join([
            "x = 1  # repro: noqa",
            "y = 2  # repro: noqa[RPL001]",
            "z = 3  # repro: noqa[RPL001, rpl003]",
            "w = 4  # unrelated comment",
        ])
        waivers = parse_waivers(text)
        assert waivers[1] == {WAIVE_ALL}
        assert waivers[2] == {"RPL001"}
        assert waivers[3] == {"RPL001", "RPL003"}
        assert 4 not in waivers

    def test_waived_finding_does_not_fail_the_gate(self, tmp_path):
        sources = dict(LOCKS_FIRING)
        sources["counter.py"] = sources["counter.py"].replace(
            "self._count = 0  # bare write: races with bump()",
            "self._count = 0  # repro: noqa[RPL003]",
        )
        report = lint_sources(tmp_path, sources, select="RPL003")
        assert report.unwaived == []
        assert len(report.waived) == 1
        assert report.waived[0].waived is True
        assert report.exit_code == 0

    def test_waiver_for_other_rule_does_not_apply(self, tmp_path):
        sources = dict(LOCKS_FIRING)
        sources["counter.py"] = sources["counter.py"].replace(
            "self._count = 0  # bare write: races with bump()",
            "self._count = 0  # repro: noqa[RPL001]",
        )
        report = lint_sources(tmp_path, sources, select="RPL003")
        assert codes(report) == ["RPL003"]
        assert report.exit_code == 1

    def test_bare_noqa_waives_everything(self, tmp_path):
        sources = dict(LOCKS_FIRING)
        sources["counter.py"] = sources["counter.py"].replace(
            "self._count = 0  # bare write: races with bump()",
            "self._count = 0  # repro: noqa",
        )
        report = lint_sources(tmp_path, sources, select="RPL003")
        assert report.unwaived == []


# ---------------------------------------------------------------- engine


class TestEngine:
    def test_rule_catalog(self):
        assert sorted(RULES) == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005"]
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name and rule.rationale
        assert get_rule("rpl003") is RULES["RPL003"]
        with pytest.raises(AnalysisError, match="unknown rule"):
            get_rule("RPL999")

    def test_select_and_disable(self, tmp_path):
        report = lint_sources(tmp_path, LOCKS_FIRING,
                              select="RPL002,RPL003", disable="RPL002")
        assert report.rules == ["RPL003"]
        with pytest.raises(AnalysisError, match="unknown rule"):
            lint_sources(tmp_path, LOCKS_FIRING, select="RPL942")

    def test_syntax_error_is_analysis_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(AnalysisError, match="cannot parse"):
            run_lint([str(tmp_path)], root=str(tmp_path))

    def test_missing_path_is_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such file"):
            run_lint([str(tmp_path / "nope")], root=str(tmp_path))

    def test_json_schema(self, tmp_path):
        report = lint_sources(tmp_path, LOCKS_FIRING, select="RPL003")
        doc = report.to_dict()
        assert doc["version"] == REPORT_VERSION
        assert doc["tool"] == "repro-lint"
        assert doc["rules"] == ["RPL003"]
        assert doc["files_scanned"] == 1
        assert doc["summary"] == {
            "total": 1, "waived": 0, "unwaived": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {
            "rule", "path", "line", "message", "waived"}
        assert finding["rule"] == "RPL003"
        assert finding["path"] == "counter.py"
        assert isinstance(finding["line"], int) and finding["line"] > 0
        json.dumps(doc)  # must be serializable as-is

    def test_findings_sorted_by_location(self, tmp_path):
        sources = {**LOCKS_FIRING, **CODEC_FIRING}
        report = lint_sources(tmp_path, sources)
        locations = [(f.path, f.line) for f in report.findings]
        assert locations == sorted(locations)


class TestMain:
    def test_exit_zero_and_text_output(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "counter.py").write_text(
            textwrap.dedent(LOCKS_FIRING["counter.py"]))
        assert lint_main([str(tmp_path), "--select", "RPL003"]) == 1
        out = capsys.readouterr().out
        assert "RPL003" in out
        assert "1 finding(s)" in out

    def test_exit_two_on_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "RPL942"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "counter.py").write_text(
            textwrap.dedent(LOCKS_FIRING["counter.py"]))
        code = lint_main(
            [str(tmp_path), "--select", "RPL003", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["summary"]["unwaived"] == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out
