"""Feature extraction (paper Tables II and III).

Three static families (computable at compile time, no execution):

* **RAW** — the Grewe et al. CGO'13 metrics adapted to PULP/OpenMP:
  computational opcode count, TCDM access count, transferred bytes,
  average parallel work-share iterations;
* **AGG** — the aggregate combinations F1/F3/F4 of the RAW metrics;
* **MCA** — LLVM-MCA-style machine-code-analyser statistics (uops per
  cycle, IPC, reverse block throughput, per-port resource pressures).

One dynamic family (requires simulation, paper Table III), collected per
team size: idle/sleep cycle fractions, opcode class counts, TCDM bank
read/write/idle/conflict counts.
"""

from repro.features.static_raw import RAW_FEATURES, extract_raw
from repro.features.static_agg import AGG_FEATURES, extract_agg
from repro.features.mca import MCA_FEATURES, extract_mca, mca_report
from repro.features.dynamic import (
    DYNAMIC_METRICS,
    dynamic_feature_names,
    extract_dynamic,
)
from repro.features.sets import FEATURE_SETS, feature_names, sample_vector

__all__ = [
    "RAW_FEATURES",
    "extract_raw",
    "AGG_FEATURES",
    "extract_agg",
    "MCA_FEATURES",
    "extract_mca",
    "mca_report",
    "DYNAMIC_METRICS",
    "dynamic_feature_names",
    "extract_dynamic",
    "FEATURE_SETS",
    "feature_names",
    "sample_vector",
]
