"""Event counters accumulated during a simulation.

These are the quantities GVSOC traces expose (paper §IV.A): per-core
opcode counts split by class, active-wait and clock-gated cycles,
per-bank read/write/conflict counts, FPU activity, I-cache traffic.
Energy accounting and the dynamic features (paper Table III) are both
pure functions of one :class:`ClusterCounters` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class CoreCounters:
    """Per-core event counts over the kernel window."""

    alu_ops: int = 0        # single-cycle integer ops (incl. address math)
    jump_ops: int = 0       # taken branches
    div_ops: int = 0        # integer divisions
    fp_ops: int = 0         # FP ops executed on the shared FPU
    fpdiv_ops: int = 0      # FP divisions
    l1_ops: int = 0         # TCDM accesses issued (loads+stores+lock words)
    l2_ops: int = 0         # L2 accesses issued
    nop_ops: int = 0        # explicit NOP instructions
    stall_cycles: int = 0   # active-wait cycles (contention / multi-cycle)
    cg_cycles: int = 0      # clock-gated cycles (barriers, idle team slots)

    @property
    def issue_cycles(self) -> int:
        """Cycles spent issuing an instruction of any class."""
        return (self.alu_ops + self.jump_ops + self.div_ops + self.fp_ops
                + self.fpdiv_ops + self.l1_ops + self.l2_ops + self.nop_ops)

    @property
    def alu_class_ops(self) -> int:
        """Opcodes priced as ALU by the energy model (paper groups
        branches and dividers with the integer datapath)."""
        return self.alu_ops + self.jump_ops + self.div_ops

    @property
    def fp_class_ops(self) -> int:
        return self.fp_ops + self.fpdiv_ops

    @property
    def busy_cycles(self) -> int:
        return self.issue_cycles + self.stall_cycles

    def as_dict(self) -> dict[str, int]:
        return {
            "alu_ops": self.alu_ops, "jump_ops": self.jump_ops,
            "div_ops": self.div_ops, "fp_ops": self.fp_ops,
            "fpdiv_ops": self.fpdiv_ops, "l1_ops": self.l1_ops,
            "l2_ops": self.l2_ops, "nop_ops": self.nop_ops,
            "stall_cycles": self.stall_cycles, "cg_cycles": self.cg_cycles,
        }


@dataclass
class BankCounters:
    """Per-memory-bank event counts."""

    reads: int = 0
    writes: int = 0
    conflicts: int = 0      # requests deferred because the port was taken

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict[str, int]:
        return {"reads": self.reads, "writes": self.writes,
                "conflicts": self.conflicts}


@dataclass
class ClusterCounters:
    """All counters of one simulation run."""

    n_cores: int
    n_l1_banks: int
    n_l2_banks: int
    n_fpus: int
    cycles: int = 0
    cores: list = field(default_factory=list)
    l1_banks: list = field(default_factory=list)
    l2_banks: list = field(default_factory=list)
    fpu_ops: list = field(default_factory=list)
    icache_fetches: int = 0
    icache_refills: int = 0
    dma_transfers: int = 0

    def __post_init__(self) -> None:
        if not self.cores:
            self.cores = [CoreCounters() for _ in range(self.n_cores)]
        if not self.l1_banks:
            self.l1_banks = [BankCounters() for _ in range(self.n_l1_banks)]
        if not self.l2_banks:
            self.l2_banks = [BankCounters() for _ in range(self.n_l2_banks)]
        if not self.fpu_ops:
            self.fpu_ops = [0] * self.n_fpus

    # -- aggregate views --------------------------------------------------------

    @property
    def total_l1_reads(self) -> int:
        return sum(b.reads for b in self.l1_banks)

    @property
    def total_l1_writes(self) -> int:
        return sum(b.writes for b in self.l1_banks)

    @property
    def total_l1_conflicts(self) -> int:
        return sum(b.conflicts for b in self.l1_banks)

    @property
    def total_instructions(self) -> int:
        return sum(c.issue_cycles for c in self.cores)

    def validate(self) -> None:
        """Check the per-core cycle budget adds up to the kernel window."""
        for idx, core in enumerate(self.cores):
            budget = core.issue_cycles + core.stall_cycles + core.cg_cycles
            if budget != self.cycles:
                raise SimulationError(
                    f"core {idx}: cycle budget {budget} != window "
                    f"{self.cycles}")

    # -- (de)serialisation for the on-disk cache ----------------------------------

    def as_dict(self) -> dict:
        return {
            "n_cores": self.n_cores,
            "n_l1_banks": self.n_l1_banks,
            "n_l2_banks": self.n_l2_banks,
            "n_fpus": self.n_fpus,
            "cycles": self.cycles,
            "cores": [c.as_dict() for c in self.cores],
            "l1_banks": [b.as_dict() for b in self.l1_banks],
            "l2_banks": [b.as_dict() for b in self.l2_banks],
            "fpu_ops": list(self.fpu_ops),
            "icache_fetches": self.icache_fetches,
            "icache_refills": self.icache_refills,
            "dma_transfers": self.dma_transfers,
        }

    @staticmethod
    def from_dict(data: dict) -> "ClusterCounters":
        counters = ClusterCounters(
            n_cores=data["n_cores"],
            n_l1_banks=data["n_l1_banks"],
            n_l2_banks=data["n_l2_banks"],
            n_fpus=data["n_fpus"],
            cycles=data["cycles"],
            cores=[CoreCounters(**c) for c in data["cores"]],
            l1_banks=[BankCounters(**b) for b in data["l1_banks"]],
            l2_banks=[BankCounters(**b) for b in data["l2_banks"]],
            fpu_ops=list(data["fpu_ops"]),
        )
        counters.icache_fetches = data["icache_fetches"]
        counters.icache_refills = data["icache_refills"]
        counters.dma_transfers = data["dma_transfers"]
        return counters
