"""The rule battery: one instance per RPL code, keyed for the engine.

Adding a rule is three steps: subclass :class:`~repro.analysis.rules.
base.Rule` in a new module here, instantiate it in ``_ALL`` below, and
give it a firing + clean fixture pair in ``tests/test_analysis.py``.
The registry is ordered — reports group findings by rule code.
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.codec import CodecSymmetry
from repro.analysis.rules.eventloop import EventLoopBlocking
from repro.analysis.rules.forksafety import ForkSafety
from repro.analysis.rules.locks import LockDiscipline
from repro.analysis.rules.protocol import ProtocolConsistency

from repro.errors import AnalysisError

_ALL = (
    ProtocolConsistency(),
    EventLoopBlocking(),
    LockDiscipline(),
    ForkSafety(),
    CodecSymmetry(),
)

#: rule code -> rule instance, in catalog order.
RULES = {rule.code: rule for rule in _ALL}


def get_rule(code: str) -> Rule:
    """The rule registered under *code* (case-insensitive)."""
    try:
        return RULES[code.strip().upper()]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {code!r}; available: {', '.join(sorted(RULES))}"
        ) from None


__all__ = [
    "RULES",
    "Rule",
    "get_rule",
    "CodecSymmetry",
    "EventLoopBlocking",
    "ForkSafety",
    "LockDiscipline",
    "ProtocolConsistency",
]
