"""The typed fleet-ops surface: :mod:`repro.api.admin`.

Covers the result dataclasses (ShardHealth / ModelInfo / ModelListing
/ FleetStats), AdminClient's borrow-vs-own connection semantics, every
admin verb against live daemons (stats, health, list_models,
load_model, evict_model, promote, drain), the deprecated
ScoringClient shims, and the typed fleet-wide ``collect_stats``.
"""

import os
import time

import pytest

from repro.api import (
    AdminClient,
    Classifier,
    ModelFleet,
    ModelPool,
    ReproConfig,
    ScoringClient,
    ScoringDaemon,
)
from repro.api.admin import FleetStats, ModelInfo, ModelListing, ShardHealth
from repro.errors import FleetError, ScoringError

TREE = "tree:static-all:unit"
AGG = "tree:static-agg:unit"


@pytest.fixture()
def trained(tiny_dataset) -> Classifier:
    return Classifier(ReproConfig(profile="unit")).train(tiny_dataset)


@pytest.fixture()
def agg_clf(tiny_dataset) -> Classifier:
    return Classifier(ReproConfig(
        profile="unit", feature_set="static-agg")).train(tiny_dataset)


@pytest.fixture()
def unix_path(tmp_path) -> str:
    return str(tmp_path / "repro.sock")


def variant_fleet(trained, agg_clf) -> ModelFleet:
    variants = {TREE: trained, AGG: agg_clf}

    def loader(key):
        try:
            return variants[key.spec]
        except KeyError:
            raise FleetError(f"no artifact for {key.spec!r}")

    pool = ModelPool(loader=loader, default_tag="unit")
    return ModelFleet(pool, None, default=trained)


class TestShardHealth:
    def test_from_payload(self):
        payload = {"status": "serving", "pid": 4242, "draining": False,
                   "shard": {"index": 3, "pid": 4242}}
        health = ShardHealth.from_payload(payload)
        assert health.status == "serving"
        assert health.pid == 4242
        assert health.index == 3
        assert health.serving is True
        assert health.raw == payload

    def test_draining_and_missing_fields(self):
        health = ShardHealth.from_payload({"status": "draining",
                                           "draining": True})
        assert health.serving is False
        assert health.pid is None
        assert health.index is None
        # raw is carry-through only: it never affects equality
        assert health == ShardHealth(status="draining", pid=None,
                                     draining=True, raw={"x": 1})


class TestModelInfo:
    ROW = {"model": TREE, "family": "tree", "feature_set": "static-all",
           "dataset_tag": "unit", "size_bytes": 512, "hits": 3,
           "loads": 1, "pinned": True, "default": True}

    def test_row_round_trip(self):
        info = ModelInfo.from_row(self.ROW)
        assert info.model == TREE
        assert info.default and info.pinned
        assert info.as_row() == self.ROW

    def test_missing_fields_default(self):
        info = ModelInfo.from_row({"model": AGG})
        assert info.size_bytes == 0
        assert not info.default


class TestModelListing:
    def test_default_iter_len(self):
        rows = [dict(TestModelInfo.ROW),
                {**TestModelInfo.ROW, "model": AGG, "pinned": False,
                 "default": False}]
        listing = ModelListing(
            models=tuple(ModelInfo.from_row(r) for r in rows))
        assert len(listing) == 2
        assert [info.model for info in listing] == [TREE, AGG]
        assert listing.default.model == TREE

    def test_no_default(self):
        listing = ModelListing(models=())
        assert listing.default is None
        assert len(listing) == 0


class TestFleetStats:
    def test_live_shards_and_dict_shape(self):
        stats = FleetStats(
            requests_served=7, connections_served=2, active_connections=1,
            shards=({"server": {"requests_served": 7}},
                    {"shard": {"index": 1}, "error": "dead"}),
            codec=None)
        assert stats.live_shards == 1
        assert stats.as_dict() == {
            "shards": list(stats.shards),
            "requests_served": 7,
            "connections_served": 2,
            "active_connections": 1,
            "codec": None,
        }


class TestOwnership:
    def test_client_and_endpoint_is_an_error(self, unix_path):
        client = ScoringClient.__new__(ScoringClient)  # never dials
        with pytest.raises(ScoringError, match="not both"):
            AdminClient(client, socket_path=unix_path)

    def test_borrowed_client_survives_admin_close(self, trained,
                                                  tiny_dataset, unix_path):
        row = list(map(float,
                       tiny_dataset.matrix(trained.feature_names_)[0]))
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            with ScoringClient(socket_path=unix_path) as client:
                with AdminClient(client) as admin:
                    assert admin.health().serving
                # the borrowed connection is still the caller's
                assert client.predict(row) == int(trained.predict(row))

    def test_owned_client_is_closed(self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            with AdminClient(socket_path=unix_path) as admin:
                assert admin.stats()["server"]["requests_served"] >= 0
            with pytest.raises(ScoringError, match="closed"):
                admin.health()


class TestVerbs:
    def test_health_and_stats(self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            with AdminClient(socket_path=unix_path) as admin:
                health = admin.health()
                assert health.status == "serving"
                assert health.serving
                assert health.pid == os.getpid()
                assert health.index is None  # standalone daemon
                assert "server" in admin.stats()

    def test_model_management(self, trained, agg_clf, unix_path):
        fleet = variant_fleet(trained, agg_clf)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path, workers=1):
            with AdminClient(socket_path=unix_path) as admin:
                listing = admin.list_models()
                assert isinstance(listing, ModelListing)
                assert listing.default.model == TREE
                assert listing.default.pinned

                assert admin.load_model("tree:static-agg") == AGG
                assert {info.model for info in admin.list_models()} == \
                    {TREE, AGG}

                # promotion moves the pinned default
                assert admin.promote("tree:static-agg") == AGG
                listing = admin.list_models()
                assert listing.default.model == AGG
                by_model = {info.model: info for info in listing}
                assert not by_model[TREE].pinned

                # promote is resident-only: a cold key must not block
                # scoring behind an artifact load
                with pytest.raises(ScoringError) as excinfo:
                    admin.promote("forest:static-agg")
                assert excinfo.value.code == "unknown_model"

                assert admin.evict_model("tree:static-all") is True
                assert admin.evict_model("tree:static-all") is False
        fleet.close()

    def test_drain_stops_the_daemon(self, trained, unix_path):
        daemon = ScoringDaemon(trained, socket_path=unix_path, workers=1)
        with daemon:
            with AdminClient(socket_path=unix_path) as admin:
                assert admin.drain() is True
            deadline = time.monotonic() + 10
            while daemon.is_running and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not daemon.is_running


class TestDeprecatedShims:
    def test_scoring_client_shims_warn_and_delegate(
            self, trained, agg_clf, unix_path):
        fleet = variant_fleet(trained, agg_clf)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path, workers=1):
            with ScoringClient(socket_path=unix_path) as client:
                with pytest.warns(DeprecationWarning,
                                  match="AdminClient.stats"):
                    stats = client.stats()
                assert stats["server"]["connections_served"] >= 1

                with pytest.warns(DeprecationWarning,
                                  match="AdminClient.list_models"):
                    listing = client.list_models()
                # the historical dict shape survives the delegation
                assert [row["model"] for row in listing["models"]] == [TREE]
                assert listing["models"][0]["default"] is True

                with pytest.warns(DeprecationWarning,
                                  match="AdminClient.load_model"):
                    assert client.load_model("tree:static-agg") == AGG
                with pytest.warns(DeprecationWarning,
                                  match="AdminClient.evict_model"):
                    assert client.evict_model("tree:static-agg") is True
        fleet.close()
