"""RPL002 — no blocking calls reachable from event-loop callback paths.

:class:`repro.api.transport.EventLoopServer` multiplexes every
connection on one selectors thread; :class:`repro.api.fleet.batching.
MicroBatcher` drives completions from a single scheduler thread.  One
``time.sleep`` or synchronous ``open()`` on those threads stalls every
connected client at once, which is exactly the failure mode that is
invisible in unit tests (one client never notices) and catastrophic
under load.

The rule finds loop classes structurally — any class with a ``_run``
method that also calls ``selectors.DefaultSelector()`` or constructs a
daemon thread targeting ``self._run`` — then walks the call graph from
``_run`` through same-class ``self.<m>()`` calls and same-module
function calls, and flags blocking primitives on any reachable path.
Nested ``def``/``lambda`` bodies are *not* followed: a nested function
in this codebase is a callback handed to a worker pool (see
``EventLoopServer._submit_slow``), so it runs off-loop by design.

Deliberately **not** flagged: ``queue.get``/``.recv``/``.send`` — the
scheduler thread's entire job is waiting on its queue, and the loop's
sockets are non-blocking.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import (
    Rule,
    dotted_name,
    methods_of,
    module_functions,
    walk_function_body,
)

#: fully-dotted call names that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep": "sleeps the loop thread",
    "os.system": "runs a subprocess synchronously",
    "os.popen": "runs a subprocess synchronously",
    "subprocess.run": "runs a subprocess synchronously",
    "subprocess.call": "runs a subprocess synchronously",
    "subprocess.check_call": "runs a subprocess synchronously",
    "subprocess.check_output": "runs a subprocess synchronously",
    "subprocess.Popen": "spawns a subprocess on the loop thread",
    "socket.create_connection": "opens a blocking connection",
    "socket.getaddrinfo": "does blocking name resolution",
    "socket.gethostbyname": "does blocking name resolution",
    "urllib.request.urlopen": "does blocking network I/O",
    "requests.get": "does blocking network I/O",
    "requests.post": "does blocking network I/O",
    "requests.request": "does blocking network I/O",
}

#: method names that block when invoked on a thread/process/pool-ish
#: receiver (``self._writer_thread.join()``); keyed by receiver hint.
_BLOCKING_JOIN_HINTS = ("thread", "proc", "process", "pool", "worker")

#: the entry method every loop class runs on its dedicated thread.
_LOOP_ENTRY = "_run"


def _is_loop_class(cls: ast.ClassDef, methods: dict) -> bool:
    """A class whose ``_run`` is a dedicated loop/scheduler thread."""
    if _LOOP_ENTRY not in methods:
        return False
    for method in methods.values():
        for node in walk_function_body(method, skip_nested=False):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name and name.endswith("DefaultSelector"):
                return True
            # threading.Thread(target=self._run, ...)
            if name and name.endswith("Thread"):
                for keyword in node.keywords:
                    if keyword.arg != "target":
                        continue
                    target = dotted_name(keyword.value)
                    if target == f"self.{_LOOP_ENTRY}":
                        return True
    return False


def _blocking_reason(node: ast.Call) -> str | None:
    """Why *node* blocks the calling thread, or ``None`` if it doesn't."""
    name = dotted_name(node.func)
    if name is None:
        return None
    if name in _BLOCKING_CALLS:
        return f"{name}() {_BLOCKING_CALLS[name]}"
    if name == "open" or name.endswith(".open"):
        # io.open / builtins.open: synchronous disk I/O
        if name in ("open", "io.open", "builtins.open"):
            return f"{name}() does synchronous file I/O"
    if isinstance(node.func, ast.Attribute) and node.func.attr == "join":
        receiver = dotted_name(node.func.value) or ""
        lowered = receiver.lower()
        if any(hint in lowered for hint in _BLOCKING_JOIN_HINTS):
            return f"{receiver}.join() waits for another thread"
    return None


class EventLoopBlocking(Rule):
    code = "RPL002"
    name = "event-loop-blocking-call"
    rationale = (
        "no time.sleep, blocking socket/network calls, synchronous "
        "file I/O or subprocesses reachable from the EventLoopServer/"
        "MicroBatcher loop threads; one block stalls every client"
    )

    def check(self, project):
        for source in project.files:
            functions = module_functions(source.tree)
            for cls in [
                n
                for n in ast.walk(source.tree)
                if isinstance(n, ast.ClassDef)
            ]:
                methods = methods_of(cls)
                if not _is_loop_class(cls, methods):
                    continue
                yield from self._check_loop_class(source, cls, methods, functions)

    def _check_loop_class(self, source, cls, methods, functions):
        # BFS from _run over self.<m>() and module-function calls,
        # remembering the path so the finding explains reachability
        queue: list = [(_LOOP_ENTRY, (_LOOP_ENTRY,))]
        seen: set = {_LOOP_ENTRY}
        while queue:
            name, path = queue.pop(0)
            func = methods.get(name) or functions.get(name)
            if func is None:
                continue
            for node in walk_function_body(func):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(node)
                if reason is not None:
                    where = " -> ".join(path)
                    yield self.finding(
                        source.path,
                        node,
                        f"{reason}, reachable from {cls.name}."
                        f"{where}() which runs on the loop thread",
                    )
                    continue
                callee = dotted_name(node.func)
                if callee is None:
                    continue
                target: str | None = None
                if callee.startswith("self."):
                    attr = callee[len("self.") :]
                    if attr in methods:
                        target = attr
                elif callee in functions:
                    target = callee
                if target is not None and target not in seen:
                    seen.add(target)
                    queue.append((target, path + (target,)))
