"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Raised when a kernel IR is structurally invalid."""


class LoweringError(ReproError):
    """Raised when the compiler cannot lower a kernel to core programs."""


class LayoutError(ReproError):
    """Raised when arrays cannot be placed in the cluster memories."""


class SimulationError(ReproError):
    """Raised when the cluster simulator reaches an inconsistent state."""


class TraceError(ReproError):
    """Raised when a trace line or trace stream cannot be parsed."""


class EnergyModelError(ReproError):
    """Raised when energy accounting receives inconsistent counters."""


class FeatureError(ReproError):
    """Raised when a feature extractor is fed an unsupported kernel."""


class DatasetError(ReproError):
    """Raised when dataset construction fails or a sample is malformed."""


class MLError(ReproError):
    """Raised by the machine-learning stack (bad shapes, empty folds, ...)."""


class ConfigError(ReproError):
    """Raised when a :class:`repro.api.ReproConfig` is inconsistent."""


class ExperimentError(ReproError):
    """Raised when an experiment cannot be assembled or reproduced."""


class DaemonError(ReproError):
    """Raised when the scoring daemon cannot bind, start or stop."""


class FleetError(ReproError):
    """Raised by the multi-model serving fleet (:mod:`repro.api.fleet`):
    unparseable model keys, unloadable artifacts, misconfigured pools or
    a micro-batch scheduler used after shutdown."""


class AnalysisError(ReproError):
    """Raised by the static-analysis suite (:mod:`repro.analysis`):
    unparseable target files, unknown rule codes, bad lint usage."""


class ScoringError(ReproError):
    """Raised by :class:`repro.api.client.ScoringClient` on transport
    failures or typed error frames from the scoring daemon."""

    def __init__(self, message: str, code: str | None = None,
                 request_id=None) -> None:
        super().__init__(message)
        self.code = code
        self.request_id = request_id
