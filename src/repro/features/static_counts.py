"""Static (compile-time) instruction counting over the kernel IR.

Loop bounds in the dataset are compile-time constants or affine in
enclosing loop variables, so exact trip-weighted opcode counts are a
*static* quantity — the compiler knows them without running anything.
The counting convention mirrors :mod:`repro.compiler.codegen` exactly
(one induction ALU and one taken branch per iteration, two setup ALU ops
per loop entry), which lets tests tie static counts to dynamic ones on
conflict-free kernels.

Rectangular sub-nests (no bound referencing an outer variable) are
counted once and multiplied by the trip count, so counting is fast even
for large O(N^3) nests; triangular nests fall back to enumeration of the
outer ranges only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FeatureError
from repro.ir.nodes import (
    Compute,
    Critical,
    DmaCopy,
    Kernel,
    Load,
    Loop,
    OpKind,
    ParallelFor,
    Sequential,
    SequentialFor,
    Store,
)


@dataclass
class StaticCounts:
    """Trip-weighted instruction-class counts of a body (or kernel)."""

    alu: float = 0.0
    fp: float = 0.0
    div: float = 0.0
    fpdiv: float = 0.0
    jump: float = 0.0
    nop: float = 0.0
    l1_loads: float = 0.0
    l1_stores: float = 0.0
    l2_loads: float = 0.0
    l2_stores: float = 0.0
    lock_ops: float = 0.0
    dma_words: float = 0.0   # words moved by DMA transfers
    iterations: float = 0.0  # iterations executed by the subtree's loops

    def add(self, other: "StaticCounts", times: float = 1.0) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name,
                    getattr(self, name) + times * getattr(other, name))

    @property
    def tcdm(self) -> float:
        """TCDM accesses (the paper's ``tcdm`` RAW metric)."""
        return self.l1_loads + self.l1_stores + self.lock_ops * 2

    @property
    def mem(self) -> float:
        return self.tcdm + self.l2_loads + self.l2_stores

    @property
    def comp(self) -> float:
        """Computational opcodes: ALU + FP + JUMP families (paper IIa)."""
        return self.alu + self.fp + self.div + self.fpdiv + self.jump

    @property
    def instructions(self) -> float:
        return self.comp + self.nop + self.mem


@dataclass
class KernelStaticSummary:
    """Per-kernel static counting results used by the feature extractors."""

    total: StaticCounts
    region_counts: list = field(default_factory=list)  # per ParallelFor
    region_trips: list = field(default_factory=list)   # parallel iterations
    sequential: StaticCounts = field(default_factory=StaticCounts)


def _kind_slot(kind: OpKind) -> str:
    return {OpKind.ALU: "alu", OpKind.FP: "fp", OpKind.DIV: "div",
            OpKind.FPDIV: "fpdiv", OpKind.JUMP: "jump",
            OpKind.NOP: "nop"}[kind]


def _references_outer(body: tuple, bound_vars: set[str]) -> bool:
    """Does any loop bound in *body* reference a variable outside its nest?"""
    for stmt in body:
        if isinstance(stmt, Loop):
            outside = ((stmt.lower.variables() | stmt.upper.variables())
                       - bound_vars)
            if outside:
                return True
            if _references_outer(stmt.body, bound_vars | {stmt.var}):
                return True
        elif isinstance(stmt, Critical):
            if _references_outer(stmt.body, bound_vars):
                return True
    return False


def count_body(body: tuple, env: dict[str, int],
               spaces: dict[str, str]) -> StaticCounts:
    """Exact trip-weighted counts of *body* under loop bindings *env*."""
    counts = StaticCounts()
    for stmt in body:
        if isinstance(stmt, Compute):
            slot = _kind_slot(stmt.kind)
            setattr(counts, slot, getattr(counts, slot) + stmt.count)
        elif isinstance(stmt, Load):
            if spaces[stmt.array] == "l1":
                counts.l1_loads += 1
            else:
                counts.l2_loads += 1
        elif isinstance(stmt, Store):
            if spaces[stmt.array] == "l1":
                counts.l1_stores += 1
            else:
                counts.l2_stores += 1
        elif isinstance(stmt, DmaCopy):
            counts.alu += 1  # the descriptor write
            counts.dma_words += stmt.words
        elif isinstance(stmt, Critical):
            counts.lock_ops += 1
            counts.add(count_body(stmt.body, env, spaces))
        elif isinstance(stmt, Loop):
            lo = stmt.lower.evaluate(env)
            hi = stmt.upper.evaluate(env)
            trip = max(0, hi - lo)
            counts.alu += 2  # loop setup
            if trip == 0:
                continue
            # Uniform (rectangular) iterations require that no nested
            # loop bound references this loop's variable or any outer
            # one — only variables bound inside the subtree are allowed.
            if not _references_outer(stmt.body, set()):
                # Rectangular: per-iteration cost is uniform (bank indices
                # differ but counts do not) — evaluate once at the first
                # iteration and scale.
                env[stmt.var] = lo
                inner = count_body(stmt.body, env, spaces)
                del env[stmt.var]
                counts.add(inner, times=trip)
            else:
                for value in range(lo, hi):
                    env[stmt.var] = value
                    counts.add(count_body(stmt.body, env, spaces))
                del env[stmt.var]
            counts.alu += trip      # induction updates
            counts.jump += trip     # back branches
            counts.iterations += trip
        else:
            raise FeatureError(f"cannot count {type(stmt).__name__} "
                               f"inside a body")
    return counts


def summarize_kernel(kernel: Kernel) -> KernelStaticSummary:
    """Count the whole kernel, keeping per-parallel-region breakdowns.

    Each dynamic *instance* of a parallel region (one per iteration of an
    enclosing sequential-for) contributes one entry to
    ``region_counts``/``region_trips`` — the paper's ``avgws`` averages
    over the work-sharing occurrences the runtime actually opens.
    """
    spaces = {arr.name: arr.space for arr in kernel.arrays}
    summary = KernelStaticSummary(total=StaticCounts())

    def visit_region(region, env: dict[str, int]) -> None:
        if isinstance(region, ParallelFor):
            lo = region.lower.evaluate(env)
            hi = region.upper.evaluate(env)
            trip = max(0, hi - lo)
            wrapper = Loop(region.var, region.lower, region.upper,
                           region.body)
            counts = count_body((wrapper,), dict(env), spaces)
            summary.region_counts.append(counts)
            summary.region_trips.append(trip)
            summary.total.add(counts)
        elif isinstance(region, Sequential):
            counts = count_body(region.body, dict(env), spaces)
            summary.sequential.add(counts)
            summary.total.add(counts)
        elif isinstance(region, SequentialFor):
            for value in range(region.lower.const, region.upper.const):
                for inner in region.body:
                    visit_region(inner, {region.var: value})

    for region in kernel.body:
        visit_region(region, {})
    return summary
