"""P1a — simulator performance: simulated cycles per host second.

Not a paper artefact; tracks the engine's throughput on a contended and
an uncontended workload so regressions in the hot loop are visible.
"""

from repro.dataset.registry import get_kernel_spec
from repro.ir.types import DType
from repro.sim.engine import simulate

from benchmarks.conftest import write_artifact


def test_simulator_throughput_scalable(benchmark):
    kernel = get_kernel_spec("gemm").build(DType.INT32, 2048)
    counters = benchmark(simulate, kernel, 8)
    write_artifact(
        "perf_simulator.txt",
        f"gemm int32 2048B @8 cores: {counters.cycles} cycles, "
        f"{counters.total_instructions} instructions per run")
    assert counters.cycles > 0


def test_simulator_throughput_contended(benchmark):
    kernel = get_kernel_spec("bank_hammer").build(DType.INT32, 2048)
    counters = benchmark(simulate, kernel, 8)
    assert counters.total_l1_conflicts > 0
