"""Shared experiment plumbing: dataset loading and evaluation defaults.

The evaluation protocol follows §IV.B: stratified 10-fold CV; the paper
repeats it 100 times — our default is 10 repeats (set
``REPRO_CV_REPEATS=100`` to match exactly; curves move by well under a
point beyond ~10 repeats).

``REPRO_PROFILE`` selects the dataset profile (``paper`` by default;
``quick`` drops the largest payload size for faster cold builds).
"""

from __future__ import annotations

import os

from repro.dataset.build import Dataset, build_dataset

DEFAULT_TOLERANCES = tuple(range(0, 9))


def cv_repeats(default: int = 10) -> int:
    try:
        return max(1, int(os.environ.get("REPRO_CV_REPEATS", default)))
    except ValueError:
        return default


def active_profile(default: str = "paper") -> str:
    return os.environ.get("REPRO_PROFILE", default)


def load_dataset(profile: str | None = None, progress=None) -> Dataset:
    """Build or reload the dataset for the active profile."""
    return build_dataset(profile or active_profile(), progress=progress)
