"""Lower a kernel to per-core segment programs for a given team size.

A lowered program is, per core, a list of segments:

* ``("r", factory, code_sites)`` — run the instruction stream produced
  by ``factory()`` (``code_sites`` drives I-cache cold refills);
* ``("b", barrier_id)`` — arrive at a team barrier and sleep in clock
  gating until everyone arrived.

Region structure (mirrors the PULP OpenMP runtime):

* a ``ParallelFor`` opens with the master running ``fork_instrs``
  runtime ops, a *fork barrier* releasing the team, each member running
  its chunk prologue + static chunk, an implicit *join barrier*
  (unless ``nowait``) and ``join_instrs`` on the master;
* a ``Sequential`` region runs on the master only — the workers are
  already parked at the next barrier in clock gating;
* a ``SequentialFor`` re-emits its inner regions once per iteration,
  paying the full fork/join tax every time (region bodies are compiled
  once and re-instantiated with the loop value, so lowering cost does
  not scale with the trip count);
* a trailing *final barrier* closes the measurement window for the team.

Cores outside the team get an empty program: the engine keeps them
clock-gated for the whole window, exactly like unused PULP cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoweringError
from repro.ir.nodes import (
    Barrier,
    Kernel,
    ParallelFor,
    Sequential,
    SequentialFor,
)
from repro.compiler.codegen import compile_segment, segment_sites
from repro.compiler.interp import interpret_segment
from repro.compiler.schedule import static_chunks
from repro.platform.config import ClusterConfig
from repro.platform.memory import MemoryMap


@dataclass
class LoweredProgram:
    """Per-core segment programs plus barrier metadata."""

    kernel_name: str
    team_size: int
    programs: list = field(default_factory=list)
    barrier_team: dict = field(default_factory=dict)

    @property
    def n_cores(self) -> int:
        return len(self.programs)


class _SegmentCompiler:
    """Compiles region bodies once and hands out bound factories."""

    def __init__(self, memmap: MemoryMap, config: ClusterConfig,
                 backend: str) -> None:
        self._memmap = memmap
        self._config = config
        self._backend = backend
        self._cache: dict[tuple, tuple] = {}

    def factory(self, body: tuple, loop_var: str | None,
                chunk: tuple[int, int], free_vars: tuple[str, ...],
                env: dict[str, int], prologue: int):
        """A zero-arg generator factory for one segment instance."""
        lo, hi = chunk
        values = tuple(env[name] for name in free_vars)
        if self._backend == "codegen":
            key = (id(body), loop_var, free_vars, prologue)
            entry = self._cache.get(key)
            if entry is None:
                entry = compile_segment(
                    body, self._memmap, self._config.n_l1_banks,
                    self._config.n_l2_banks, loop_var=loop_var,
                    free_vars=free_vars, prologue_alu=prologue)
                self._cache[key] = entry
            fn, sites = entry

            def make(fn=fn, lo=lo, hi=hi, values=values):
                return fn(lo, hi, *values)

            return ("r", make, sites)

        memmap, config = self._memmap, self._config
        bound_env = dict(env)

        def make_interp():
            return interpret_segment(
                body, memmap, config.n_l1_banks, config.n_l2_banks,
                loop_var=loop_var, loop_range=(lo, hi),
                prologue_alu=prologue, env=bound_env)

        return ("r", make_interp, segment_sites(body, loop_var, prologue))


def lower_kernel(kernel: Kernel, team_size: int, config: ClusterConfig,
                 backend: str = "codegen") -> LoweredProgram:
    """Lower *kernel* for a team of *team_size* cores on *config*."""
    if not 1 <= team_size <= config.n_cores:
        raise LoweringError(
            f"team size {team_size} outside [1, {config.n_cores}]")
    if backend not in ("codegen", "interp"):
        raise LoweringError(f"unknown backend {backend!r}")

    memmap = MemoryMap(kernel, config.n_l1_banks, config.n_l2_banks,
                       config.tcdm_bytes, config.l2_bytes)
    lowered = LoweredProgram(kernel.name, team_size,
                             programs=[[] for _ in range(config.n_cores)])
    compiler = _SegmentCompiler(memmap, config, backend)
    state = {"next_barrier": 0}

    def new_barrier() -> int:
        bid = state["next_barrier"]
        state["next_barrier"] += 1
        lowered.barrier_team[bid] = team_size
        return bid

    team = range(team_size)

    def emit_parallel_for(region: ParallelFor, free_vars: tuple,
                          env: dict[str, int]) -> None:
        fork_id = new_barrier()
        join_id = None if region.nowait else new_barrier()
        lo = region.lower.evaluate(env)
        hi = region.upper.evaluate(env)
        chunks = static_chunks(lo, hi, team_size)
        for core in team:
            program = lowered.programs[core]
            if core == 0 and config.fork_instrs > 0:
                program.append(compiler.factory(
                    (), None, (0, 0), (), {},
                    prologue=config.fork_instrs))
            program.append(("b", fork_id))
            program.append(compiler.factory(
                region.body, region.var, chunks[core], free_vars, env,
                prologue=config.worker_prologue_instrs))
            if join_id is not None:
                program.append(("b", join_id))
                if core == 0 and config.join_instrs > 0:
                    program.append(compiler.factory(
                        (), None, (0, 0), (), {},
                        prologue=config.join_instrs))

    def emit_region(region, free_vars: tuple, env: dict[str, int]) -> None:
        if isinstance(region, ParallelFor):
            emit_parallel_for(region, free_vars, env)
        elif isinstance(region, Sequential):
            lowered.programs[0].append(compiler.factory(
                region.body, None, (0, 0), free_vars, env, prologue=0))
        elif isinstance(region, Barrier):
            bid = new_barrier()
            for core in team:
                lowered.programs[core].append(("b", bid))
        elif isinstance(region, SequentialFor):
            if free_vars:
                raise LoweringError("sequential-for loops cannot nest")
            lo = region.lower.const
            hi = region.upper.const
            for value in range(lo, hi):
                inner_env = {region.var: value}
                for inner in region.body:
                    emit_region(inner, (region.var,), inner_env)
        else:
            raise LoweringError(f"unexpected top-level region "
                                f"{type(region).__name__}")

    for region in kernel.body:
        emit_region(region, (), {})

    final_id = new_barrier()
    for core in team:
        lowered.programs[core].append(("b", final_id))
    return lowered
