"""Python-source backend: compile a loop body to a generator function.

The emitted source is a plain nested-``for`` generator that yields
``(opcode, arg)`` tuples; loop variables are local integers and bank
numbers are computed inline, so iterating the stream costs one generator
resumption per instruction — the cheapest portable representation for a
simulator that consumes millions of instructions per run.

Conventions (shared with :mod:`repro.compiler.interp` and the static
feature extractors):

* every executed loop iteration costs one induction ``ALU`` op and one
  taken-branch ``JMP``; entering a loop costs two setup ``ALU`` ops;
* runs of adjacent constant-count ``ALU``/``NOP`` ops are coalesced into
  one macro instruction (legal on an in-order single-issue core);
* a ``Load``/``Store`` is a single instruction (RI5CY's post-increment
  addressing covers the affine index updates);
* a :class:`Critical` section is a lock probe (a TCDM read on the lock's
  bank), the body, and a releasing store.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import LoweringError
from repro.ir.nodes import (
    Compute,
    Critical,
    DmaCopy,
    Load,
    Loop,
    OpKind,
    Store,
)
from repro.isa.opcodes import (
    OP_ALU,
    OP_DIV,
    OP_DMA,
    OP_FDIV,
    OP_FP,
    OP_JMP,
    OP_LD,
    OP_LD2,
    OP_LOCK,
    OP_NOP,
    OP_ST,
    OP_ST2,
    OP_UNLOCK,
    pack_lock,
)
from repro.platform.memory import MemoryMap

_KIND_TO_OP = {
    OpKind.ALU: OP_ALU,
    OpKind.FP: OP_FP,
    OpKind.DIV: OP_DIV,
    OpKind.FPDIV: OP_FDIV,
    OpKind.JUMP: OP_JMP,
    OpKind.NOP: OP_NOP,
}

#: op kinds whose constant-count macros may be merged when adjacent.
_COALESCIBLE = (OP_ALU, OP_NOP)

#: instruction sites charged for a Compute macro when estimating code
#: size (large macros are loops in real code, not straight-line bodies).
_MAX_MACRO_SITES = 8


def body_sites(body: tuple) -> int:
    """Static instruction-site estimate of a body tree.

    Used (by both backends, so their counters agree exactly) to charge
    I-cache cold refills when a segment first executes.
    """
    sites = 0
    for stmt in body:
        if isinstance(stmt, Compute):
            sites += min(stmt.count, _MAX_MACRO_SITES)
        elif isinstance(stmt, (Load, Store, DmaCopy)):
            sites += 1
        elif isinstance(stmt, Loop):
            sites += 3 + body_sites(stmt.body)  # setup, induction, branch
        elif isinstance(stmt, Critical):
            sites += 2 + body_sites(stmt.body)  # lock + unlock
    return sites


def segment_sites(body: tuple, loop_var: str | None,
                  prologue_alu: int) -> int:
    """Site estimate of a whole run segment."""
    sites = min(prologue_alu, _MAX_MACRO_SITES) if prologue_alu else 0
    if loop_var is not None:
        sites += 2  # chunk-loop induction and back branch
    sites += body_sites(body)
    return max(1, sites)


class _Emitter:
    """Accumulates generated source lines with ALU/NOP coalescing."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.sites = 0
        self._pending: tuple[int, int, int] | None = None  # op, count, indent

    def _flush(self) -> None:
        if self._pending is not None:
            op, count, indent = self._pending
            self.lines.append(f"{'    ' * indent}yield ({op}, {count})")
            self.sites += min(count, _MAX_MACRO_SITES)
            self._pending = None

    def constant(self, op: int, count: int, indent: int) -> None:
        """Emit a constant-arg instruction, merging coalescible runs."""
        if (self._pending is not None and op in _COALESCIBLE
                and self._pending[0] == op and self._pending[2] == indent):
            self._pending = (op, self._pending[1] + count, indent)
            return
        self._flush()
        if op in _COALESCIBLE:
            self._pending = (op, count, indent)
        else:
            self.lines.append(f"{'    ' * indent}yield ({op}, {count})")
            self.sites += min(count, _MAX_MACRO_SITES)

    def dynamic(self, op: int, arg_src: str, indent: int) -> None:
        """Emit an instruction whose argument is a runtime expression."""
        self._flush()
        self.lines.append(f"{'    ' * indent}yield ({op}, {arg_src})")
        self.sites += 1

    def raw(self, text: str, indent: int) -> None:
        self._flush()
        self.lines.append(f"{'    ' * indent}{text}")

    def finish(self) -> list[str]:
        self._flush()
        return self.lines


def _emit_body(emitter: _Emitter, body: tuple, memmap: MemoryMap,
               n_l1_banks: int, n_l2_banks: int, indent: int) -> None:
    for stmt in body:
        if isinstance(stmt, Compute):
            emitter.constant(_KIND_TO_OP[stmt.kind], stmt.count, indent)
        elif isinstance(stmt, (Load, Store)):
            placement = memmap.placement(stmt.array)
            if placement.space == "l1":
                op = OP_LD if isinstance(stmt, Load) else OP_ST
                banks = n_l1_banks
            else:
                op = OP_LD2 if isinstance(stmt, Load) else OP_ST2
                banks = n_l2_banks
            index = stmt.index
            if index.is_constant:
                bank = (placement.base_word + index.const) % banks
                emitter.dynamic(op, str(bank), indent)
            else:
                expr = f"({placement.base_word}+{index.to_python()})%{banks}"
                emitter.dynamic(op, expr, indent)
        elif isinstance(stmt, Loop):
            emitter.constant(OP_ALU, 2, indent)  # loop setup
            lo = stmt.lower.to_python()
            hi = stmt.upper.to_python()
            emitter.raw(f"for {stmt.var} in range({lo}, {hi}):", indent)
            emitter.constant(OP_ALU, 1, indent + 1)  # induction
            _emit_body(emitter, stmt.body, memmap, n_l1_banks, n_l2_banks,
                       indent + 1)
            emitter.constant(OP_JMP, 1, indent + 1)  # back branch
        elif isinstance(stmt, Critical):
            packed = pack_lock(_lock_index(stmt.name),
                               memmap.lock_bank(stmt.name))
            emitter.dynamic(OP_LOCK, str(packed), indent)
            _emit_body(emitter, stmt.body, memmap, n_l1_banks, n_l2_banks,
                       indent)
            emitter.dynamic(OP_UNLOCK, str(packed), indent)
        elif isinstance(stmt, DmaCopy):
            emitter.dynamic(OP_DMA, str(stmt.words), indent)
        else:
            raise LoweringError(f"cannot lower {type(stmt).__name__} "
                                f"inside a loop body")


_LOCK_IDS: dict[str, int] = {}


def _lock_index(name: str) -> int:
    """Stable small integer id per critical-section name."""
    if name not in _LOCK_IDS:
        _LOCK_IDS[name] = len(_LOCK_IDS)
    return _LOCK_IDS[name]


def compile_segment(body: tuple, memmap: MemoryMap, n_l1_banks: int,
                    n_l2_banks: int, loop_var: str | None = None,
                    free_vars: tuple[str, ...] = (),
                    prologue_alu: int = 0,
                    ) -> tuple[Callable, int]:
    """Compile one run segment to a *parameterised* generator function.

    The generated generator takes ``(__lo, __hi, *free_vars)``: the
    chunk bounds of the per-core work-share loop (ignored when
    *loop_var* is None) and the values of enclosing sequential-for
    variables.  Compiling once and binding the parameters per instance
    keeps the compilation cost independent of trip counts.

    When *loop_var* is given, the body is wrapped in the chunk loop of a
    parallel region (with the usual induction and back-branch
    overhead).  *prologue_alu* prepends runtime-overhead integer ops.
    Returns ``(generator_fn, code_sites)`` where ``code_sites``
    estimates static instruction sites for I-cache refill accounting.
    """
    params = ["__lo", "__hi", *free_vars]
    emitter = _Emitter()
    emitter.raw(f"def __segment__({', '.join(params)}):", 0)
    if prologue_alu > 0:
        emitter.constant(OP_ALU, prologue_alu, 1)
    if loop_var is not None:
        emitter.raw(f"for {loop_var} in range(__lo, __hi):", 1)
        emitter.constant(OP_ALU, 1, 2)
        _emit_body(emitter, body, memmap, n_l1_banks, n_l2_banks, 2)
        emitter.constant(OP_JMP, 1, 2)
    else:
        _emit_body(emitter, body, memmap, n_l1_banks, n_l2_banks, 1)
    lines = emitter.finish()
    has_yield = any("yield" in line for line in lines)
    if not has_yield:  # ensure the function is a generator
        lines.append("    yield from ()")
    source = "\n".join(lines)
    namespace: dict = {}
    exec(compile(source, "<repro-codegen>", "exec"), namespace)  # noqa: S102
    return namespace["__segment__"], segment_sites(body, loop_var,
                                                   prologue_alu)
