"""Compiled decision-table backend: byte-identical to the reference.

The contract under test is absolute equality, not closeness: for every
registered model family the compiled engine must reproduce the
node-walk reference prediction for prediction — including argmax
tie-breaks — on every input, because daemons serve whichever backend
is loaded and clients must not be able to tell.
"""

import numpy as np
import pytest

from repro.api import (
    BACKEND_COMPILED,
    BACKEND_REFERENCE,
    Classifier,
    ReproConfig,
    available_model_families,
    load_cached,
    load_or_train,
    model_family,
)
from repro.errors import MLError
from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.ml.compiled import CompiledForest, CompiledTree


def _blobs(n=300, n_features=5, n_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    y = rng.integers(1, n_classes + 1, size=n)
    # inject structure so trees actually split
    y = np.where(X[:, 0] > 0.3, n_classes + 1, y)
    return X, y


class TestCompiledTree:
    def test_matches_vectorized_and_rowwise_reference(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        compiled = CompiledTree.from_model(tree)
        X_test, _ = _blobs(seed=1)
        np.testing.assert_array_equal(compiled.predict(X_test),
                                      tree.predict(X_test))
        np.testing.assert_array_equal(compiled.predict(X_test),
                                      tree._predict_rowwise(X_test))

    def test_predict_proba_matches(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier(random_state=0,
                                      min_samples_leaf=5).fit(X, y)
        compiled = CompiledTree.from_model(tree)
        X_test, _ = _blobs(seed=2)
        np.testing.assert_array_equal(compiled.predict_proba(X_test),
                                      tree.predict_proba(X_test))

    def test_exact_threshold_boundary_rows(self):
        """Rows landing exactly on a split threshold must branch the
        same way (<= goes left) in both engines."""
        X, y = _blobs()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        compiled = CompiledTree.from_model(tree)
        thresholds = tree._flat_threshold[tree._flat_feature >= 0]
        if thresholds.size == 0:
            pytest.skip("degenerate tree (no splits)")
        boundary = np.tile(thresholds[:, None], (1, X.shape[1]))
        np.testing.assert_array_equal(compiled.predict(boundary),
                                      tree.predict(boundary))

    def test_unfitted_tree_rejected(self):
        with pytest.raises(MLError):
            CompiledTree.from_model(DecisionTreeClassifier())

    def test_shape_validation(self):
        X, y = _blobs()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        compiled = CompiledTree.from_model(tree)
        with pytest.raises(MLError):
            compiled.predict(np.zeros((4, X.shape[1] + 1)))


class TestCompiledForest:
    def test_matches_reference_and_loop(self):
        X, y = _blobs(n=400)
        forest = RandomForestClassifier(n_estimators=7,
                                        random_state=0).fit(X, y)
        compiled = CompiledForest.from_model(forest)
        X_test, _ = _blobs(n=500, seed=3)
        np.testing.assert_array_equal(compiled.predict(X_test),
                                      forest.predict(X_test))
        np.testing.assert_array_equal(compiled.predict(X_test),
                                      forest._predict_loop(X_test))

    def test_tie_break_equivalence_randomized(self):
        """Even-sized ensembles produce vote ties; the compiled tally
        must break them exactly as the reference bincount argmax does
        (toward the lowest class index), across many random draws."""
        for seed in range(5):
            X, y = _blobs(n=120, n_classes=3, seed=seed)
            forest = RandomForestClassifier(n_estimators=4,
                                            random_state=seed).fit(X, y)
            compiled = CompiledForest.from_model(forest)
            X_test = np.random.default_rng(seed + 100).normal(
                size=(200, X.shape[1]))
            np.testing.assert_array_equal(compiled.predict(X_test),
                                          forest.predict(X_test))

    def test_node_table_is_fully_concatenated(self):
        X, y = _blobs()
        forest = RandomForestClassifier(n_estimators=3,
                                        random_state=1).fit(X, y)
        compiled = CompiledForest.from_model(forest)
        assert compiled.n_trees_ == 3
        assert compiled.n_nodes_ == sum(
            len(t._flat_feature) for t in forest.trees_)

    def test_unfitted_forest_rejected(self):
        with pytest.raises(MLError):
            CompiledForest.from_model(RandomForestClassifier())


class TestClassifierBackend:
    @pytest.mark.parametrize("family", sorted(available_model_families()))
    def test_every_family_parity(self, family, tiny_dataset):
        """Acceptance: compiled predictions byte-identical to the
        reference across every registered model family."""
        clf = Classifier(ReproConfig(profile="unit",
                                     model=family)).train(tiny_dataset)
        X = tiny_dataset.matrix(clf.feature_names_)
        reference = clf.predict_batch(X)
        ref_singles = [clf.predict(row) for row in X]
        clf.compile(BACKEND_COMPILED)
        np.testing.assert_array_equal(clf.predict_batch(X), reference)
        assert [clf.predict(row) for row in X] == ref_singles
        # compiled only where the family registers a compiler
        expects_compiled = model_family(family).compile is not None
        assert clf.backend_ == (BACKEND_COMPILED if expects_compiled
                                else BACKEND_REFERENCE)

    def test_compile_roundtrip_and_validation(self, tiny_dataset):
        clf = Classifier(ReproConfig(profile="unit")).train(tiny_dataset)
        assert clf.backend_ == BACKEND_REFERENCE
        clf.compile()
        assert clf.backend_ == BACKEND_COMPILED
        clf.compile(BACKEND_REFERENCE)
        assert clf.backend_ == BACKEND_REFERENCE
        with pytest.raises(MLError):
            clf.compile("turbo")
        with pytest.raises(MLError):
            Classifier(ReproConfig(profile="unit")).compile()

    def test_load_defaults_to_compiled(self, tiny_dataset, tmp_path):
        clf = Classifier(ReproConfig(profile="unit")).train(tiny_dataset)
        path = str(tmp_path / "model.json")
        clf.save(path)
        X = tiny_dataset.matrix(clf.feature_names_)
        loaded = Classifier.load(path)
        assert loaded.backend_ == BACKEND_COMPILED
        np.testing.assert_array_equal(loaded.predict_batch(X),
                                      clf.predict_batch(X))
        reference = Classifier.load(path, backend=BACKEND_REFERENCE)
        assert reference.backend_ == BACKEND_REFERENCE
        np.testing.assert_array_equal(reference.predict_batch(X),
                                      clf.predict_batch(X))

    def test_train_resets_to_reference(self, tiny_dataset):
        clf = Classifier(ReproConfig(profile="unit")).train(tiny_dataset)
        clf.compile()
        clf.train(tiny_dataset)
        assert clf.backend_ == BACKEND_REFERENCE
        assert clf._compiled is None

    def test_info_payload_is_backend_agnostic(self, tiny_dataset):
        """info() must not change shape with the backend — legacy
        clients byte-compare these frames."""
        clf = Classifier(ReproConfig(profile="unit")).train(tiny_dataset)
        before = clf.info()
        clf.compile()
        assert clf.info() == before


class TestArtifactCacheBackend:
    def test_cache_paths_honour_backend(self, tiny_dataset):
        config = ReproConfig(profile="unit")
        trained, hit = load_or_train(config, dataset=tiny_dataset)
        assert not hit
        assert trained.backend_ == BACKEND_COMPILED
        cached = load_cached(config, dataset=tiny_dataset)
        assert cached is not None and cached.backend_ == BACKEND_COMPILED
        reference = load_cached(config, dataset=tiny_dataset,
                                backend=BACKEND_REFERENCE)
        assert reference.backend_ == BACKEND_REFERENCE
        X = tiny_dataset.matrix(trained.feature_names_)
        np.testing.assert_array_equal(trained.predict_batch(X),
                                      reference.predict_batch(X))
