"""Machine-code-analyser features (paper Table IIb).

The paper feeds its decision tree the statistics LLVM-MCA reports for the
kernel's instruction flow: micro-ops per cycle, IPC, reverse block
throughput, and the *resource pressure* on each execution port of the
modelled micro-architecture (ports 0-7 plus the integer and FP divider
units — the port naming in the paper's Table IIb).

This module reproduces that analysis for our abstract ISA: instructions
decompose into micro-ops, each eligible on a subset of ports; pressure is
the per-iteration cycle load the optimal (water-filling) dispatch places
on each port, mirroring how LLVM-MCA's scheduler balances eligible ports;
the reverse block throughput is the bottleneck resource's load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FeatureError
from repro.features.static_counts import StaticCounts, summarize_kernel
from repro.ir.nodes import Kernel

MCA_FEATURES = ("uOPSpc", "IPC", "RBP", "RPDiv", "RPFPDiv",
                "RP0", "RP1", "RP2", "RP3", "RP4", "RP5", "RP6", "RP7")

N_PORTS = 8
DISPATCH_WIDTH = 4
#: divider occupancies (cycles per operation, matching core latencies)
DIV_RTHROUGHPUT = 8.0
FPDIV_RTHROUGHPUT = 12.0

#: micro-op groups in increasing port flexibility; (label, ports) pairs.
_UOP_GROUPS = (
    ("branch", (6,)),
    ("store_data", (4,)),
    ("div_uop", (0,)),
    ("fp", (0, 1)),
    ("load", (2, 3)),
    ("store_agu", (2, 3, 7)),
    ("alu", (0, 1, 5, 6)),
)


@dataclass(frozen=True)
class McaResult:
    """Per-iteration MCA statistics of one instruction mix."""

    uops_per_iteration: float
    instructions_per_iteration: float
    port_pressure: tuple
    div_pressure: float
    fpdiv_pressure: float

    @property
    def rblock_throughput(self) -> float:
        """Reverse block throughput: cycles per iteration at steady state."""
        bottleneck = max(
            self.uops_per_iteration / DISPATCH_WIDTH,
            max(self.port_pressure, default=0.0),
            self.div_pressure,
            self.fpdiv_pressure,
        )
        return max(bottleneck, 1e-12)

    @property
    def ipc(self) -> float:
        return self.instructions_per_iteration / self.rblock_throughput

    @property
    def uops_per_cycle(self) -> float:
        return self.uops_per_iteration / self.rblock_throughput

    def as_features(self) -> dict[str, float]:
        feats = {
            "uOPSpc": self.uops_per_cycle,
            "IPC": self.ipc,
            "RBP": self.rblock_throughput,
            "RPDiv": self.div_pressure,
            "RPFPDiv": self.fpdiv_pressure,
        }
        for port in range(N_PORTS):
            feats[f"RP{port}"] = self.port_pressure[port]
        return feats


def _waterfill(loads: list[float], ports: tuple, amount: float) -> None:
    """Distribute *amount* uops over *ports*, equalising the final loads.

    Classic continuous water-filling: repeatedly raise the least-loaded
    eligible ports together until the amount is exhausted.  This is the
    min-max-optimal assignment for divisible unit work, which is what
    LLVM-MCA's average pressure figures converge to.
    """
    if amount <= 0.0:
        return
    levels = sorted(ports, key=lambda p: loads[p])
    remaining = amount
    active = [levels[0]]
    for nxt in levels[1:]:
        gap = loads[nxt] - loads[active[0]]
        fill = gap * len(active)
        if fill >= remaining:
            break
        remaining -= fill
        for port in active:
            loads[port] = loads[nxt]
        active.append(nxt)
    per_port = remaining / len(active)
    for port in active:
        loads[port] += per_port


def analyse_mix(counts: StaticCounts, iterations: float) -> McaResult:
    """Run the port model on a trip-weighted mix over *iterations*."""
    if iterations <= 0:
        raise FeatureError("cannot analyse a mix with zero iterations")
    scale = 1.0 / iterations
    group_amounts = {
        "branch": counts.jump * scale,
        "store_data": (counts.l1_stores + counts.l2_stores
                       + counts.lock_ops) * scale,
        "div_uop": (counts.div + counts.fpdiv) * scale,
        "fp": (counts.fp + counts.fpdiv) * scale,
        "load": (counts.l1_loads + counts.l2_loads
                 + counts.lock_ops) * scale,
        "store_agu": (counts.l1_stores + counts.l2_stores
                      + counts.lock_ops) * scale,
        "alu": (counts.alu + counts.nop) * scale,
    }
    # FP divisions already consume the div_uop slot; plain FP ops use the
    # "fp" group, so subtract the double-counted fdiv uops from it.
    group_amounts["fp"] -= counts.fpdiv * scale

    loads = [0.0] * N_PORTS
    for label, ports in _UOP_GROUPS:
        _waterfill(loads, ports, group_amounts[label])

    uops = sum(group_amounts.values())
    instructions = (counts.instructions + counts.lock_ops) * scale
    return McaResult(
        uops_per_iteration=uops,
        instructions_per_iteration=instructions,
        port_pressure=tuple(loads),
        div_pressure=(counts.div * DIV_RTHROUGHPUT
                      + counts.fpdiv * FPDIV_RTHROUGHPUT) * scale,
        fpdiv_pressure=counts.fpdiv * FPDIV_RTHROUGHPUT * scale,
    )


def extract_mca(kernel: Kernel) -> dict[str, float]:
    """Kernel-level MCA features.

    Each parallel region is analysed per iteration of its work-share
    loop; region results are averaged weighted by the region's share of
    the kernel's instructions (the hot region dominates, like the hot
    loop dominates an LLVM-MCA run over the kernel's text).
    """
    summary = summarize_kernel(kernel)
    results: list[tuple[float, McaResult]] = []
    for counts, trip in zip(summary.region_counts, summary.region_trips):
        if trip <= 0:
            continue
        weight = counts.instructions
        results.append((weight, analyse_mix(counts, float(trip))))
    if not results:
        raise FeatureError(f"kernel {kernel.name!r} has no analysable "
                           f"parallel region")
    total_weight = sum(w for w, _ in results) or 1.0
    merged: dict[str, float] = {name: 0.0 for name in MCA_FEATURES}
    for weight, result in results:
        for name, value in result.as_features().items():
            merged[name] += value * (weight / total_weight)
    return merged


def mca_report(kernel: Kernel) -> str:
    """Human-readable report in the spirit of ``llvm-mca`` output."""
    features = extract_mca(kernel)
    lines = [
        f"MCA summary for kernel {kernel.name!r}",
        f"  uOps per cycle:            {features['uOPSpc']:8.3f}",
        f"  IPC:                       {features['IPC']:8.3f}",
        f"  Reverse block throughput:  {features['RBP']:8.3f}",
        "",
        "Resource pressure per iteration:",
        f"  Divider:                   {features['RPDiv']:8.3f}",
        f"  FP divider:                {features['RPFPDiv']:8.3f}",
    ]
    for port in range(N_PORTS):
        lines.append(f"  Port {port}:                    "
                     f"{features[f'RP{port}']:8.3f}")
    return "\n".join(lines)
