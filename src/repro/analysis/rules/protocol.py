"""RPL001 — protocol consistency: verbs and error codes cannot drift.

The scoring protocol has two sides that live in different modules: the
server stack (``RequestEngine`` dispatch in ``transport.py``, the
fleet admin verbs in ``fleet/router.py``, the hello handshake in
``wire.py``) *handles* ``{"cmd": ...}`` verbs, and ``ScoringClient``
*sends* them.  Nothing but convention keeps the two sets equal — a new
verb handled by the engine with no client method (or a client method
sending a verb no handler matches) is silent drift until a user hits
it.  The same goes for error codes: every code emitted in a typed
error frame must come from the registered ``ERROR_*`` vocabulary, the
vocabulary must not carry dead codes no server ever emits, and the
``ERROR_CODES`` tuple must list every code its module defines.

Extraction is structural, not path-based:

* **handled verb** — a comparison between a string literal and a value
  obtained from ``<x>.get("cmd")`` (directly, or via a local name
  assigned from it), e.g. ``if cmd == "stats":``;
* **sent verb** — a dict literal with a ``"cmd"`` key holding a string
  literal, e.g. ``{"cmd": "load_model", "model": spec}``;
* **emitted code** — the first argument of an ``error_frame(...)``
  call, or the ``code=`` keyword of a ``ScoringError(...)`` raise;
* **defined code** — a module-level ``ERROR_* = "literal"`` constant.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import (
    Rule,
    dotted_name,
    str_const,
    walk_function_body,
)

#: calls whose first positional argument is an emitted error code.
_EMIT_CALLS = ("error_frame",)

#: exception constructors whose ``code=`` keyword is an emitted code.
_EMIT_EXCEPTIONS = ("ScoringError",)


def _cmd_getter(node, cmd_names) -> bool:
    """Is *node* a value carrying the request's ``cmd`` field?"""
    if isinstance(node, ast.Name):
        return node.id in cmd_names
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and len(node.args) >= 1
        and str_const(node.args[0]) == "cmd"
    )


class _FileFacts:
    """Everything RPL001 needs from one parsed file."""

    def __init__(self, source) -> None:
        self.path = source.path
        self.handled: list = []  # (verb, node)
        self.sent: list = []  # (verb, node)
        self.emitted: list = []  # ((kind, value), node)
        self.defined: dict = {}  # NAME -> (value, node)
        self.error_codes_tuple: tuple | None = None  # (values, node)
        self._scan(source.tree)

    def _scan(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            self._scan_module_assign(stmt)
        for func in ast.walk(tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(func)

    def _scan_module_assign(self, stmt) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        if target.id == "ERROR_CODES":
            values = []
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                for element in stmt.value.elts:
                    if isinstance(element, ast.Name):
                        values.append(element.id)
                    elif str_const(element) is not None:
                        values.append(str_const(element))
            self.error_codes_tuple = (values, stmt)
        elif target.id.startswith("ERROR_"):
            value = str_const(stmt.value)
            if value is not None:
                self.defined[target.id] = (value, stmt)

    def _scan_function(self, func) -> None:
        cmd_names: set = set()
        # two passes so `cmd = request.get("cmd")` is known before the
        # comparisons that use it, wherever they appear in the body
        for node in walk_function_body(func, skip_nested=False):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _cmd_getter(node.value, ())
            ):
                cmd_names.add(node.targets[0].id)
        for node in walk_function_body(func, skip_nested=False):
            self._scan_node(node, cmd_names)

    def _scan_node(self, node, cmd_names) -> None:
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(_cmd_getter(op, cmd_names) for op in operands):
                for op in operands:
                    value = str_const(op)
                    if value is not None:
                        self.handled.append((value, node))
                    elif isinstance(op, (ast.Tuple, ast.List, ast.Set)):
                        for element in op.elts:
                            if str_const(element) is not None:
                                self.handled.append((str_const(element), node))
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if str_const(key) == "cmd" and str_const(value) is not None:
                    self.sent.append((str_const(value), node))
        elif isinstance(node, ast.Call):
            self._scan_call(node)

    def _scan_call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        short = name.rsplit(".", 1)[-1] if name else None
        if short in _EMIT_CALLS and node.args:
            self._record_emit(node.args[0], node)
        if short in _EMIT_EXCEPTIONS:
            for keyword in node.keywords:
                if keyword.arg == "code":
                    self._record_emit(keyword.value, node)

    def _record_emit(self, expr, node) -> None:
        if isinstance(expr, ast.Name):
            self.emitted.append((("name", expr.id), node))
        elif str_const(expr) is not None:
            self.emitted.append((("literal", str_const(expr)), node))
        # dynamic expressions (response.get("code"), f-strings) are
        # relays of an already-typed code, not new emissions


class ProtocolConsistency(Rule):
    code = "RPL001"
    name = "protocol-consistency"
    rationale = (
        "every handled {'cmd': ...} verb must have a sender and vice "
        "versa; error codes must come from the registered ERROR_* "
        "vocabulary, with no dead entries"
    )

    def check(self, project):
        facts = [_FileFacts(source) for source in project.files]
        yield from self._check_verbs(facts)
        yield from self._check_codes(facts)

    def _check_verbs(self, facts):
        handled: dict = {}
        sent: dict = {}
        for file_facts in facts:
            for verb, node in file_facts.handled:
                handled.setdefault(verb, (file_facts.path, node))
            for verb, node in file_facts.sent:
                sent.setdefault(verb, (file_facts.path, node))
        if not handled or not sent:
            # a project with only one protocol side (a fixture, a
            # vendored module) has nothing to cross-check
            return
        for verb in sorted(set(handled) - set(sent)):
            path, node = handled[verb]
            yield self.finding(
                path,
                node,
                f"verb {verb!r} is handled here but no scanned client "
                f"code ever sends {{'cmd': {verb!r}}}; add the client "
                f"method or retire the handler",
            )
        for verb in sorted(set(sent) - set(handled)):
            path, node = sent[verb]
            yield self.finding(
                path,
                node,
                f"verb {verb!r} is sent here but no scanned handler "
                f"compares against it; the server will answer "
                f"bad_request",
            )

    def _check_codes(self, facts):
        defined: dict = {}  # NAME -> (value, path, node)
        values: set = set()
        for file_facts in facts:
            for const, (value, node) in file_facts.defined.items():
                defined.setdefault(const, (value, file_facts.path, node))
                values.add(value)
        if not defined:
            return
        emitted_names: set = set()
        emitted_values: set = set()
        for file_facts in facts:
            for (kind, value), node in file_facts.emitted:
                if kind == "name":
                    emitted_names.add(value)
                    if value in defined:
                        emitted_values.add(defined[value][0])
                else:
                    emitted_values.add(value)
                    if value not in values:
                        yield self.finding(
                            file_facts.path,
                            node,
                            f"error code literal {value!r} is not a "
                            f"registered ERROR_* constant; clients "
                            f"cannot dispatch on unregistered codes",
                        )
        for const in sorted(defined):
            value, path, node = defined[const]
            if const not in emitted_names and value not in emitted_values:
                yield self.finding(
                    path,
                    node,
                    f"error code {const} = {value!r} is defined but "
                    f"never emitted by any error_frame/ScoringError; "
                    f"dead protocol vocabulary",
                )
        for file_facts in facts:
            if file_facts.error_codes_tuple is None:
                continue
            listed, node = file_facts.error_codes_tuple
            for const, (value, path, _) in sorted(defined.items()):
                if path != file_facts.path:
                    continue
                if const not in listed and value not in listed:
                    yield self.finding(
                        file_facts.path,
                        node,
                        f"{const} is defined in this module but "
                        f"missing from ERROR_CODES; the tuple is the "
                        f"protocol's published vocabulary",
                    )
