"""Dynamic features (paper Table III), per simulated team size.

The paper's dynamic features are read off the GVSOC traces for each of
the eight parallelism configurations; a sample's dynamic feature vector
therefore contains every metric **per team size** ("PE sleep 8" in
Table IV is the clock-gating fraction measured with 8 cores).

Aggregation across the cluster's physical components follows the trace
semantics: fractions are averaged over the 8 cores, event counts are
summed over cores/banks.
"""

from __future__ import annotations

from repro.sim.counters import ClusterCounters

DYNAMIC_METRICS = (
    "PE_idle",       # fraction: contention / multi-cycle wait cycles
    "PE_sleep",      # fraction: clock-gated cycles
    "PE_alu",        # count: ALU-class opcodes
    "PE_fp",         # count: FP-class opcodes
    "PE_l1",         # count: TCDM access opcodes
    "PE_l2",         # count: L2 access opcodes
    "L1_idle",       # count: idle bank-cycles over all TCDM banks
    "L1_read",       # count: reads over all TCDM banks
    "L1_write",      # count: writes over all TCDM banks
    "L1_conflicts",  # count: conflicted requests over all TCDM banks
)


def extract_dynamic(counters: ClusterCounters) -> dict[str, float]:
    """The ten Table-III metrics of one simulated run."""
    cycles = counters.cycles or 1
    n_cores = counters.n_cores
    idle = sum(c.stall_cycles for c in counters.cores) / (cycles * n_cores)
    sleep = sum(c.cg_cycles for c in counters.cores) / (cycles * n_cores)
    return {
        "PE_idle": idle,
        "PE_sleep": sleep,
        "PE_alu": float(sum(c.alu_class_ops for c in counters.cores)),
        "PE_fp": float(sum(c.fp_class_ops for c in counters.cores)),
        "PE_l1": float(sum(c.l1_ops for c in counters.cores)),
        "PE_l2": float(sum(c.l2_ops for c in counters.cores)),
        "L1_idle": float(sum(cycles - b.accesses
                             for b in counters.l1_banks)),
        "L1_read": float(counters.total_l1_reads),
        "L1_write": float(counters.total_l1_writes),
        "L1_conflicts": float(counters.total_l1_conflicts),
    }


def dynamic_feature_names(team_sizes=range(1, 9)) -> list[str]:
    """Flat feature names, one per (metric, team size) pair."""
    return [f"{metric}@{team}" for metric in DYNAMIC_METRICS
            for team in team_sizes]


def flatten_dynamic(per_team: dict[int, dict[str, float]]) -> dict[str, float]:
    """Merge per-team metric dicts into the flat ``metric@team`` form."""
    flat: dict[str, float] = {}
    for team, metrics in sorted(per_team.items()):
        for metric, value in metrics.items():
            flat[f"{metric}@{team}"] = value
    return flat
