"""Typed fleet-ops surface: the admin verbs behind dataclass results.

:class:`AdminClient` owns every admin/ops verb of the scoring protocol
— ``stats``, ``health``, ``list_models``, ``load_model``,
``evict_model``, ``promote`` and ``drain`` — and answers with typed
results (:class:`ShardHealth`, :class:`ModelListing` /
:class:`ModelInfo`, :class:`FleetStats`) instead of raw protocol
dicts.  The scoring verbs stay on
:class:`repro.api.client.ScoringClient`; its historical admin methods
survive as delegating shims that emit ``DeprecationWarning``.

An ``AdminClient`` either *borrows* an existing ``ScoringClient``
(``AdminClient(client)`` — the caller keeps ownership and the admin
wrapper never closes it) or *owns* a fresh one
(``AdminClient(socket_path=...)`` / ``AdminClient(tcp=...)`` — closed
by :meth:`close` / the context manager).  Borrowing is what the
deprecated shims use; owning is what operational tooling wants::

    with AdminClient(socket_path="/tmp/repro.sock") as admin:
        admin.health().status          # "serving" | "draining"
        admin.list_models().models     # tuple[ModelInfo, ...]
        admin.promote("forest:static-all")
        admin.drain()                  # graceful shard shutdown

:func:`collect_stats` (moved here from :mod:`repro.api.shard`)
aggregates the ``stats`` verb across every shard of a deployment into
one :class:`FleetStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.client import ScoringClient
from repro.api.wire import merge_codec_stats
from repro.errors import ScoringError
from repro.obs import merge_series

__all__ = [
    "AdminClient",
    "FleetMetrics",
    "FleetStats",
    "ModelInfo",
    "ModelListing",
    "ShardHealth",
    "collect_metrics",
    "collect_stats",
]


@dataclass(frozen=True)
class ShardHealth:
    """One server's answer to the ``health`` verb.

    ``status`` is ``"serving"`` or ``"draining"``; ``index`` is the
    shard index of a sharded deployment (``None`` for a standalone
    daemon).  ``raw`` keeps the full wire payload for fields this
    snapshot predates.
    """

    status: str
    pid: int | None
    draining: bool
    index: int | None = None
    raw: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def serving(self) -> bool:
        """Whether the server accepts new scoring requests."""
        return not self.draining

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardHealth":
        shard = payload.get("shard")
        shard = shard if isinstance(shard, dict) else {}
        return cls(
            status=str(payload.get("status", "unknown")),
            pid=payload.get("pid"),
            draining=bool(payload.get("draining")),
            index=shard.get("index"),
            raw=dict(payload),
        )


@dataclass(frozen=True)
class ModelInfo:
    """One resident model of a fleet pool (one ``list_models`` row).

    Field order mirrors the wire row
    (:meth:`repro.api.fleet.ModelPool.entries`); :meth:`as_row` gives
    that dict back for callers still on the historical shape.
    """

    model: str
    family: str
    feature_set: str
    dataset_tag: str
    size_bytes: int
    hits: int
    loads: int
    pinned: bool
    default: bool

    @classmethod
    def from_row(cls, row: dict) -> "ModelInfo":
        return cls(
            model=str(row.get("model", "")),
            family=str(row.get("family", "")),
            feature_set=str(row.get("feature_set", "")),
            dataset_tag=str(row.get("dataset_tag", "")),
            size_bytes=int(row.get("size_bytes", 0)),
            hits=int(row.get("hits", 0)),
            loads=int(row.get("loads", 0)),
            pinned=bool(row.get("pinned")),
            default=bool(row.get("default")),
        )

    def as_row(self) -> dict:
        """The historical ``list_models`` wire-row dict."""
        return {
            "model": self.model,
            "family": self.family,
            "feature_set": self.feature_set,
            "dataset_tag": self.dataset_tag,
            "size_bytes": self.size_bytes,
            "hits": self.hits,
            "loads": self.loads,
            "pinned": self.pinned,
            "default": self.default,
        }


@dataclass(frozen=True)
class ModelListing:
    """The fleet's resident set: typed rows plus the pool stats tree."""

    models: tuple
    stats: dict = field(default_factory=dict, compare=False)

    @property
    def default(self) -> "ModelInfo | None":
        """The pinned default model, when the fleet has one."""
        for info in self.models:
            if info.default:
                return info
        return None

    def __iter__(self):
        return iter(self.models)

    def __len__(self) -> int:
        return len(self.models)


@dataclass(frozen=True)
class FleetStats:
    """Aggregated ``stats`` across every shard of one deployment.

    ``shards`` holds the raw per-shard payloads (dead shards appear as
    ``{"shard": {...}, "error": ...}`` rows rather than failing the
    collection); the counters are fleet-wide sums and ``codec`` is the
    merged per-codec section (``None`` when no shard reported one).
    """

    requests_served: int
    connections_served: int
    active_connections: int
    shards: tuple = ()
    codec: dict | None = field(default=None, compare=False)

    @property
    def live_shards(self) -> int:
        """How many shards answered the stats probe."""
        return sum(1 for row in self.shards
                   if isinstance(row, dict) and "error" not in row)

    def as_dict(self) -> dict:
        """The historical :func:`repro.api.shard.collect_stats` shape."""
        return {
            "shards": list(self.shards),
            "requests_served": self.requests_served,
            "connections_served": self.connections_served,
            "active_connections": self.active_connections,
            "codec": self.codec,
        }


@dataclass(frozen=True)
class FleetMetrics:
    """Merged telemetry across every shard of one deployment.

    ``series`` is the bucket-wise merge of each live shard's registry
    snapshot (:func:`repro.obs.merge_series` — histogram counts are
    added per bucket, **never** averaged percentiles); ``shards``
    holds the raw per-shard payloads, with dead shards appearing as
    ``{"shard": {...}, "error": ...}`` rows rather than failing or
    poisoning the merge.
    """

    series: tuple
    shards: tuple = ()

    @property
    def live_shards(self) -> int:
        """How many shards answered the metrics probe."""
        return sum(1 for row in self.shards
                   if isinstance(row, dict) and "error" not in row)

    def as_dict(self) -> dict:
        return {
            "series": [dict(row) for row in self.series],
            "shards": list(self.shards),
        }


class AdminClient:
    """The typed admin/ops surface over one scoring connection.

    Pass an existing :class:`~repro.api.client.ScoringClient` to
    *client* to borrow its connection (the admin wrapper never closes
    a borrowed client), or pass an endpoint (``socket_path`` / ``tcp``)
    to own a dedicated connection, closed by :meth:`close` or the
    context manager.
    """

    def __init__(
        self,
        client: ScoringClient | None = None,
        *,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        timeout: float = 30.0,
        reconnect_retries: int = 1,
    ) -> None:
        if client is not None:
            if socket_path is not None or tcp is not None:
                raise ScoringError(
                    "pass either an existing client to borrow or an "
                    "endpoint to own, not both")
            self.client = client
            self._owned = False
            return
        self.client = ScoringClient(
            socket_path=socket_path, tcp=tcp, timeout=timeout,
            reconnect_retries=reconnect_retries)
        self._owned = True

    # -- introspection verbs -----------------------------------------------

    def stats(self) -> dict:
        """The server's stats tree (the ``{"cmd": "stats"}`` verb).

        Carries a ``server`` section (transport counters — requests,
        connections, event-loop coalesced batch sizes, per-codec
        subsection), a ``fleet`` section against fleet daemons (pool
        hits/evictions, batching) and a ``shard`` section against
        sharded daemons; the tree shape is server-defined, so this one
        verb intentionally stays a dict (see :func:`collect_stats` for
        the typed fleet-wide aggregate).
        """
        return dict(self.client.request({"cmd": "stats"})["stats"])

    def metrics(self) -> dict:
        """One server's telemetry snapshot (the ``metrics`` verb).

        The payload carries ``enabled`` plus the registry snapshot's
        ``series`` list (empty when the daemon runs with telemetry
        off); see :func:`collect_metrics` for the fleet-wide merge.
        """
        return dict(self.client.request({"cmd": "metrics"})["metrics"])

    @staticmethod
    def collect_metrics(base_path: str,
                        timeout: float = 10.0) -> "FleetMetrics":
        """Fleet-wide :func:`collect_metrics` (same module), for symmetry
        with the per-shard :meth:`metrics` verb."""
        return collect_metrics(base_path, timeout=timeout)

    def health(self) -> ShardHealth:
        """One liveness/drain probe (the ``{"cmd": "health"}`` verb).

        Unlike ``stats`` this verb is answered even mid-drain, so the
        supervisor can watch a draining shard finish.
        """
        response = self.client.request({"cmd": "health"})
        return ShardHealth.from_payload(dict(response["health"]))

    def list_models(self) -> ModelListing:
        """The fleet's resident models as a typed listing.

        Requires a fleet daemon; a single-model daemon answers
        ``bad_request`` (raised as :class:`ScoringError`).
        """
        response = self.client.request({"cmd": "list_models"})
        return ModelListing(
            models=tuple(ModelInfo.from_row(row)
                         for row in response["models"]),
            stats=dict(response.get("stats", {})),
        )

    # -- model management verbs --------------------------------------------

    def load_model(self, model: str) -> str:
        """Warm-load one model key into the fleet; returns the full spec."""
        response = self.client.request(
            {"cmd": "load_model", "model": str(model)})
        return str(response["model"])

    def evict_model(self, model: str) -> bool:
        """Evict one model key; ``False`` when it was not resident."""
        response = self.client.request(
            {"cmd": "evict_model", "model": str(model)})
        return bool(response["evicted"])

    def promote(self, model: str) -> str:
        """Make an already-resident key the fleet's pinned default.

        Returns the promoted full spec.  The key must be resident
        (warm it with :meth:`load_model` first) — promotion must never
        block scoring traffic behind an artifact load, so a cold key
        answers ``unknown_model``.
        """
        response = self.client.request(
            {"cmd": "promote", "model": str(model)})
        return str(response["model"])

    # -- lifecycle verbs ----------------------------------------------------

    def drain(self) -> bool:
        """Ask the server to drain: finish in-flight work, then stop.

        The ack is synchronous with the refusal of new scoring
        requests, so once this returns the server sends no fresh work
        to its old connections.  Returns ``True`` when this call
        started the drain (``False``: one was already running).  The
        underlying connection is dropped after the ack — a draining
        server waits for its connections to empty, so holding ours
        open would pin the drain until its grace deadline.
        """
        response = self.client.request({"cmd": "drain"})
        self.client.disconnect()
        return bool(response.get("started"))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the connection if this admin client owns it."""
        if self._owned:
            self.client.close()

    def __enter__(self) -> "AdminClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def collect_stats(base_path: str, timeout: float = 10.0) -> FleetStats:
    """Aggregate the ``stats`` verb across every shard of a deployment.

    *base_path* is the unix endpoint clients connect to.  When it
    holds a shard registry (see :mod:`repro.api.shard`), every
    registered shard is queried directly — the registry rotation would
    otherwise only ever show one shard per connection; a plain daemon
    socket is queried as a single "deployment of one".

    Dead or malformed shards are skipped (their row is
    ``{"shard": {...}, "error": str}``, plus a ``"code"`` field when
    the failure carried a typed :class:`~repro.errors.ScoringError`
    code) rather than failing the whole collection: a shard dying
    between the registry read and the connect is an expected race, not
    a reason to lose the stats of the survivors.
    """
    from repro.api.shard import read_registry

    rows = read_registry(base_path)
    if rows is None:
        endpoints = [(None, base_path)]
    else:
        endpoints = [(s.get("index"), s.get("path")) for s in rows]
    per_shard: list = []
    totals = {"requests_served": 0, "connections_served": 0,
              "active_connections": 0}
    codec_sections: list = []
    for index, path in endpoints:
        if not isinstance(path, str) or not path:
            per_shard.append({"shard": {"index": index, "path": path},
                              "error": "registry row has no usable "
                                       "'path'"})
            continue
        try:
            with AdminClient(socket_path=path, timeout=timeout) as admin:
                payload = admin.stats()
        except Exception as exc:  # dead shard: report, do not fail
            row = {"shard": {"index": index, "path": path},
                   "error": str(exc)}
            if isinstance(exc, ScoringError) and exc.code is not None:
                row["code"] = exc.code
            per_shard.append(row)
            continue
        if index is not None:
            payload.setdefault("shard", {"index": index})
        per_shard.append(payload)
        server = payload.get("server")
        server = server if isinstance(server, dict) else {}
        for key in totals:
            value = server.get(key)
            if isinstance(value, (int, float)):
                totals[key] += value
        if isinstance(server.get("codec"), dict):
            codec_sections.append(server["codec"])
    return FleetStats(
        shards=tuple(per_shard),
        codec=(merge_codec_stats(codec_sections) if codec_sections
               else None),
        **totals,
    )


def collect_metrics(base_path: str, timeout: float = 10.0) -> FleetMetrics:
    """Merge the ``metrics`` verb across every shard of a deployment.

    Mirrors :func:`collect_stats`: *base_path* resolves through the
    shard registry when one exists (plain daemon sockets are a
    deployment of one), dead shards become ``error`` rows instead of
    failing the collection, and the surviving snapshots are merged
    **bucket-wise** with :func:`repro.obs.merge_series` — adding
    histogram bucket counts preserves exact fleet-wide percentiles,
    where averaging per-shard percentiles would fabricate them.
    """
    from repro.api.shard import read_registry

    rows = read_registry(base_path)
    if rows is None:
        endpoints = [(None, base_path)]
    else:
        endpoints = [(s.get("index"), s.get("path")) for s in rows]
    per_shard: list = []
    snapshots: list = []
    for index, path in endpoints:
        if not isinstance(path, str) or not path:
            per_shard.append({"shard": {"index": index, "path": path},
                              "error": "registry row has no usable "
                                       "'path'"})
            continue
        try:
            with AdminClient(socket_path=path, timeout=timeout) as admin:
                payload = admin.metrics()
        except Exception as exc:  # dead shard: report, do not fail
            row = {"shard": {"index": index, "path": path},
                   "error": str(exc)}
            if isinstance(exc, ScoringError) and exc.code is not None:
                row["code"] = exc.code
            per_shard.append(row)
            continue
        payload.setdefault("shard", {"index": index, "path": path})
        per_shard.append(payload)
        if payload.get("series"):
            snapshots.append({"series": payload["series"]})
    return FleetMetrics(
        series=tuple(merge_series(snapshots)),
        shards=tuple(per_shard),
    )
