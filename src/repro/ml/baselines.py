"""Naive policies the paper compares against.

The headline baseline is *always-8*: always use the full cluster — the
policy a programmer chasing speed-up would pick, and the dashed grey
line of Figure 2 (left).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError


class AlwaysKClassifier:
    """Predicts the constant team size *k* for every sample."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise MLError(f"team size must be >= 1, got {k}")
        self.k = k
        self.feature_importances_ = None

    def fit(self, X, y) -> "AlwaysKClassifier":
        X = np.asarray(X)
        self.feature_importances_ = np.zeros(X.shape[1] if X.ndim == 2
                                             else 0)
        return self

    def predict(self, X) -> np.ndarray:
        return np.full(len(X), self.k, dtype=int)

    def to_dict(self) -> dict:
        return {"params": {"k": self.k}}

    @classmethod
    def from_dict(cls, data: dict) -> "AlwaysKClassifier":
        try:
            return cls(k=int(data["params"]["k"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise MLError(f"malformed always-k payload: {exc!r}")


class OracleClassifier:
    """Upper bound: predicts the true label (sanity checks only)."""

    def __init__(self, y_true) -> None:
        self._y = np.asarray(y_true)

    def fit(self, X, y) -> "OracleClassifier":
        return self

    def predict_for_indices(self, indices) -> np.ndarray:
        return self._y[np.asarray(indices)]
