"""Unit tests for the cluster configuration and memory map."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LayoutError, SimulationError
from repro.ir import Critical, KernelBuilder, Load, OpKind
from repro.ir.expr import var
from repro.ir.nodes import Compute
from repro.ir.types import DType
from repro.platform import ClusterConfig, MemoryMap, bank_of_word


class TestClusterConfig:
    def test_defaults_match_paper_instance(self):
        config = ClusterConfig()
        assert config.n_cores == 8
        assert config.n_fpus == 4
        assert config.n_l1_banks == 16
        assert config.n_l2_banks == 32
        assert config.tcdm_bytes == 64 * 1024
        assert config.l2_bytes == 512 * 1024
        assert config.l2_latency == 15

    def test_fpu_mapping_is_two_to_one(self):
        config = ClusterConfig()
        for fpu in range(4):
            sharers = config.cores_sharing_fpu(fpu)
            assert len(sharers) == 2
            assert all(config.fpu_of_core(c) == fpu for c in sharers)

    @pytest.mark.parametrize("kwargs", [
        {"n_cores": 0}, {"n_fpus": 0}, {"n_fpus": 9},
        {"n_l1_banks": 12}, {"n_l2_banks": 0}, {"l2_latency": 0},
    ])
    def test_rejects_invalid_topologies(self, kwargs):
        with pytest.raises(SimulationError):
            ClusterConfig(**kwargs)

    def test_with_returns_modified_copy(self):
        config = ClusterConfig()
        other = config.with_(l2_latency=20)
        assert other.l2_latency == 20 and config.l2_latency == 15

    def test_cache_key_changes_with_fields(self):
        assert (ClusterConfig().cache_key()
                != ClusterConfig(l2_latency=20).cache_key())


def _kernel_with_arrays(arrays, body_extra=()):
    builder = KernelBuilder("k", DType.INT32, 512)
    for name, length, space in arrays:
        builder.array(name, length, space=space)
    first = arrays[0][0]
    builder.parallel_for("i", 0, 4,
                         [Load(first, var("i"))] + list(body_extra))
    return builder.build()


class TestMemoryMap:
    def test_sequential_bump_allocation(self):
        kernel = _kernel_with_arrays([("A", 10, "l1"), ("B", 6, "l1")])
        memmap = MemoryMap(kernel, 16, 32, 64 * 1024, 512 * 1024)
        assert memmap.base_word("A") == 0
        assert memmap.base_word("B") == 10
        assert memmap.l1_words_used == 16

    def test_l2_arrays_allocate_separately(self):
        kernel = _kernel_with_arrays([("A", 8, "l1"), ("Z", 100, "l2")])
        memmap = MemoryMap(kernel, 16, 32, 64 * 1024, 512 * 1024)
        assert memmap.space("Z") == "l2"
        assert memmap.base_word("Z") == 0
        assert memmap.l2_words_used == 100

    def test_capacity_overflow_raises(self):
        kernel = _kernel_with_arrays([("A", 64, "l1")])
        with pytest.raises(LayoutError):
            MemoryMap(kernel, 16, 32, tcdm_bytes=128, l2_bytes=1024)

    def test_lock_words_are_allocated(self):
        kernel = _kernel_with_arrays(
            [("A", 10, "l1")],
            body_extra=[Critical([Compute(OpKind.ALU, 1)], name="sec")])
        memmap = MemoryMap(kernel, 16, 32, 64 * 1024, 512 * 1024)
        assert memmap.lock_bank("sec") == 10 % 16
        assert memmap.l1_words_used == 11

    def test_unknown_array_raises(self):
        kernel = _kernel_with_arrays([("A", 10, "l1")])
        memmap = MemoryMap(kernel, 16, 32, 64 * 1024, 512 * 1024)
        with pytest.raises(LayoutError):
            memmap.base_word("missing")

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.sampled_from([4, 8, 16, 32]))
    def test_bank_of_word_in_range(self, word, banks):
        assert 0 <= bank_of_word(word, banks) < banks
