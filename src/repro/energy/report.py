"""Pretty-printing helpers for energy models and breakdowns."""

from __future__ import annotations

from repro.energy.accounting import EnergyBreakdown
from repro.energy.model import EnergyModel


def format_model_table(model: EnergyModel) -> str:
    """Render the model the way paper Table I lays it out."""
    lines = ["Operating Region              Energy [fJ]",
             "-" * 42]
    current_group = None
    for group, region, value in model.as_rows():
        if group != current_group:
            lines.append(group)
            current_group = group
        lines.append(f"  {region:<26} {value:>10.0f}")
    return "\n".join(lines)


def format_breakdown(breakdown: EnergyBreakdown,
                     label: str = "") -> str:
    """Render a per-component energy breakdown with percentages."""
    total = breakdown.total or 1.0
    rows = [
        ("Processing elements", breakdown.pe),
        ("FPUs", breakdown.fpu),
        ("TCDM banks", breakdown.l1),
        ("L2 banks", breakdown.l2),
        ("Instruction cache", breakdown.icache),
        ("DMA", breakdown.dma),
        ("Other cluster logic", breakdown.other),
    ]
    header = f"Energy breakdown {label}".rstrip()
    lines = [header, "-" * max(42, len(header))]
    for name, value in rows:
        lines.append(f"  {name:<22} {value / 1e6:>12.3f} nJ "
                     f"({100.0 * value / total:5.1f}%)")
    lines.append(f"  {'TOTAL':<22} {breakdown.total / 1e6:>12.3f} nJ")
    return "\n".join(lines)
