"""Tests for the DMA extension (the paper's announced future work)."""

import pytest

from repro.dataset.custom import dma_tiled_stream
from repro.energy.accounting import compute_energy
from repro.energy.model import EnergyModel
from repro.errors import IRError
from repro.ir import KernelBuilder, Load, Store
from repro.ir.nodes import DmaCopy
from repro.ir.expr import var
from repro.ir.types import DType
from repro.isa.encoding import format_instr, parse_instr
from repro.isa.opcodes import OP_DMA
from repro.sim.engine import simulate
from repro.trace import TraceWriter
from repro.trace.analyser import analyse_trace


def _dma_kernel(words=32, teams_compute=16):
    b = KernelBuilder("dma_t", DType.INT32, 512)
    buf = b.array("buf", max(words, teams_compute))
    b.sequential([DmaCopy(words, "in")])
    i = var("i")
    b.parallel_for("i", 0, teams_compute, [
        Load(buf.name, i), b.op(1), Store(buf.name, i),
    ])
    b.sequential([DmaCopy(words, "out")])
    return b.build()


class TestDmaNode:
    def test_rejects_bad_args(self):
        with pytest.raises(IRError):
            DmaCopy(0)
        with pytest.raises(IRError):
            DmaCopy(4, "sideways")

    def test_encoding_roundtrip(self):
        assert format_instr(OP_DMA, 64) == "dma n=64"
        assert parse_instr("dma n=64") == (OP_DMA, 64)


class TestDmaSemantics:
    def test_transfers_counted(self):
        counters = simulate(_dma_kernel(words=32), 2)
        assert counters.dma_transfers == 64  # in + out

    def test_core_sleeps_during_transfer(self):
        kernel = _dma_kernel(words=200)
        counters = simulate(kernel, 1)
        # the master must spend at least the transfer time clock-gated
        assert counters.cores[0].cg_cycles >= 2 * 200

    def test_budget_invariant_holds(self):
        for team in (1, 3, 8):
            counters = simulate(_dma_kernel(), team)
            counters.validate()

    def test_single_channel_serialises(self):
        # issuing two transfers back-to-back takes at least their sum
        b = KernelBuilder("dma2", DType.INT32, 512)
        b.array("buf", 8)
        b.sequential([DmaCopy(100), DmaCopy(100)])
        b.parallel_for("i", 0, 4, [Load("buf", var("i"))])
        counters = simulate(b.build(), 1)
        assert counters.cycles >= 200

    def test_backend_equivalence(self):
        kernel = _dma_kernel()
        a = simulate(kernel, 4).as_dict()
        b = simulate(kernel, 4, backend="interp").as_dict()
        assert a == b


class TestDmaEnergy:
    def test_transfer_energy_charged(self):
        model = EnergyModel.paper_table1()
        counters = simulate(_dma_kernel(words=50), 2)
        breakdown = compute_energy(counters, model)
        floor = model.dma.transfer * 100  # 2 transfers of 50 words
        assert breakdown.dma >= floor

    def test_idle_cycles_reduced_by_busy_time(self):
        model = EnergyModel.paper_table1()
        counters = simulate(_dma_kernel(words=50), 2)
        expected_idle = counters.cycles - 100
        idle_part = (breakdown := compute_energy(counters, model)).dma \
            - model.dma.leakage * counters.cycles \
            - model.dma.transfer * 100
        assert idle_part == pytest.approx(model.dma.idle * expected_idle)


class TestDmaTrace:
    def test_trace_equivalence_with_dma(self):
        kernel = _dma_kernel()
        writer = TraceWriter()
        engine = simulate(kernel, 3, trace=writer)
        rebuilt = analyse_trace(writer.lines).to_counters()
        assert rebuilt.as_dict() == engine.as_dict()
        assert any("cluster/dma/trace" in line for line in writer.lines)


class TestDmaTiledKernel:
    def test_tiled_beats_direct_l2_on_energy(self):
        from repro.dataset.registry import get_kernel_spec
        from repro.sim.results import sweep_cores
        direct = get_kernel_spec("l2_stream").build(DType.INT32, 4096)
        tiled = dma_tiled_stream(DType.INT32, 4096)
        best_direct = min(r.total_energy_fj for r in sweep_cores(direct))
        best_tiled = min(r.total_energy_fj for r in sweep_cores(tiled))
        assert best_tiled < best_direct
