"""End-to-end pipeline benchmark: campaign scaling + batched inference.

Times (a) a cold labelling-campaign build at ``--jobs 1`` vs
``--jobs N`` (fresh cache directories, so both runs simulate
everything), (b) 10k-row forest/tree inference with the seed
per-row loops vs the vectorized implementations, (c) the
:mod:`repro.api` serving path — model-artifact load latency and
single-prediction latency for the tree and forest families — and
(d) the persistent scoring daemon: round-trip latency and rows/sec
over a Unix socket at 1/4/16 concurrent clients plus one-connection
batched throughput, and (e) the multi-model fleet daemon
(:mod:`repro.api.fleet`): the same single-row levels against the
event-loop transport with adaptive micro-batching, a two-model mixed
level, and the speedup over the unbatched daemon measured in the same
run (each level best-of-``LEVEL_REPEATS``), plus (f) the **pipelined
client** — sequential vs windowed in-flight single rows on one
connection, alternating rounds in the same time window — and (g)
**sharded serving** at 1/2/4 shard processes behind one unix
endpoint, counts interleaved per round — and (h) the **wire codec x
inference backend** matrix: json+reference, json+compiled and
binary+compiled variants of the one-connection batched daemon path
(plus single-row p50), alternating variants inside each measurement
round so the recorded ratios are paired — and (i) the **supervised
churn** leg: a ShardSupervisor-managed fleet hammered quiet and with
a shard SIGKILLed mid-flight in the same time window, recording the
throughput retained while the supervisor heals — then writes the
numbers to ``BENCH_pipeline.json`` so later PRs
can track the trajectory.  With ``--skip-build`` the previous file's
``cold_build`` section is carried over instead of dropped.

Run from the repo root as a single command::

    python benchmarks/bench_pipeline.py [--profile quick] [--jobs 4]
        [--rows 10000] [--output BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.dataset.build import build_dataset  # noqa: E402
from repro.ml.forest import RandomForestClassifier  # noqa: E402
from repro.ml.tree import DecisionTreeClassifier  # noqa: E402


def bench_cold_build(profile: str, jobs: int) -> dict:
    """Wall-clock of one cold campaign (fresh cache dir) at *jobs*."""
    cache_dir = tempfile.mkdtemp(prefix=f"bench_cache_j{jobs}_")
    try:
        start = time.perf_counter()
        dataset = build_dataset(profile, cache_dir=cache_dir, jobs=jobs)
        elapsed = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {"jobs": jobs, "seconds": round(elapsed, 3),
            "n_samples": len(dataset)}


def bench_inference(rows: int, seed: int = 0) -> dict:
    """Seed per-row loops vs vectorized predict on *rows* random rows."""
    rng = np.random.default_rng(seed)
    X_train = rng.standard_normal((600, 24))
    y_train = rng.integers(1, 9, size=600)
    X = rng.standard_normal((rows, 24))

    tree = DecisionTreeClassifier(max_depth=12, random_state=0)
    tree.fit(X_train, y_train)
    start = time.perf_counter()
    tree_rowwise = tree._predict_rowwise(X)
    tree_rowwise_s = time.perf_counter() - start
    start = time.perf_counter()
    tree_batched = tree.predict(X)
    tree_batched_s = time.perf_counter() - start
    if not np.array_equal(tree_rowwise, tree_batched):
        raise AssertionError("batched tree predictions diverge from the "
                             "row-wise reference")

    forest = RandomForestClassifier(n_estimators=30, max_depth=12,
                                    random_state=0)
    forest.fit(X_train, y_train)
    start = time.perf_counter()
    forest_loop = forest._predict_loop(X)
    forest_loop_s = time.perf_counter() - start
    start = time.perf_counter()
    forest_vec = forest.predict(X)
    forest_vec_s = time.perf_counter() - start
    if not np.array_equal(forest_loop, forest_vec):
        raise AssertionError("vectorized forest predictions diverge from "
                             "the per-row voting reference")

    return {
        "rows": rows,
        "tree": {"rowwise_seconds": round(tree_rowwise_s, 4),
                 "batched_seconds": round(tree_batched_s, 4),
                 "speedup": round(tree_rowwise_s / tree_batched_s, 2)},
        "forest": {"rowwise_seconds": round(forest_loop_s, 4),
                   "vectorized_seconds": round(forest_vec_s, 4),
                   "speedup": round(forest_loop_s / forest_vec_s, 2)},
    }


def bench_model_io(loads: int = 20, predictions: int = 500) -> dict:
    """Serving-path latency: artifact load and one-row predict.

    Trains each model family once on a small real campaign (four
    kernels, temp cache), saves the JSON artifact, then times
    ``Classifier.load`` and single-row ``predict`` — the two numbers a
    deployment actually waits on.
    """
    from repro.api import Classifier, ReproConfig
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    cache_dir = tempfile.mkdtemp(prefix="bench_model_io_")
    results: dict = {"loads": loads, "predictions": predictions}
    try:
        dataset = build_dataset("unit", specs=specs, cache_dir=cache_dir)
        for family, params in (("tree", {}),
                               ("forest", {"n_estimators": 30})):
            clf = Classifier(ReproConfig(profile="unit", model=family,
                                         model_params=params))
            clf.train(dataset)
            path = os.path.join(cache_dir, f"{family}.json")
            clf.save(path)

            start = time.perf_counter()
            for _ in range(loads):
                Classifier.load(path)
            load_ms = (time.perf_counter() - start) / loads * 1e3

            loaded = Classifier.load(path)
            row = dataset.matrix(loaded.feature_names_)[0]
            loaded.predict(row)  # warm-up
            start = time.perf_counter()
            for _ in range(predictions):
                loaded.predict(row)
            predict_us = ((time.perf_counter() - start)
                          / predictions * 1e6)

            results[family] = {
                "artifact_kb": round(os.path.getsize(path) / 1024, 1),
                "load_ms": round(load_ms, 3),
                "predict_us": round(predict_us, 1),
            }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return results


#: measurement repeats per concurrency level; the best run is recorded
#: (the box is shared, so single runs swing with neighbour load).
LEVEL_REPEATS = 2


def bench_daemon(concurrencies=(1, 4, 16), requests_per_client: int = 200,
                 batch_rows: int = 10_000) -> dict:
    """Daemon round-trip latency and throughput under concurrency.

    Starts one :class:`repro.api.ScoringDaemon` on a Unix socket (model
    loaded exactly once), then for each concurrency level runs N client
    threads each sending *requests_per_client* single-row requests over
    its own :class:`repro.api.ScoringClient` connection.  Records the
    round-trip latency distribution and aggregate rows/sec (best of
    :data:`LEVEL_REPEATS` runs), plus the one-connection batched
    throughput at *batch_rows* rows.
    """
    import threading

    from repro.api import (
        Classifier,
        ReproConfig,
        ScoringClient,
        ScoringDaemon,
    )
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_daemon_")
    results: dict = {"transport": "unix",
                     "requests_per_client": requests_per_client,
                     "levels": []}
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        clf = Classifier(ReproConfig(profile="unit")).train(dataset)
        X = dataset.matrix(clf.feature_names_)
        rows = [list(map(float, row)) for row in X]
        socket_path = os.path.join(workdir, "bench.sock")
        daemon = ScoringDaemon(clf, socket_path=socket_path,
                               workers=max(concurrencies))
        with daemon:
            # warm-up: one connection, a few requests
            with ScoringClient(socket_path=socket_path) as client:
                for row in rows[:4]:
                    client.predict(row)

            def run_level(n_clients: int) -> dict:
                latencies: list = []
                lock = threading.Lock()

                def worker() -> None:
                    local: list = []
                    with ScoringClient(socket_path=socket_path) as cl:
                        for i in range(requests_per_client):
                            row = rows[i % len(rows)]
                            start = time.perf_counter()
                            cl.predict(row)
                            local.append(time.perf_counter() - start)
                    with lock:
                        latencies.extend(local)

                threads = [threading.Thread(target=worker)
                           for _ in range(n_clients)]
                wall_start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - wall_start
                lat_us = np.sort(np.asarray(latencies)) * 1e6
                total = n_clients * requests_per_client
                return {
                    "clients": n_clients,
                    "requests": total,
                    "round_trip_us_p50": round(
                        float(np.percentile(lat_us, 50)), 1),
                    "round_trip_us_p99": round(
                        float(np.percentile(lat_us, 99)), 1),
                    "rows_per_sec": round(total / wall, 1),
                }

            for n_clients in concurrencies:
                results["levels"].append(max(
                    (run_level(n_clients)
                     for _ in range(LEVEL_REPEATS)),
                    key=lambda level: level["rows_per_sec"]))

            # batched: one connection, one request, many rows
            reps = max(1, -(-batch_rows // len(rows)))
            big = (rows * reps)[:batch_rows]
            with ScoringClient(socket_path=socket_path) as client:
                client.predict_batch(big[:64])  # warm-up
                start = time.perf_counter()
                preds = client.predict_batch(big)
                batch_s = time.perf_counter() - start
            if preds != [int(p) for p in clf.predict_batch(
                    np.asarray(big))]:
                raise AssertionError("daemon batch predictions diverge "
                                     "from the local classifier")
            results["batched"] = {
                "rows": len(big),
                "seconds": round(batch_s, 4),
                "rows_per_sec": round(len(big) / batch_s, 1),
            }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return results


def bench_fleet(concurrencies=(1, 4, 16), requests_per_client: int = 200,
                batch_rows: int = 10_000) -> dict:
    """Fleet-daemon throughput: micro-batched single rows, two models.

    Serves a ``tree:static-all`` default plus a ``forest:static-agg``
    variant from one event-loop fleet daemon and measures (a) per-level
    single-row round trips against the default model at 1/4/16
    concurrent clients, (b) a mixed level routing half the clients to
    the forest via the ``model`` field, (c) one-connection batched
    throughput, and (d) the headline acceptance number: an
    **interleaved paired comparison** against an unbatched thread-pool
    daemon serving the same model at max concurrency — alternating
    measurement rounds against both daemons in the same time window,
    so the recorded speedup is robust to the load drift of a shared
    box.  Every wire prediction is asserted byte-identical to the
    matching local ``predict_batch``.
    """
    import threading

    from repro.api import (
        Classifier,
        MicroBatcher,
        ModelFleet,
        ModelPool,
        ReproConfig,
        ScoringClient,
        ScoringDaemon,
    )
    from repro.dataset.registry import get_kernel_spec
    from repro.errors import FleetError

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_fleet_")
    forest_spec = "forest:static-agg:unit"
    results: dict = {"transport": "unix",
                     "requests_per_client": requests_per_client,
                     "levels": []}
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        tree = Classifier(ReproConfig(profile="unit")).train(dataset)
        forest = Classifier(ReproConfig(
            profile="unit", model="forest",
            model_params={"n_estimators": 10},
            feature_set="static-agg")).train(dataset)

        def loader(key):
            if key.spec == forest_spec:
                return forest
            raise FleetError(f"unexpected lazy load of {key.spec!r}")

        pool = ModelPool(loader=loader, default_tag="unit")
        pool.add(forest, key=forest_spec)
        fleet = ModelFleet(pool, MicroBatcher(max_batch=64,
                                              max_delay_us=1000),
                           default=tree)

        rows_of = {}
        expected = {}
        for spec, clf in ((None, tree), (forest_spec, forest)):
            X = dataset.matrix(clf.feature_names_)
            rows_of[spec] = [list(map(float, row)) for row in X]
            expected[spec] = [int(p) for p in clf.predict_batch(X)]

        socket_path = os.path.join(workdir, "fleet.sock")
        daemon = ScoringDaemon(fleet=fleet, socket_path=socket_path,
                               workers=8)

        def hammer(n_clients, model_of_slot, path=None) -> tuple:
            """N single-row clients; returns (rows/sec, p50us, p99us)."""
            endpoint = path if path is not None else socket_path
            latencies: list = []
            errors: list = []
            lock = threading.Lock()

            def worker(slot: int) -> None:
                spec = model_of_slot(slot)
                rows, want = rows_of[spec], expected[spec]
                local: list = []
                try:
                    with ScoringClient(socket_path=endpoint) as client:
                        for i in range(requests_per_client):
                            row = rows[i % len(rows)]
                            start = time.perf_counter()
                            got = client.predict(row, model=spec)
                            local.append(time.perf_counter() - start)
                            if got != want[i % len(want)]:
                                raise AssertionError(
                                    f"wire prediction diverged ({spec})")
                except Exception as exc:
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    latencies.extend(local)

            threads = [threading.Thread(target=worker, args=(slot,))
                       for slot in range(n_clients)]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start
            if errors:
                # a diverged prediction or transport failure must fail
                # the benchmark loudly, not inflate its numbers
                raise errors[0]
            lat_us = np.sort(np.asarray(latencies)) * 1e6
            total = n_clients * requests_per_client
            return (round(total / wall, 1),
                    round(float(np.percentile(lat_us, 50)), 1),
                    round(float(np.percentile(lat_us, 99)), 1))

        with daemon:
            with ScoringClient(socket_path=socket_path) as client:
                for row in rows_of[None][:4]:
                    client.predict(row)  # warm-up

            for n_clients in concurrencies:
                rps, p50, p99 = max(
                    (hammer(n_clients, lambda slot: None)
                     for _ in range(LEVEL_REPEATS)),
                    key=lambda run: run[0])
                results["levels"].append({
                    "clients": n_clients,
                    "requests": n_clients * requests_per_client,
                    "round_trip_us_p50": p50,
                    "round_trip_us_p99": p99,
                    "rows_per_sec": rps,
                })

            mixed = max(concurrencies)
            rps, p50, p99 = max(
                (hammer(mixed, lambda slot: None if slot % 2 == 0
                        else forest_spec)
                 for _ in range(LEVEL_REPEATS)),
                key=lambda run: run[0])
            results["two_models"] = {
                "clients": mixed,
                "round_trip_us_p50": p50,
                "round_trip_us_p99": p99,
                "rows_per_sec": rps,
            }

            rows = rows_of[None]
            reps = max(1, -(-batch_rows // len(rows)))
            big = (rows * reps)[:batch_rows]
            with ScoringClient(socket_path=socket_path) as client:
                client.predict_batch(big[:64])  # warm-up
                start = time.perf_counter()
                preds = client.predict_batch(big)
                batch_s = time.perf_counter() - start
            if preds != [int(p) for p in tree.predict_batch(
                    np.asarray(big))]:
                raise AssertionError("fleet batch predictions diverge "
                                     "from the local classifier")
            results["batched"] = {
                "rows": len(big),
                "seconds": round(batch_s, 4),
                "rows_per_sec": round(len(big) / batch_s, 1),
            }

            # -- the acceptance number: paired, interleaved ------------
            plain_path = os.path.join(workdir, "plain.sock")
            plain = ScoringDaemon(tree, socket_path=plain_path,
                                  workers=max(concurrencies))
            mixed = max(concurrencies)
            with plain:
                default_model = lambda slot: None  # noqa: E731
                hammer(mixed, default_model, plain_path)  # warm-up
                rounds = 5
                unbatched_runs, fleet_runs = [], []
                for _ in range(rounds):
                    unbatched_runs.append(
                        hammer(mixed, default_model, plain_path)[0])
                    fleet_runs.append(
                        hammer(mixed, default_model, socket_path)[0])
                unbatched = sorted(unbatched_runs)[rounds // 2]
                batched_rps = sorted(fleet_runs)[rounds // 2]  # medians
                results["paired_single_row"] = {
                    "clients": mixed,
                    "unbatched_rows_per_sec": unbatched,
                    "fleet_rows_per_sec": batched_rps,
                    "speedup": round(batched_rps / unbatched, 2),
                    "rounds": rounds,
                }
        loop_stats = daemon.stats().get("loop", {})
        results["coalescing"] = {
            "mean_fast_batch": loop_stats.get("mean_fast_batch"),
            "largest_fast_batch": loop_stats.get("largest_fast_batch"),
            "max_batch": loop_stats.get("max_batch"),
        }
        fleet.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return results


def bench_pipelined(requests: int = 2000, window: int = 64,
                    rounds: int = 5) -> dict:
    """Pipelined vs sequential single-row client, interleaved paired.

    One event-loop fleet daemon, one client connection per mode; the
    two modes alternate measurement rounds in the same time window
    (the box is shared, so cross-section ratios drift) and the
    recorded speedup is the ratio of medians.  The pipelined client
    keeps ``window`` requests in flight on the one connection, which
    is what feeds the daemon's micro-batch coalescing from a single
    client; the acceptance bar is >= 1.5x.  Every wire prediction is
    asserted identical to the local classifier.
    """
    from repro.api import (
        Classifier,
        MicroBatcher,
        ModelFleet,
        ReproConfig,
        ScoringClient,
        ScoringDaemon,
    )
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_pipelined_")
    fleet = None
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        clf = Classifier(ReproConfig(profile="unit")).train(dataset)
        X = dataset.matrix(clf.feature_names_)
        base_rows = [list(map(float, row)) for row in X]
        reps = max(1, -(-requests // len(base_rows)))
        rows = (base_rows * reps)[:requests]
        expected = [int(p) for p in clf.predict_batch(np.asarray(rows))]

        socket_path = os.path.join(workdir, "pipe.sock")
        fleet = ModelFleet(batcher=MicroBatcher(max_batch=window,
                                                max_delay_us=1000),
                           default=clf)
        daemon = ScoringDaemon(fleet=fleet, socket_path=socket_path,
                               workers=4)

        def run_sequential(client) -> float:
            start = time.perf_counter()
            got = [client.predict(row) for row in rows]
            wall = time.perf_counter() - start
            if got != expected:
                raise AssertionError("sequential predictions diverged")
            return round(len(rows) / wall, 1)

        def run_pipelined(client) -> float:
            start = time.perf_counter()
            got = client.predict_pipelined(rows, window=window)
            wall = time.perf_counter() - start
            if got != expected:
                raise AssertionError("pipelined predictions diverged")
            return round(len(rows) / wall, 1)

        with daemon:
            with ScoringClient(socket_path=socket_path) as client:
                client.predict_pipelined(rows[:64], window=window)
                sequential_runs, pipelined_runs = [], []
                for _ in range(rounds):
                    sequential_runs.append(run_sequential(client))
                    pipelined_runs.append(run_pipelined(client))
        sequential = sorted(sequential_runs)[rounds // 2]
        pipelined = sorted(pipelined_runs)[rounds // 2]
        return {
            "transport": "unix",
            "requests": requests,
            "window": window,
            "rounds": rounds,
            "sequential_rows_per_sec": sequential,
            "pipelined_rows_per_sec": pipelined,
            "speedup": round(pipelined / sequential, 2),
        }
    finally:
        if fleet is not None:
            fleet.close()  # stop the batcher thread even on failure
        shutil.rmtree(workdir, ignore_errors=True)


def bench_shards(shard_counts=(1, 2, 4), clients: int = 4,
                 requests_per_client: int = 500,
                 rounds: int = 3) -> dict:
    """Sharded serving at 1/2/4 shards, measured on the same basis.

    Saves one trained artifact, then — per measurement round —
    cycles through the shard counts, standing up a fresh
    :class:`repro.api.ShardManager` (fleet daemons behind a unix
    shard registry, exactly what ``repro serve --shards N`` deploys)
    and hammering it with *clients* pipelined client connections.
    Interleaving the counts inside each round keeps the comparison
    paired on a shared box; medians per count are recorded.
    """
    import functools
    import threading

    from repro.api import (
        Classifier,
        ReproConfig,
        ScoringClient,
        ShardManager,
    )
    from repro.api.shard import fleet_factory
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_shards_")
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        clf = Classifier(ReproConfig(profile="unit")).train(dataset)
        artifact = os.path.join(workdir, "model.json")
        clf.save(artifact)
        X = dataset.matrix(clf.feature_names_)
        base_rows = [list(map(float, row)) for row in X]
        reps = max(1, -(-requests_per_client // len(base_rows)))
        rows = (base_rows * reps)[:requests_per_client]
        expected = [int(p) for p in clf.predict_batch(np.asarray(rows))]
        factory = functools.partial(fleet_factory, model_path=artifact,
                                    profile="unit")

        def hammer(base_path: str) -> float:
            errors: list = []

            def worker() -> None:
                try:
                    with ScoringClient(socket_path=base_path) as cl:
                        got = cl.predict_pipelined(rows, window=32)
                    if got != expected:
                        raise AssertionError("sharded predictions "
                                             "diverged")
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker)
                       for _ in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
            if errors:
                raise errors[0]
            return round(clients * len(rows) / wall, 1)

        runs = {count: [] for count in shard_counts}
        for round_index in range(rounds):
            for count in shard_counts:
                base = os.path.join(workdir,
                                    f"s{count}_r{round_index}.sock")
                with ShardManager(factory, shards=count,
                                  socket_path=base, workers=4):
                    hammer(base)  # warm-up (children page in numpy)
                    runs[count].append(hammer(base))
        levels = []
        baseline = None
        for count in shard_counts:
            rps = sorted(runs[count])[rounds // 2]
            if baseline is None:
                baseline = rps
            levels.append({
                "shards": count,
                "clients": clients,
                "requests": clients * len(rows),
                "rows_per_sec": rps,
                "speedup_vs_1_shard": round(rps / baseline, 2),
            })
        return {
            "transport": "unix",
            "rounds": rounds,
            "pipeline_window": 32,
            "levels": levels,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def bench_supervised_churn(shards: int = 2, clients: int = 4,
                           requests_per_client: int = 500,
                           rounds: int = 3) -> dict:
    """Supervised fleet throughput under kill churn, interleaved paired.

    One :class:`repro.api.ShardSupervisor`-managed *shards*-shard fleet
    behind a unix registry.  Each round measures the same pipelined
    hammer twice in the same time window: once quiet, once with a
    shard SIGKILLed mid-flight — the supervisor respawns the victim
    and refreshes the registry while the clients reconnect through it
    (``reconnect_retries``).  Zero failed requests are tolerated and
    every prediction is asserted byte-identical to the local
    classifier; the recorded number is the median throughput retained
    under churn relative to the paired quiet runs.
    """
    import functools
    import signal
    import threading

    from repro.api import (
        Classifier,
        ReproConfig,
        ScoringClient,
        ShardManager,
        ShardSupervisor,
    )
    from repro.api.shard import fleet_factory, read_registry
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_churn_")
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        clf = Classifier(ReproConfig(profile="unit")).train(dataset)
        artifact = os.path.join(workdir, "model.json")
        clf.save(artifact)
        X = dataset.matrix(clf.feature_names_)
        base_rows = [list(map(float, row)) for row in X]
        reps = max(1, -(-requests_per_client // len(base_rows)))
        rows = (base_rows * reps)[:requests_per_client]
        expected = [int(p) for p in clf.predict_batch(np.asarray(rows))]
        factory = functools.partial(fleet_factory, model_path=artifact,
                                    profile="unit")
        base = os.path.join(workdir, "churn.sock")

        def hammer() -> float:
            errors: list = []

            def worker() -> None:
                try:
                    with ScoringClient(socket_path=base,
                                       reconnect_retries=16) as cl:
                        got = cl.predict_pipelined(rows, window=32)
                    if got != expected:
                        raise AssertionError("supervised-churn "
                                             "predictions diverged")
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=worker)
                       for _ in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - start
            if errors:
                # a dropped request under churn must fail the benchmark
                # loudly, not quietly deflate the retention number
                raise errors[0]
            return round(clients * len(rows) / wall, 1)

        quiet_runs, churn_runs = [], []
        kills = 0
        with ShardManager(factory, shards=shards, socket_path=base,
                          workers=4) as manager, \
                ShardSupervisor(manager, interval=0.2) as supervisor:
            hammer()  # warm-up (children page in numpy)
            for round_index in range(rounds):
                quiet_runs.append(hammer())
                victim_pid = manager.pids[round_index % shards]
                killer = threading.Timer(
                    0.05, os.kill, args=(victim_pid, signal.SIGKILL))
                killer.start()
                churn_runs.append(hammer())
                killer.join()
                kills += 1
                # wait for the heal before the next paired quiet run,
                # so each round starts from a full fleet
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    registry = read_registry(base) or []
                    pids = {row["pid"] for row in registry}
                    if len(pids) == shards and victim_pid not in pids:
                        break
                    time.sleep(0.05)
                else:
                    raise AssertionError(
                        "supervisor did not respawn the killed shard "
                        "within 30s")
            heals = sum(1 for event in supervisor.events
                        if event["event"] == "respawn")
        if heals != kills:
            raise AssertionError(
                f"expected {kills} respawn events, saw {heals}")
        quiet = sorted(quiet_runs)[rounds // 2]
        churn = sorted(churn_runs)[rounds // 2]
        return {
            "transport": "unix",
            "shards": shards,
            "clients": clients,
            "requests": clients * len(rows),
            "rounds": rounds,
            "pipeline_window": 32,
            "kills": kills,
            "heals": heals,
            "quiet_rows_per_sec": quiet,
            "churn_rows_per_sec": churn,
            "throughput_retention": round(churn / quiet, 2),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def bench_codec_backend(batch_rows: int = 10_000, rounds: int = 5,
                        single_requests: int = 300) -> dict:
    """Wire codec x inference backend matrix, interleaved paired.

    Serves the same saved tree artifact from two daemons — one loaded
    with the node-walk ``reference`` backend, one with the flattened
    ``compiled`` decision tables — and measures the one-connection
    batched path plus single-row round trips for three variants:
    json+reference (the PR 5 wire), json+compiled, and
    binary+compiled (the negotiated length-prefixed codec).  All
    variants run inside each measurement round, so the recorded
    ratios are paired on a shared box; medians per variant are
    recorded.  Rows are pre-rounded to the f32 grid the binary codec
    transports and every wire prediction is asserted identical to the
    reference classifier — the speedup must not come from answering a
    different question.
    """
    from repro.api import (
        BACKEND_COMPILED,
        BACKEND_REFERENCE,
        CODEC_BINARY,
        CODEC_JSON,
        Classifier,
        ReproConfig,
        ScoringClient,
        ScoringDaemon,
    )
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_codec_")
    variants = ((CODEC_JSON, BACKEND_REFERENCE),
                (CODEC_JSON, BACKEND_COMPILED),
                (CODEC_BINARY, BACKEND_COMPILED))
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        trained = Classifier(ReproConfig(profile="unit")).train(dataset)
        artifact = os.path.join(workdir, "model.json")
        trained.save(artifact)
        backends = {
            BACKEND_REFERENCE: Classifier.load(
                artifact, backend=BACKEND_REFERENCE),
            BACKEND_COMPILED: Classifier.load(artifact),
        }
        X = dataset.matrix(trained.feature_names_)
        # round to the f32 grid the binary codec transports, so every
        # variant scores bit-identical inputs
        X = X.astype(np.float32).astype(np.float64)
        reps = max(1, -(-batch_rows // len(X)))
        big = np.tile(X, (reps, 1))[:batch_rows]
        expected = [int(p) for p in
                    backends[BACKEND_REFERENCE].predict_batch(big)]
        if expected != [int(p) for p in
                        backends[BACKEND_COMPILED].predict_batch(big)]:
            raise AssertionError("compiled backend diverges locally")

        sockets = {backend: os.path.join(workdir, f"{backend}.sock")
                   for backend in backends}
        daemons = [ScoringDaemon(clf, socket_path=sockets[backend],
                                 workers=4)
                   for backend, clf in backends.items()]

        def run_batch(codec: str, backend: str) -> float:
            with ScoringClient(socket_path=sockets[backend],
                               codec=codec) as client:
                if client.codec != codec:
                    raise AssertionError(
                        f"negotiated {client.codec!r}, wanted {codec!r}")
                client.predict_batch(big[:64])  # warm-up
                start = time.perf_counter()
                got = client.predict_batch(big)
                wall = time.perf_counter() - start
            if got != expected:
                raise AssertionError(
                    f"{codec}+{backend} batch predictions diverged")
            return round(len(big) / wall, 1)

        def run_single(codec: str, backend: str) -> float:
            latencies = []
            with ScoringClient(socket_path=sockets[backend],
                               codec=codec) as client:
                client.predict(list(map(float, X[0])))  # warm-up
                for i in range(single_requests):
                    row = list(map(float, X[i % len(X)]))
                    start = time.perf_counter()
                    got = client.predict(row)
                    latencies.append(time.perf_counter() - start)
                    if got != expected[i % len(X)]:
                        raise AssertionError(
                            f"{codec}+{backend} single-row diverged")
            lat_us = np.asarray(latencies) * 1e6
            return round(float(np.percentile(lat_us, 50)), 1)

        batch_runs = {variant: [] for variant in variants}
        single_runs = {variant: [] for variant in variants}
        with daemons[0], daemons[1]:
            run_batch(*variants[0])  # page everything in once
            for _ in range(rounds):
                for variant in variants:
                    batch_runs[variant].append(run_batch(*variant))
                for variant in variants:
                    single_runs[variant].append(run_single(*variant))

        levels = []
        baseline = None
        for codec, backend in variants:
            rps = sorted(batch_runs[(codec, backend)])[rounds // 2]
            p50 = sorted(single_runs[(codec, backend)])[rounds // 2]
            if baseline is None:
                baseline = rps
            levels.append({
                "codec": codec,
                "backend": backend,
                "batched_rows_per_sec": rps,
                "single_round_trip_us_p50": p50,
                "speedup_vs_json_reference": round(rps / baseline, 2),
            })
        return {
            "transport": "unix",
            "batch_rows": len(big),
            "rounds": rounds,
            "single_requests": single_requests,
            "variants": levels,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def bench_stream_codec(requests: int = 4000, window: int = 64,
                       rounds: int = 5,
                       batch_rows: int = 10_000) -> dict:
    """Pipelined codec shootout on one fleet daemon, interleaved paired.

    The binary-v2 acceptance bench: json, binary-v1 and binary-v2
    clients pipeline the same single-row workload (``window`` in
    flight) against one event-loop fleet daemon, alternating inside
    each measurement round so the ratios are paired on a shared box.
    binary-v2 flushes its window as packed multi-row stream frames the
    server scores without decoding to Python floats; v1 and json send
    one frame per row.  The batched verb is measured for both binary
    codecs too — the streaming path must not tax the bulk path.
    Medians per codec are recorded, and every wire prediction is
    asserted identical to the local classifier (rows are pre-rounded
    to the f32 grid, so all codecs score bit-identical inputs).
    The acceptance bar is pipelined binary-v2 >= 2x pipelined json.
    """
    from repro.api import (
        CODEC_BINARY,
        CODEC_BINARY_V2,
        CODEC_JSON,
        Classifier,
        MicroBatcher,
        ModelFleet,
        ReproConfig,
        ScoringClient,
        ScoringDaemon,
    )
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_stream_")
    fleet = None
    codecs = (CODEC_JSON, CODEC_BINARY, CODEC_BINARY_V2)
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        clf = Classifier(ReproConfig(profile="unit")).train(dataset)
        X = dataset.matrix(clf.feature_names_)
        # the f32 grid the binary codecs transport: all three variants
        # must score bit-identical inputs
        X = X.astype(np.float32).astype(np.float64)
        reps = max(1, -(-requests // len(X)))
        rows = np.tile(X, (reps, 1))[:requests]
        reps = max(1, -(-batch_rows // len(X)))
        big = np.tile(X, (reps, 1))[:batch_rows]
        expected_rows = [int(p) for p in clf.predict_batch(rows)]
        expected_big = [int(p) for p in clf.predict_batch(big)]

        socket_path = os.path.join(workdir, "stream.sock")
        fleet = ModelFleet(batcher=MicroBatcher(max_batch=window,
                                                max_delay_us=1000),
                           default=clf)
        daemon = ScoringDaemon(fleet=fleet, socket_path=socket_path,
                               workers=4)

        def run_pipelined(codec: str) -> float:
            with ScoringClient(socket_path=socket_path,
                               codec=codec) as client:
                if client.codec != codec:
                    raise AssertionError(
                        f"negotiated {client.codec!r}, wanted {codec!r}")
                client.predict_pipelined(rows[:64], window=window)
                start = time.perf_counter()
                got = client.predict_pipelined(rows, window=window)
                wall = time.perf_counter() - start
            if got != expected_rows:
                raise AssertionError(
                    f"{codec} pipelined predictions diverged")
            return round(len(rows) / wall, 1)

        def run_batched(codec: str) -> float:
            with ScoringClient(socket_path=socket_path,
                               codec=codec) as client:
                client.predict_batch(big[:64])  # warm-up
                start = time.perf_counter()
                got = client.predict_batch(big)
                wall = time.perf_counter() - start
            if got != expected_big:
                raise AssertionError(
                    f"{codec} batched predictions diverged")
            return round(len(big) / wall, 1)

        pipe_runs: dict = {codec: [] for codec in codecs}
        batch_runs: dict = {codec: [] for codec in codecs[1:]}
        with daemon:
            run_pipelined(CODEC_JSON)  # page everything in once
            for _ in range(rounds):
                for codec in codecs:
                    pipe_runs[codec].append(run_pipelined(codec))
                for codec in batch_runs:
                    batch_runs[codec].append(run_batched(codec))

        pipelined = {codec: sorted(runs)[rounds // 2]
                     for codec, runs in pipe_runs.items()}
        batched = {codec: sorted(runs)[rounds // 2]
                   for codec, runs in batch_runs.items()}
        return {
            "transport": "unix",
            "requests": requests,
            "window": window,
            "rounds": rounds,
            "batch_rows": len(big),
            "pipelined_rows_per_sec": pipelined,
            "batched_rows_per_sec": batched,
            "stream_speedup_vs_json": round(
                pipelined[CODEC_BINARY_V2] / pipelined[CODEC_JSON], 2),
            "stream_speedup_vs_v1": round(
                pipelined[CODEC_BINARY_V2] / pipelined[CODEC_BINARY],
                2),
            "batched_v2_vs_v1": round(
                batched[CODEC_BINARY_V2] / batched[CODEC_BINARY], 2),
        }
    finally:
        if fleet is not None:
            fleet.close()
        shutil.rmtree(workdir, ignore_errors=True)


def bench_obs_overhead(batch_rows: int = 20_000, rounds: int = 21,
                       batch_reps: int = 3, single_reps: int = 100,
                       e2e_rounds: int = 3,
                       single_requests: int = 200) -> dict:
    """Telemetry cost: metrics-on vs metrics-off, measured in two layers.

    **Dispatch layer (the gated numbers).**  Every instrumented call
    site lives inside :class:`~repro.api.transport.RequestEngine` —
    the socket accept/read/write code is byte-for-byte identical in
    both variants — so the telemetry delta is measured where it
    exists: two engines (one telemetry on, one built with
    ``metrics=False``) *sharing one loaded classifier object* answer
    the same pre-framed binary requests on one thread, in ABBA order
    (on, off, off, on) per round so drift and bursts hit both legs,
    with the median across rounds as the figure.  Sharing the
    classifier and the thread is load-bearing: two separately loaded
    daemon instances in one process differ by ~10% on the batched
    path for the lifetime of the pair (heap/thread-placement luck —
    an A/A run with telemetry off in *both* daemons shows the same
    gap), which no amount of same-pair sampling removes and which
    would drown a 3% budget.  ``batched_overhead_pct`` from this
    layer is the number CI gates at 3%.

    **End-to-end layer (context).**  One daemon pair over real unix
    sockets reports absolute levels — batched rows/s and single-row
    round-trip p50 per variant — plus the paired single-trip
    overhead, which is dominated by the fixed few-µs per-request cost
    against a ~50µs round trip and is stable end to end.
    """
    from repro.api import (
        CODEC_BINARY,
        Classifier,
        ReproConfig,
        RequestEngine,
        ScoringClient,
        ScoringDaemon,
        WireSession,
    )
    from repro.dataset.registry import get_kernel_spec

    specs = [get_kernel_spec(name)
             for name in ("gemm", "atax", "fir", "stream_triad")]
    workdir = tempfile.mkdtemp(prefix="bench_obs_")
    variants = ("metrics_on", "metrics_off")
    try:
        dataset = build_dataset("unit", specs=specs,
                                cache_dir=os.path.join(workdir, "sim"))
        trained = Classifier(ReproConfig(profile="unit")).train(dataset)
        artifact = os.path.join(workdir, "model.json")
        trained.save(artifact)
        X = dataset.matrix(trained.feature_names_)
        X = X.astype(np.float32).astype(np.float64)
        reps = max(1, -(-batch_rows // len(X)))
        big = np.tile(X, (reps, 1))[:batch_rows]
        expected = [int(p) for p in trained.predict_batch(big)]

        # -- dispatch layer: shared classifier, one thread, ABBA ------
        shared = Classifier.load(artifact)

        def make_engine(variant: str):
            engine = RequestEngine(
                shared,
                metrics=(None if variant == "metrics_on" else False))
            wire = WireSession()
            wire.push(json.dumps(
                {"cmd": "hello",
                 "codecs": [CODEC_BINARY]}).encode() + b"\n")
            engine.respond(wire.next_frame(), wire)
            if wire.codec.name != CODEC_BINARY:
                raise AssertionError(
                    f"negotiated {wire.codec.name!r}, wanted binary")
            return engine, wire

        engines = {variant: make_engine(variant)
                   for variant in variants}
        codec = engines[variants[0]][1].codec
        batch_framed = codec.encode_request(
            {"id": 1, "rows": np.ascontiguousarray(big, dtype="<f4")})
        single_framed = codec.encode_request(
            {"id": 1, "features": [float(v) for v in X[0]]})

        def leg_ns(variant: str, framed: bytes, leg_reps: int) -> int:
            engine, wire = engines[variant]
            total = 0
            for _ in range(leg_reps):
                wire.push(framed)
                raw = wire.next_frame()
                start = time.perf_counter_ns()
                response = engine.respond(raw, wire)
                total += time.perf_counter_ns() - start
                if response is None:
                    raise AssertionError(f"{variant} dropped a frame")
            return total

        def dispatch_pct(framed: bytes, leg_reps: int):
            for variant in variants:
                leg_ns(variant, framed, 2 * leg_reps)  # warm-up
            ratios = []
            base_ns = []
            abba = (variants[0], variants[1],
                    variants[1], variants[0])
            for _ in range(rounds):
                legs = {variant: 0 for variant in variants}
                for variant in abba:
                    legs[variant] += leg_ns(variant, framed, leg_reps)
                on_leg, off_leg = (legs[variants[0]],
                                   legs[variants[1]])
                ratios.append((on_leg - off_leg) / off_leg * 100.0)
                base_ns.append(off_leg / (2 * leg_reps))
            ratios.sort()
            base_ns.sort()
            return (round(ratios[rounds // 2], 2),
                    base_ns[rounds // 2])

        batched_pct, batched_base = dispatch_pct(batch_framed,
                                                 batch_reps)
        single_pct, single_base = dispatch_pct(single_framed,
                                               single_reps)
        for _, wire in engines.values():
            if wire.fatal:
                raise AssertionError("wire session went fatal")
        dispatch = {
            "rounds": rounds,
            "batch_reps_per_leg": batch_reps,
            "single_reps_per_leg": single_reps,
            "batched_overhead_pct": batched_pct,
            "batched_base_ms": round(batched_base / 1e6, 3),
            "single_overhead_pct": single_pct,
            "single_base_us": round(single_base / 1e3, 1),
        }

        # -- end-to-end layer: daemon pair over unix sockets ----------
        sockets = {variant: os.path.join(workdir, f"{variant}.sock")
                   for variant in variants}
        daemons = [
            ScoringDaemon(Classifier.load(artifact),
                          socket_path=sockets[variant], workers=4,
                          metrics=(variant == "metrics_on"))
            for variant in variants
        ]

        def run_batch(client, variant: str) -> float:
            start = time.perf_counter()
            got = client.predict_batch(big)
            wall = time.perf_counter() - start
            if got != expected:
                raise AssertionError(f"{variant} batch diverged")
            return wall

        def run_single(client, variant: str) -> float:
            latencies = []
            for i in range(single_requests):
                row = list(map(float, X[i % len(X)]))
                start = time.perf_counter()
                got = client.predict(row)
                latencies.append(time.perf_counter() - start)
                if got != expected[i % len(X)]:
                    raise AssertionError(
                        f"{variant} single-row diverged")
            lat_us = np.asarray(latencies) * 1e6
            return round(float(np.percentile(lat_us, 50)), 1)

        batch_runs = {variant: [] for variant in variants}
        single_runs = {variant: [] for variant in variants}
        single_ratios = []
        abba = (variants[0], variants[1], variants[1], variants[0])
        with daemons[0], daemons[1]:
            clients = {}
            try:
                for variant in variants:
                    client = ScoringClient(socket_path=sockets[variant],
                                           codec=CODEC_BINARY)
                    if client.codec != CODEC_BINARY:
                        raise AssertionError(
                            f"negotiated {client.codec!r}, "
                            f"wanted binary")
                    clients[variant] = client
                for _ in range(3):  # page both variants in
                    for variant in variants:
                        run_batch(clients[variant], variant)
                        clients[variant].predict(
                            list(map(float, X[0])))
                for _ in range(e2e_rounds):
                    for variant in abba:
                        batch_runs[variant].append(
                            run_batch(clients[variant], variant))
                    legs = {variant: 0.0 for variant in variants}
                    for variant in abba:
                        p50 = run_single(clients[variant], variant)
                        legs[variant] += p50
                        single_runs[variant].append(p50)
                    single_ratios.append(
                        (legs[variants[0]] - legs[variants[1]])
                        / legs[variants[1]] * 100.0)
            finally:
                for client in clients.values():
                    client.close()

        levels = {}
        for variant in variants:
            levels[variant] = {
                "batched_rows_per_sec":
                    round(len(big) / min(batch_runs[variant]), 1),
                "single_round_trip_us_p50": min(single_runs[variant]),
            }
        single_ratios.sort()
        e2e_single_pct = round(single_ratios[e2e_rounds // 2], 2)
        return {
            "transport": "unix",
            "codec": "binary-v1",
            "backend": "compiled",
            "batch_rows": len(big),
            "single_requests": single_requests,
            "dispatch": dispatch,
            "metrics_on": levels["metrics_on"],
            "metrics_off": levels["metrics_off"],
            "batched_overhead_pct": batched_pct,
            "single_round_trip_overhead_pct": e2e_single_pct,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _run_stream_leg(results: dict, floor: float) -> int:
    """Run the stream-codec leg into *results*; 0 when over the bar."""
    print("stream codec shootout, json vs binary-v1 vs binary-v2 "
          "(interleaved paired) ...", flush=True)
    results["stream_codec"] = bench_stream_codec()
    stream = results["stream_codec"]
    for codec, rps in stream["pipelined_rows_per_sec"].items():
        print(f"  {codec:>9} pipelined: {rps} rows/s")
    print(f"  binary-v2 vs json {stream['stream_speedup_vs_json']}x, "
          f"vs binary-v1 {stream['stream_speedup_vs_v1']}x")
    print(f"  batched: v1 "
          f"{stream['batched_rows_per_sec']['binary-v1']} rows/s, v2 "
          f"{stream['batched_rows_per_sec']['binary-v2']} rows/s "
          f"({stream['batched_v2_vs_v1']}x)")
    status = 0
    if stream["stream_speedup_vs_json"] < floor:
        print(f"  FAIL: pipelined binary-v2 is only "
              f"{stream['stream_speedup_vs_json']}x pipelined json, "
              f"the bar is {floor}x", file=sys.stderr)
        status = 1
    if stream["batched_v2_vs_v1"] < 0.9:
        print(f"  FAIL: batched binary-v2 regressed to "
              f"{stream['batched_v2_vs_v1']}x of binary-v1",
              file=sys.stderr)
        status = 1
    return status


def _run_obs_leg(results: dict, budget_pct: float) -> int:
    """Run the telemetry-overhead leg into *results*; 0 when on budget."""
    print("telemetry overhead, metrics on vs off (interleaved "
          "paired) ...", flush=True)
    results["obs"] = bench_obs_overhead()
    obs = results["obs"]
    dispatch = obs["dispatch"]
    print(f"  batched dispatch: {dispatch['batched_base_ms']} ms base "
          f"-> {obs['batched_overhead_pct']}% overhead "
          f"(single dispatch {dispatch['single_base_us']} us -> "
          f"{dispatch['single_overhead_pct']}%)")
    print(f"  end-to-end batched: on "
          f"{obs['metrics_on']['batched_rows_per_sec']} rows/s, off "
          f"{obs['metrics_off']['batched_rows_per_sec']} rows/s")
    print(f"  end-to-end single p50: on "
          f"{obs['metrics_on']['single_round_trip_us_p50']} us, off "
          f"{obs['metrics_off']['single_round_trip_us_p50']} us -> "
          f"{obs['single_round_trip_overhead_pct']}% overhead")
    if obs["batched_overhead_pct"] > budget_pct:
        print(f"  FAIL: batched telemetry overhead "
              f"{obs['batched_overhead_pct']}% exceeds the "
              f"{budget_pct}% budget", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="quick",
                        help="campaign profile to cold-build "
                             "(default quick)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count to compare against "
                             "--jobs 1 (default 4)")
    parser.add_argument("--rows", type=int, default=10_000,
                        help="inference batch size (default 10000)")
    parser.add_argument("--output", default="BENCH_pipeline.json")
    parser.add_argument("--skip-build", action="store_true",
                        help="only run the inference benchmark")
    parser.add_argument("--daemon-requests", type=int, default=200,
                        help="single-row requests per daemon client "
                             "(default 200)")
    parser.add_argument("--obs-only", action="store_true",
                        help="run only the telemetry-overhead leg and "
                             "merge its 'obs' section into --output")
    parser.add_argument("--obs-budget", type=float, default=3.0,
                        help="fail when batched telemetry overhead "
                             "exceeds this percentage (default 3.0)")
    parser.add_argument("--stream-only", action="store_true",
                        help="run only the stream-codec shootout and "
                             "merge its 'stream_codec' section into "
                             "--output")
    parser.add_argument("--stream-floor", type=float, default=2.0,
                        help="fail when pipelined binary-v2 is below "
                             "this multiple of pipelined json "
                             "(default 2.0)")
    args = parser.parse_args(argv)

    if args.obs_only or args.stream_only:
        # CI's quick gates: refresh just the requested section(s),
        # keep every other recorded number untouched
        results = {}
        if os.path.exists(args.output):
            try:
                with open(args.output) as handle:
                    results = json.load(handle)
            except (OSError, json.JSONDecodeError):
                results = {}
        results.setdefault("bench", "pipeline")
        status = 0
        if args.obs_only:
            status |= _run_obs_leg(results, args.obs_budget)
        if args.stream_only:
            status |= _run_stream_leg(results, args.stream_floor)
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        print(f"written to {args.output}")
        return status

    results = {
        "bench": "pipeline",
        "profile": args.profile,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }

    if args.skip_build and os.path.exists(args.output):
        # keep the previous campaign numbers instead of dropping them
        try:
            with open(args.output) as handle:
                previous = json.load(handle)
            if "cold_build" in previous:
                results["cold_build"] = previous["cold_build"]
        except (OSError, json.JSONDecodeError):
            pass

    if not args.skip_build:
        print(f"cold build, profile={args.profile!r}, jobs=1 ...",
              flush=True)
        serial = bench_cold_build(args.profile, jobs=1)
        print(f"  {serial['seconds']:.2f} s "
              f"({serial['n_samples']} samples)")
        print(f"cold build, profile={args.profile!r}, "
              f"jobs={args.jobs} ...", flush=True)
        parallel = bench_cold_build(args.profile, jobs=args.jobs)
        print(f"  {parallel['seconds']:.2f} s")
        results["cold_build"] = {
            "serial": serial,
            "parallel": parallel,
            "speedup": round(serial["seconds"] / parallel["seconds"], 2),
        }

    print(f"inference, {args.rows} rows ...", flush=True)
    results["inference"] = bench_inference(args.rows)
    print(f"  tree    x{results['inference']['tree']['speedup']}")
    print(f"  forest  x{results['inference']['forest']['speedup']}")

    print("model artifact load / single-prediction latency ...",
          flush=True)
    results["model_io"] = bench_model_io()
    for family in ("tree", "forest"):
        io_stats = results["model_io"][family]
        print(f"  {family:6s} load {io_stats['load_ms']} ms, "
              f"predict {io_stats['predict_us']} us "
              f"({io_stats['artifact_kb']} KiB)")

    print("daemon round-trip latency / throughput ...", flush=True)
    results["daemon"] = bench_daemon(
        requests_per_client=args.daemon_requests)
    for level in results["daemon"]["levels"]:
        print(f"  {level['clients']:>2} client(s): "
              f"p50 {level['round_trip_us_p50']} us, "
              f"p99 {level['round_trip_us_p99']} us, "
              f"{level['rows_per_sec']} rows/s")
    batched = results["daemon"]["batched"]
    print(f"  batched   : {batched['rows']} rows in "
          f"{batched['seconds']} s ({batched['rows_per_sec']} rows/s)")

    print("fleet daemon (event loop + micro-batching, 2 models) ...",
          flush=True)
    results["fleet"] = bench_fleet(
        requests_per_client=args.daemon_requests)
    for level in results["fleet"]["levels"]:
        print(f"  {level['clients']:>2} client(s): "
              f"p50 {level['round_trip_us_p50']} us, "
              f"p99 {level['round_trip_us_p99']} us, "
              f"{level['rows_per_sec']} rows/s")
    two = results["fleet"]["two_models"]
    print(f"  2-model mix ({two['clients']} clients): "
          f"{two['rows_per_sec']} rows/s")
    fbatched = results["fleet"]["batched"]
    print(f"  batched   : {fbatched['rows']} rows in "
          f"{fbatched['seconds']} s ({fbatched['rows_per_sec']} rows/s)")
    # per-level ratios against the (minutes-earlier) daemon section are
    # indicative; the headline acceptance number is the interleaved
    # paired comparison bench_fleet measured in one time window
    speedups = {}
    for fleet_level, daemon_level in zip(results["fleet"]["levels"],
                                         results["daemon"]["levels"]):
        assert fleet_level["clients"] == daemon_level["clients"]
        speedups[str(fleet_level["clients"])] = round(
            fleet_level["rows_per_sec"] / daemon_level["rows_per_sec"],
            2)
    results["fleet"]["speedup_vs_unbatched_daemon"] = speedups
    print(f"  speedup vs unbatched daemon (cross-section): {speedups}")
    paired = results["fleet"]["paired_single_row"]
    print(f"  paired @{paired['clients']} clients (interleaved): "
          f"unbatched {paired['unbatched_rows_per_sec']} rows/s, "
          f"fleet {paired['fleet_rows_per_sec']} rows/s "
          f"-> {paired['speedup']}x")

    print("pipelined client vs sequential (interleaved paired) ...",
          flush=True)
    results["pipeline_client"] = bench_pipelined()
    pipe = results["pipeline_client"]
    print(f"  sequential {pipe['sequential_rows_per_sec']} rows/s, "
          f"pipelined {pipe['pipelined_rows_per_sec']} rows/s "
          f"(window {pipe['window']}) -> {pipe['speedup']}x")

    print("sharded daemons at 1/2/4 shards (interleaved rounds) ...",
          flush=True)
    results["shards"] = bench_shards()
    for level in results["shards"]["levels"]:
        print(f"  {level['shards']} shard(s): "
              f"{level['rows_per_sec']} rows/s "
              f"({level['speedup_vs_1_shard']}x vs 1 shard)")

    print("supervised fleet under kill churn (interleaved paired) ...",
          flush=True)
    results["supervisor"] = bench_supervised_churn()
    churn = results["supervisor"]
    print(f"  quiet {churn['quiet_rows_per_sec']} rows/s, "
          f"churn {churn['churn_rows_per_sec']} rows/s "
          f"({churn['kills']} kills, {churn['heals']} heals) -> "
          f"{churn['throughput_retention']}x retained")

    print("wire codec x backend matrix (interleaved rounds) ...",
          flush=True)
    results["codec_backend"] = bench_codec_backend()
    for variant in results["codec_backend"]["variants"]:
        print(f"  {variant['codec']:>9} + {variant['backend']:9s}: "
              f"{variant['batched_rows_per_sec']} rows/s batched, "
              f"p50 {variant['single_round_trip_us_p50']} us "
              f"({variant['speedup_vs_json_reference']}x vs "
              f"json+reference)")
    best = results["codec_backend"]["variants"][-1]
    ref_batched = results["daemon"]["batched"]["rows_per_sec"]
    ratio = round(best["batched_rows_per_sec"] / ref_batched, 2)
    results["codec_backend"]["speedup_vs_daemon_batched"] = ratio
    print(f"  binary+compiled vs daemon batched "
          f"({ref_batched} rows/s): {ratio}x")

    status = _run_stream_leg(results, args.stream_floor)
    status |= _run_obs_leg(results, args.obs_budget)

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"written to {args.output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
