"""The labelling campaign: steps (A)-(F) of the paper's workflow.

For every sample (kernel x dtype x size):

1. build the kernel IR and extract the static features (RAW+AGG+MCA);
2. simulate it at every team size 1..8 (cached on disk);
3. integrate the Table-I energy model over each run's counters;
4. extract the Table-III dynamic features from each run;
5. label the sample with the minimum-energy team size.

The assembled :class:`Dataset` also caches itself as one JSON file, so
experiments re-open in milliseconds.

The campaign is embarrassingly parallel (one task per sample), so
:func:`build_dataset` fans it out over a process pool when ``jobs > 1``.
Workers share the on-disk :class:`SimCache` (whose writes are atomic and
collision-free) and results are merged back in spec order, so a parallel
build produces a dataset byte-identical to a serial one.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.dataset.cache import CODE_VERSION, SimCache, kernel_fingerprint
from repro.dataset.registry import all_kernel_specs
from repro.dataset.spec import SampleSpec, enumerate_samples, profile_sizes
from repro.energy.accounting import compute_energy
from repro.energy.model import EnergyModel
from repro.errors import DatasetError
from repro.features.dynamic import extract_dynamic, flatten_dynamic
from repro.features.mca import extract_mca
from repro.features.sets import sample_vector
from repro.features.static_agg import agg_from_raw
from repro.features.static_raw import extract_raw
from repro.parallel import resolve_jobs
from repro.platform.config import ClusterConfig
from repro.sim.counters import ClusterCounters
from repro.sim.engine import simulate

DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class Sample:
    """One labelled dataset sample."""

    sample_id: str
    kernel: str
    suite: str
    dtype: str
    size_bytes: int
    label: int                       # minimum-energy team size (1..8)
    energy_fj: list                  # E(team) for team = 1..8
    cycles: list                     # runtime(team) for team = 1..8
    static: dict = field(default_factory=dict)
    dynamic: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "sample_id": self.sample_id, "kernel": self.kernel,
            "suite": self.suite, "dtype": self.dtype,
            "size_bytes": self.size_bytes, "label": self.label,
            "energy_fj": self.energy_fj, "cycles": self.cycles,
            "static": self.static, "dynamic": self.dynamic,
        }

    @staticmethod
    def from_dict(data: dict) -> "Sample":
        return Sample(**data)


@dataclass
class Dataset:
    """The assembled, labelled dataset."""

    samples: list
    profile: str
    team_sizes: tuple = tuple(range(1, 9))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def labels(self) -> np.ndarray:
        return np.asarray([s.label for s in self.samples], dtype=int)

    @property
    def energy_matrix(self) -> np.ndarray:
        return np.asarray([s.energy_fj for s in self.samples],
                          dtype=np.float64)

    def matrix(self, feature_names: list) -> np.ndarray:
        """Feature matrix (n_samples, n_features) for the given names."""
        rows = [sample_vector(s.static, s.dynamic, feature_names)
                for s in self.samples]
        return np.asarray(rows, dtype=np.float64)

    def class_distribution(self) -> dict[int, int]:
        dist: dict[int, int] = {team: 0 for team in self.team_sizes}
        for sample in self.samples:
            dist[sample.label] += 1
        return dist

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> None:
        """Atomically publish the dataset JSON (mkstemp staging, so two
        concurrent cold builds of the same profile race benignly)."""
        payload = {
            "profile": self.profile,
            "team_sizes": list(self.team_sizes),
            "samples": [s.as_dict() for s in self.samples],
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(os.path.abspath(path)),
            prefix=os.path.basename(path) + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def load(path: str) -> "Dataset":
        with open(path) as handle:
            payload = json.load(handle)
        return Dataset(
            samples=[Sample.from_dict(s) for s in payload["samples"]],
            profile=payload["profile"],
            team_sizes=tuple(payload["team_sizes"]),
        )


def build_sample(spec: SampleSpec, config: ClusterConfig,
                 model: EnergyModel, cache: SimCache | None) -> Sample:
    """Run the full labelling pipeline for one sample."""
    kernel = spec.build()
    fingerprint = kernel_fingerprint(kernel, config)
    cached = cache.load(spec.sample_id, fingerprint) if cache else {}

    raw = extract_raw(kernel)
    static = dict(raw)
    static.update(agg_from_raw(raw))
    static.update(extract_mca(kernel))

    energies: list[float] = []
    cycles: list[int] = []
    per_team_dynamic: dict[int, dict] = {}
    teams_payload: dict[str, dict] = {}
    dirty = False
    for team in range(1, config.n_cores + 1):
        key = str(team)
        if key in cached:
            counters = ClusterCounters.from_dict(cached[key])
            teams_payload[key] = cached[key]
        else:
            counters = simulate(kernel, team, config)
            teams_payload[key] = counters.as_dict()
            dirty = True
        energies.append(compute_energy(counters, model).total)
        cycles.append(counters.cycles)
        per_team_dynamic[team] = extract_dynamic(counters)

    if cache and dirty:
        cache.store(spec.sample_id, fingerprint, teams_payload)

    label = int(np.argmin(energies)) + 1
    return Sample(
        sample_id=spec.sample_id,
        kernel=spec.kernel.name,
        suite=spec.kernel.suite,
        dtype=spec.dtype.value,
        size_bytes=spec.size_bytes,
        label=label,
        energy_fj=[float(e) for e in energies],
        cycles=[int(c) for c in cycles],
        static={k: float(v) for k, v in static.items()},
        dynamic=flatten_dynamic(per_team_dynamic),
    )


def _build_sample_task(task) -> Sample:
    """Process-pool entry point: label one sample.

    Each worker opens its own :class:`SimCache` handle on the shared
    directory; the cache's atomic, collision-free writes make that safe.
    """
    spec, config, model, cache_dir = task
    cache = SimCache(cache_dir) if cache_dir is not None else None
    return build_sample(spec, config, model, cache)


def _build_samples_parallel(sample_specs, config, model, cache_dir,
                            jobs: int, progress) -> list:
    """Fan the campaign out over *jobs* worker processes.

    ``Executor.map`` yields results in submission order, so the merged
    sample list — and therefore the saved dataset JSON — is identical
    to a serial build's.
    """
    tasks = [(spec, config, model, cache_dir) for spec in sample_specs]
    chunksize = max(1, len(tasks) // (jobs * 4))
    samples = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for idx, sample in enumerate(
                pool.map(_build_sample_task, tasks, chunksize=chunksize)):
            if progress is not None:
                progress(f"[{idx + 1}/{len(tasks)}] {sample.sample_id}")
            samples.append(sample)
    return samples


def build_dataset(profile: str = "paper",
                  config: ClusterConfig | None = None,
                  model: EnergyModel | None = None,
                  cache_dir: str | None = DEFAULT_CACHE_DIR,
                  specs=None, progress=None,
                  jobs: int | None = None) -> Dataset:
    """Build (or reload) the labelled dataset for *profile*.

    With the default cache directory, a fully-cached rebuild takes
    seconds; cold builds simulate everything and may take minutes for
    the ``paper`` profile.

    *jobs* (default ``$REPRO_JOBS`` or 1) selects how many worker
    processes run the campaign; 0 or a negative value means one per
    CPU.  Any value produces the same dataset.
    """
    config = config or ClusterConfig()
    model = model or EnergyModel.paper_table1()
    sizes = profile_sizes(profile)
    specs = specs if specs is not None else all_kernel_specs()
    sample_specs = enumerate_samples(specs, sizes)

    dataset_path = None
    if cache_dir is not None:
        os.makedirs(cache_dir, exist_ok=True)
        import hashlib
        digest = hashlib.sha1(
            (f"v{CODE_VERSION}|" + config.cache_key() + "|"
             + model.cache_key()).encode()
        ).hexdigest()[:10]
        tag = f"{profile}-{len(sample_specs)}-{digest}"
        dataset_path = os.path.join(cache_dir, f"dataset_{tag}.json")
        if os.path.exists(dataset_path):
            try:
                return Dataset.load(dataset_path)
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                pass  # stale/corrupt dataset cache: rebuild below

    jobs = resolve_jobs(jobs)
    samples = None
    if jobs > 1 and len(sample_specs) > 1:
        try:
            samples = _build_samples_parallel(
                sample_specs, config, model, cache_dir, jobs, progress)
        except (pickle.PicklingError, AttributeError) as exc:
            # e.g. kernel builders defined in a non-importable scope;
            # correctness beats speed, so fall back to the serial path.
            warnings.warn(f"parallel build unavailable ({exc}); "
                          f"falling back to a serial campaign",
                          RuntimeWarning)
            samples = None
    if samples is None:
        cache = SimCache(cache_dir) if cache_dir is not None else None
        samples = []
        for idx, spec in enumerate(sample_specs):
            if progress is not None:
                progress(
                    f"[{idx + 1}/{len(sample_specs)}] {spec.sample_id}")
            samples.append(build_sample(spec, config, model, cache))

    if not samples:
        raise DatasetError("no samples were built")
    dataset = Dataset(samples=samples, profile=profile,
                      team_sizes=tuple(range(1, config.n_cores + 1)))
    if dataset_path is not None:
        dataset.save(dataset_path)
    return dataset
