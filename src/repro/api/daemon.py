"""Persistent scoring daemon: the JSON-lines protocol over a socket.

``repro serve`` on stdin/stdout pays the model-load cost on every
process start and serves exactly one client.  :class:`ScoringDaemon`
keeps one fitted :class:`repro.api.Classifier` (or a whole
:class:`repro.api.fleet.ModelFleet`) resident and serves the same
protocol (see :mod:`repro.api.protocol`) to many concurrent clients
over a Unix domain socket or a TCP endpoint.

The daemon owns the **endpoint lifecycle** only — binding, stale-socket
reclaim, address reporting, unlinking on shutdown.  Actual serving is
delegated to the unified transport core (:mod:`repro.api.transport`):
a :class:`~repro.api.transport.RequestEngine` dispatches every request,
behind either the thread-per-connection transport (single-model mode)
or the selectors event loop with adaptive micro-batch coalescing
(fleet mode).  Both transports emit byte-identical frames for the same
requests because they share the engine.

Typical embedding::

    daemon = ScoringDaemon(classifier, socket_path="/tmp/repro.sock")
    with daemon:
        ...  # clients connect via repro.api.client.ScoringClient

or from the shell: ``repro serve --socket /tmp/repro.sock --workers 8``.

**Fleet mode** swaps the single resident classifier for a model fleet —
many resident models routed by the request's ``"model"`` field::

    daemon = ScoringDaemon(fleet=fleet, socket_path="/tmp/repro.sock")

Requests without a ``"model"`` field hit the fleet's pinned default
model, so pre-fleet clients see identical behaviour.  For N-process
serving of one endpoint see :class:`repro.api.shard.ShardManager`.
"""

from __future__ import annotations

import os
import socket
import stat
import threading
import time

from repro.api.classifier import Classifier
from repro.api.transport import (
    DEFAULT_WORKERS,
    EventLoopServer,
    RequestEngine,
    ThreadedServer,
)
from repro.api.wire import DEFAULT_CODECS
from repro.errors import DaemonError

__all__ = [
    "DEFAULT_DRAIN_GRACE",
    "DEFAULT_WORKERS",
    "ScoringDaemon",
    "parse_tcp_endpoint",
]

#: default upper bound on how long a drain waits for connections to
#: empty before force-stopping the transport anyway.
DEFAULT_DRAIN_GRACE = 30.0


def _reclaim_stale_unix_socket(path: str) -> None:
    """Unlink *path* if it is a socket nobody is listening on.

    A daemon that died without :meth:`ScoringDaemon.stop` leaves its
    socket file behind; binding over it must work, but silently
    deleting a live daemon's socket (or an unrelated file) must not.
    """
    if not os.path.exists(path):
        return
    if not stat.S_ISSOCK(os.stat(path).st_mode):
        raise DaemonError(
            f"socket path {path!r} exists and is not a socket; refusing "
            f"to overwrite it"
        )
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.2)
        probe.connect(path)
    except OSError:
        os.unlink(path)  # stale: no listener behind it
    else:
        raise DaemonError(f"socket path {path!r} already has a live listener")
    finally:
        probe.close()


class ScoringDaemon:
    """Serve one loaded scorer to many clients over a socket.

    Exactly one scorer must be configured (``classifier`` or ``fleet``)
    and exactly one transport: ``socket_path`` (a Unix domain socket)
    or ``tcp`` (a ``(host, port)`` pair; port 0 binds an ephemeral
    port, readable back from :attr:`address`).  ``workers`` bounds the
    number of concurrently served connections (single-model mode) or
    sizes the slow-verb pool (fleet mode).  ``reuse_port`` sets
    ``SO_REUSEPORT`` on TCP listeners so sharded daemons can share one
    port (see :mod:`repro.api.shard`); ``stats_extra`` contributes
    static sections (e.g. shard identity) to the ``{"cmd": "stats"}``
    verb.  ``codecs`` is the ordered tuple of wire codec names the
    daemon offers during hello negotiation (see :mod:`repro.api.wire`);
    the default offers the binary codec and falls back to JSON, and
    ``("json",)`` pins the daemon to JSON-lines only.
    """

    def __init__(
        self,
        classifier: Classifier | None = None,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        workers: int = DEFAULT_WORKERS,
        backlog: int = 128,
        fleet=None,
        reuse_port: bool = False,
        stats_extra: dict | None = None,
        codecs: tuple | None = None,
        metrics: bool = True,
    ) -> None:
        if (classifier is None) == (fleet is None):
            raise DaemonError(
                "configure exactly one scorer: classifier=Classifier or "
                "fleet=ModelFleet"
            )
        if (socket_path is None) == (tcp is None):
            raise DaemonError(
                "configure exactly one transport: socket_path=PATH or "
                "tcp=(host, port)"
            )
        if classifier is not None and not classifier.is_fitted:
            raise DaemonError(
                "classifier is not fitted; train or load a model before "
                "serving it"
            )
        if workers < 1:
            raise DaemonError(f"workers must be >= 1, got {workers}")
        if reuse_port and tcp is None:
            raise DaemonError("reuse_port applies to TCP endpoints only")
        self.fleet = fleet
        self.classifier = classifier
        self.socket_path = socket_path
        self.tcp = tuple(tcp) if tcp is not None else None
        self.workers = workers
        self.backlog = backlog
        self.reuse_port = reuse_port
        self.stats_extra = dict(stats_extra) if stats_extra else {}
        self.codecs = tuple(codecs) if codecs is not None else DEFAULT_CODECS
        # REPRO_METRICS=0 is the fleet-wide kill switch; the keyword
        # turns telemetry off for one daemon (the overhead bench's
        # control variant)
        self.metrics = bool(metrics) and os.environ.get(
            "REPRO_METRICS", "1"
        ) not in ("0", "false", "off")
        self._listener: socket.socket | None = None
        self._engine: RequestEngine | None = None
        self._server = None  # ThreadedServer | EventLoopServer
        self._last_server_stats: dict | None = None
        self._stopping = threading.Event()
        self._stop_lock = threading.Lock()  # drain thread vs owner stop
        self._stopped = threading.Event()
        self._draining = threading.Event()
        self._drain_thread: threading.Thread | None = None
        #: called (no arguments) once a drain has fully stopped the
        #: daemon — shard processes hook their shutdown flag here so a
        #: drained shard exits instead of idling (see
        #: :func:`repro.api.shard._shard_main`)
        self.on_drained = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self._listener is not None and not self._stopping.is_set()

    @property
    def is_draining(self) -> bool:
        return self._draining.is_set()

    @property
    def engine(self) -> RequestEngine | None:
        """The dispatch engine while running (``None`` when stopped)."""
        return self._engine

    @property
    def address(self) -> tuple:
        """The bound endpoint: ``("unix", path)`` or ``("tcp", host, port)``.

        For TCP the port is the *actual* bound port, so requesting port
        0 and reading the address back yields a usable endpoint.
        """
        if self.socket_path is not None:
            return ("unix", self.socket_path)
        if self._listener is not None:
            host, port = self._listener.getsockname()[:2]
            return ("tcp", host, port)
        return ("tcp",) + self.tcp

    def _bind(self) -> socket.socket:
        if self.socket_path is not None:
            _reclaim_stale_unix_socket(self.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                listener.bind(self.socket_path)
            except OSError as exc:
                listener.close()
                raise DaemonError(
                    f"cannot bind unix socket {self.socket_path!r}: {exc}"
                )
            return listener
        host, port = self.tcp
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                listener.close()
                raise DaemonError(
                    "this platform does not support SO_REUSEPORT; "
                    "sharded TCP serving is unavailable"
                )
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            listener.bind((host, int(port)))
        except OSError as exc:
            listener.close()
            raise DaemonError(f"cannot bind tcp {host}:{port}: {exc}")
        return listener

    def start(self) -> "ScoringDaemon":
        """Bind the socket and start accepting connections."""
        with self._stop_lock:
            if self._listener is not None:
                raise DaemonError("daemon is already started")
            listener = self._bind()
            listener.listen(self.backlog)
            self._stopping.clear()
            self._stopped.clear()
            self._draining.clear()
            self._listener = listener
            scorer = (self.fleet if self.fleet is not None
                      else self.classifier)
            self._engine = RequestEngine(
                scorer, metrics=(None if self.metrics else False))
            self._engine.drain_hook = self.request_drain
            for name, payload in self.stats_extra.items():
                self._engine.add_stats_source(
                    name, lambda p=payload: dict(p))
            if self.fleet is not None:
                # fleet mode serves from the selectors event loop (one
                # IO thread, adaptive request coalescing, a small
                # worker pool for slow verbs)
                batcher = getattr(self.fleet, "batcher", None)
                max_batch = (batcher.max_batch if batcher is not None
                             else 1)
                if self._engine.obs is not None:
                    pool = getattr(self.fleet, "pool", None)
                    if pool is not None:
                        pool.bind_metrics(self._engine.obs)
                    if batcher is not None:
                        batcher.bind_metrics(self._engine.obs)
                server = EventLoopServer(
                    self._engine, listener, workers=self.workers,
                    max_batch=max_batch, codecs=self.codecs
                )
            else:
                server = ThreadedServer(
                    self._engine, listener, workers=self.workers,
                    codecs=self.codecs)
            self._engine.add_stats_source("server", server.stats)
            self._server = server.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop serving, close live connections, drain workers.

        Idempotent, and safe to race: a background drain finishing
        while the owner tears the daemon down must not trip over a
        half-cleared server.
        """
        with self._stop_lock:
            if self._listener is None:
                return
            self._stopping.set()
            if self._server is not None:
                self._server.stop(timeout)  # closes the listener too
                self._last_server_stats = self._server.stats()
                self._server = None
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
            if self._engine is not None:
                # write any sampled trace spans out now, while the
                # serving threads are already quiesced
                self._engine.close_observability()
            self._engine = None
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
            self._stopped.set()

    # -- graceful drain ----------------------------------------------------

    def request_drain(self, grace: float = DEFAULT_DRAIN_GRACE) -> bool:
        """Begin a graceful drain in the background; returns immediately.

        The drain sequence: mark the engine draining (new scoring
        requests answer typed ``draining`` frames on every path,
        control verbs keep working), stop accepting connections
        (``pause_accept`` — established sessions keep serving), wait
        up to *grace* seconds for the active-connection count to reach
        zero, then :meth:`stop` and fire :attr:`on_drained`.  In-flight
        requests therefore always complete: the transports only ever
        refuse *new* work.  Returns ``False`` when the daemon is not
        running or a drain is already under way — the wire verb
        ``{"cmd": "drain"}`` lands here through the engine's drain
        hook.
        """
        if self._listener is None:
            return False
        if self._draining.is_set():
            return False
        self._draining.set()
        engine = self._engine
        if engine is not None:
            engine.draining = True
        thread = threading.Thread(
            target=self._do_drain, args=(float(grace),),
            name="repro-drain", daemon=True,
        )
        self._drain_thread = thread
        thread.start()
        return True

    def drain(self, grace: float = DEFAULT_DRAIN_GRACE,
              timeout: float | None = None) -> bool:
        """Synchronous :meth:`request_drain`: returns once stopped."""
        started = self.request_drain(grace)
        self._stopped.wait(timeout if timeout is not None
                           else float(grace) + 10.0)
        return started

    def _do_drain(self, grace: float) -> None:
        server = self._server
        if server is not None:
            server.pause_accept()
            deadline = time.monotonic() + grace
            while time.monotonic() < deadline:
                try:
                    if server.stats()["active_connections"] == 0:
                        break
                except (KeyError, RuntimeError):
                    break
                time.sleep(0.05)
        self.stop()
        hook = self.on_drained
        if hook is not None:
            hook()

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`stop` is called.

        A ``KeyboardInterrupt`` triggers a clean :meth:`stop`, so
        Ctrl-C on ``repro serve --socket`` shuts down gracefully.
        """
        if self._listener is None:
            self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "ScoringDaemon":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Lifetime counters (requests, connections, live connections)."""
        if self._server is not None:
            server_stats = self._server.stats()
        elif self._last_server_stats is not None:
            server_stats = self._last_server_stats
        else:
            server_stats = {
                "requests_served": 0,
                "connections_served": 0,
                "active_connections": 0,
            }
        stats = {
            "requests_served": server_stats["requests_served"],
            "connections_served": server_stats["connections_served"],
            "active_connections": server_stats["active_connections"],
            "workers": self.workers,
        }
        if "codec" in server_stats:
            stats["codec"] = server_stats["codec"]
        if self.fleet is not None:
            if server_stats.get("transport") == "eventloop":
                stats["loop"] = server_stats
            stats["fleet"] = self.fleet.stats()
        return stats


def parse_tcp_endpoint(endpoint: str) -> tuple:
    """Parse ``HOST:PORT`` (the ``repro serve --tcp`` argument)."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise DaemonError(f"endpoint must look like HOST:PORT, got {endpoint!r}")
    try:
        return host, int(port)
    except ValueError:
        raise DaemonError(f"tcp port must be an integer, got {port!r}")
