"""E4 — §IV.B dataset statistics: 448 samples, class-8 plurality.

Regenerates the class-balance table and benchmarks the stats pass.
"""

from repro.experiments.dataset_stats import run_dataset_stats

from benchmarks.conftest import write_artifact


def test_dataset_stats_regeneration(dataset, benchmark):
    stats = benchmark(run_dataset_stats, dataset)
    write_artifact("dataset_stats.txt", stats.render())

    if dataset.profile == "paper":
        assert stats.n_samples == 448
    # paper shape: class 8 holds the plurality of the dataset
    assert stats.majority_label == 8
    assert stats.class_share(8) > 20.0
    # every class is populated
    assert all(count > 0 for count in stats.class_counts.values())
