"""The :mod:`repro` service layer — the classifier as a product.

The paper's deliverable is a classifier that maps source-code features
to the most energy-efficient PULP core configuration.  This package is
its canonical entry point:

>>> from repro.api import Classifier, ReproConfig
>>> clf = Classifier(ReproConfig(profile="unit")).train()
>>> clf.save("model.json")
>>> Classifier.load("model.json").predict_batch(rows)

Everything else layers on top: the :mod:`repro.experiments` drivers are
thin clients of :func:`evaluate_features` / :class:`Classifier`, and
the ``repro train`` / ``repro predict`` / ``repro serve`` CLI commands
are thin clients of this package.

Extension points: :func:`register_model_family` (e.g. a new ensemble)
and :func:`register_feature_set` (e.g. a new static feature family)
plug new behaviour in without touching any caller.
"""

from repro.api.classifier import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    Classifier,
    EvaluationReport,
    evaluate_features,
    kernel_features,
)
from repro.api.config import (
    DEFAULT_TOLERANCES,
    ReproConfig,
    active_profile,
    cv_repeats,
    default_jobs,
)
from repro.api.registry import (
    ModelFamily,
    available_feature_sets,
    available_model_families,
    model_family,
    register_feature_set,
    register_model_family,
    resolve_feature_set,
)
from repro.api.selection import (
    optimised_set,
    prune_by_importance,
    rank_features,
)
from repro.api.service import handle_request, serve

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "Classifier",
    "EvaluationReport",
    "evaluate_features",
    "kernel_features",
    "DEFAULT_TOLERANCES",
    "ReproConfig",
    "active_profile",
    "cv_repeats",
    "default_jobs",
    "ModelFamily",
    "available_feature_sets",
    "available_model_families",
    "model_family",
    "register_feature_set",
    "register_model_family",
    "resolve_feature_set",
    "optimised_set",
    "prune_by_importance",
    "rank_features",
    "handle_request",
    "serve",
]
