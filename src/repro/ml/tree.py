"""CART decision tree with gini impurity (numpy implementation).

Supports the knobs the reproduction needs: depth/leaf-size limits,
per-node feature subsampling (for the random forest), deterministic
tie-breaking, gini feature importances normalised to sum to one.

Prediction is *batched*: after fitting, the tree is flattened into
numpy index arrays (feature, threshold, left/right child per node) and
all rows descend the tree together, one level per iteration, instead of
one Python loop per row.  The row-wise reference implementation is kept
(``_predict_rowwise``) for equivalence tests and benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError


class _Node:
    """One tree node; leaves carry a class distribution."""

    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, feature: int = -1, threshold: float = 0.0,
                 left=None, right=None, value=None) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


def _gini(class_counts: np.ndarray) -> float:
    total = class_counts.sum()
    if total <= 0:
        return 0.0
    p = class_counts / total
    return float(1.0 - np.dot(p, p))


class DecisionTreeClassifier:
    """CART classifier (gini criterion, binary splits on thresholds)."""

    def __init__(self, max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | str | None = None,
                 random_state: int | None = None) -> None:
        if min_samples_split < 2:
            raise MLError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise MLError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: _Node | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None
        self.n_nodes_: int = 0

    # -- fitting ------------------------------------------------------------------

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2:
            raise MLError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise MLError(f"X and y disagree: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise MLError("cannot fit on an empty dataset")

        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self._n_classes = len(self.classes_)
        self._rng = np.random.default_rng(self.random_state)
        self._importance = np.zeros(self.n_features_)
        self._n_total = len(X)
        self.n_nodes_ = 0

        n_feat = self._resolve_max_features()
        self._root = self._grow(X, y_enc, depth=0, n_feat=n_feat)
        self._flatten()

        total = self._importance.sum()
        self.feature_importances_ = (self._importance / total if total > 0
                                     else self._importance.copy())
        return self

    def _resolve_max_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if self.max_features == "log2":
            return max(1, int(np.log2(self.n_features_)))
        n = int(self.max_features)
        if not 1 <= n <= self.n_features_:
            raise MLError(f"max_features {n} outside [1, "
                          f"{self.n_features_}]")
        return n

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int,
              n_feat: int) -> _Node:
        """Grow the tree iteratively (degenerate data can produce paths
        hundreds of nodes deep, beyond Python's recursion limit)."""
        root = _Node()
        stack = [(X, y, depth, root)]
        while stack:
            X_node, y_node, node_depth, node = stack.pop()
            self.n_nodes_ += 1
            counts = np.bincount(y_node,
                                 minlength=self._n_classes).astype(float)
            node_gini = _gini(counts)
            n = len(y_node)

            split = None
            if (node_gini > 0.0 and n >= self.min_samples_split
                    and (self.max_depth is None
                         or node_depth < self.max_depth)):
                split = self._best_split(X_node, y_node, counts,
                                         node_gini, n_feat)
            if split is None:
                node.value = counts
                continue

            feature, threshold, gain = split
            mask = X_node[:, feature] <= threshold
            n_left = int(mask.sum())
            if n_left == 0 or n_left == n:  # degenerate split: leaf
                node.value = counts
                continue
            self._importance[feature] += (n / self._n_total) * gain
            node.feature = feature
            node.threshold = threshold
            node.left = _Node()
            node.right = _Node()
            stack.append((X_node[mask], y_node[mask], node_depth + 1,
                          node.left))
            stack.append((X_node[~mask], y_node[~mask], node_depth + 1,
                          node.right))
        return root

    def _best_split(self, X: np.ndarray, y: np.ndarray,
                    counts: np.ndarray, node_gini: float,
                    n_feat: int):
        n = len(y)
        min_leaf = self.min_samples_leaf
        best_gain = 1e-12
        best = None

        if n_feat < self.n_features_:
            candidates = self._rng.choice(self.n_features_, size=n_feat,
                                          replace=False)
            candidates.sort()
        else:
            candidates = range(self.n_features_)

        onehot = np.zeros((n, self._n_classes))
        onehot[np.arange(n), y] = 1.0

        for feature in candidates:
            column = X[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_col = column[order]
            # cumulative class counts left of each split position
            left_counts = np.cumsum(onehot[order], axis=0)
            # valid split positions: between distinct values, honouring
            # the minimum leaf size
            distinct = sorted_col[:-1] < sorted_col[1:]
            positions = np.nonzero(distinct)[0] + 1  # left side size
            if min_leaf > 1:
                positions = positions[(positions >= min_leaf)
                                      & (positions <= n - min_leaf)]
            elif len(positions):
                positions = positions[(positions >= 1)
                                      & (positions <= n - 1)]
            if not len(positions):
                continue
            lc = left_counts[positions - 1]
            rc = counts - lc
            nl = positions.astype(float)
            nr = n - nl
            gini_l = 1.0 - np.einsum("ij,ij->i", lc, lc) / (nl * nl)
            gini_r = 1.0 - np.einsum("ij,ij->i", rc, rc) / (nr * nr)
            gains = node_gini - (nl / n) * gini_l - (nr / n) * gini_r
            idx = int(np.argmax(gains))
            if gains[idx] > best_gain:
                best_gain = float(gains[idx])
                pos = positions[idx]
                threshold = (sorted_col[pos - 1] + sorted_col[pos]) / 2.0
                if threshold >= sorted_col[pos]:
                    # adjacent values one ulp apart: the midpoint rounds
                    # up and would send every sample left — split on the
                    # lower value instead so both children are non-empty
                    threshold = float(sorted_col[pos - 1])
                best = (int(feature), float(threshold), best_gain)
        return best

    # -- prediction -----------------------------------------------------------------

    def _check_fitted(self) -> None:
        if self._root is None:
            raise MLError("classifier is not fitted")

    def _flatten(self) -> None:
        """Flatten the node graph into index arrays for batched descent.

        ``_flat_feature[i] == -1`` marks node *i* as a leaf; internal
        nodes carry (feature, threshold) and the indices of both
        children.  Per-leaf argmax classes and probability rows are
        precomputed once so prediction is pure indexing.
        """
        order: list[_Node] = []
        index: dict[int, int] = {}
        stack = [self._root]
        while stack:
            node = stack.pop()
            index[id(node)] = len(order)
            order.append(node)
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)
        n = len(order)
        self._flat_feature = np.full(n, -1, dtype=np.intp)
        self._flat_threshold = np.zeros(n, dtype=np.float64)
        self._flat_left = np.zeros(n, dtype=np.intp)
        self._flat_right = np.zeros(n, dtype=np.intp)
        values = np.zeros((n, self._n_classes), dtype=np.float64)
        for i, node in enumerate(order):
            if node.is_leaf:
                values[i] = node.value
            else:
                self._flat_feature[i] = node.feature
                self._flat_threshold[i] = node.threshold
                self._flat_left[i] = index[id(node.left)]
                self._flat_right[i] = index[id(node.right)]
        self._leaf_class = values.argmax(axis=1)
        sums = values.sum(axis=1)
        sums[sums == 0.0] = 1.0
        self._leaf_proba = values / sums[:, None]

    def _leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Flat node index of the leaf each row of *X* lands in.

        All rows descend together: each iteration advances every
        still-internal row one level, so the loop runs depth() times
        rather than n_rows times.
        """
        idx = np.zeros(len(X), dtype=np.intp)
        active = np.nonzero(self._flat_feature[idx] >= 0)[0]
        while active.size:
            node = idx[active]
            go_left = (X[active, self._flat_feature[node]]
                       <= self._flat_threshold[node])
            idx[active] = np.where(go_left, self._flat_left[node],
                                   self._flat_right[node])
            active = active[self._flat_feature[idx[active]] >= 0]
        return idx

    def _validate_X(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise MLError(f"X must have shape (n, {self.n_features_})")
        return X

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._validate_X(X)
        return self.classes_[self._leaf_class[self._leaf_indices(X)]]

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._validate_X(X)
        return self._leaf_proba[self._leaf_indices(X)]

    # -- row-wise reference implementations (seed behaviour) -------------------------

    def _predict_rowwise(self, X) -> np.ndarray:
        """Seed per-row recursive descent; kept as the equivalence and
        benchmark baseline for the batched ``predict``."""
        self._check_fitted()
        X = self._validate_X(X)
        out = np.empty(len(X), dtype=int)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = (node.left if row[node.feature] <= node.threshold
                        else node.right)
            out[i] = int(np.argmax(node.value))
        return self.classes_[out]

    def _predict_proba_rowwise(self, X) -> np.ndarray:
        self._check_fitted()
        X = self._validate_X(X)
        probs = np.empty((len(X), self._n_classes))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = (node.left if row[node.feature] <= node.threshold
                        else node.right)
            total = node.value.sum() or 1.0
            probs[i] = node.value / total
        return probs

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe payload of the fitted tree (flattened node arrays).

        Node 0 is the root; ``feature == -1`` marks a leaf, whose
        ``value`` row carries the training class counts.  The payload
        round-trips exactly: :meth:`from_dict` rebuilds the node graph
        and re-flattens it, so predictions are bit-identical.
        """
        self._check_fitted()
        order: list[_Node] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            order.append(node)
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)
        index = {id(node): i for i, node in enumerate(order)}
        nodes: dict[str, list] = {"feature": [], "threshold": [],
                                  "left": [], "right": [], "value": []}
        for node in order:
            if node.is_leaf:
                nodes["feature"].append(-1)
                nodes["threshold"].append(0.0)
                nodes["left"].append(-1)
                nodes["right"].append(-1)
                nodes["value"].append([float(v) for v in node.value])
            else:
                nodes["feature"].append(int(node.feature))
                nodes["threshold"].append(float(node.threshold))
                nodes["left"].append(index[id(node.left)])
                nodes["right"].append(index[id(node.right)])
                nodes["value"].append(None)
        return {
            "params": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "random_state": self.random_state,
            },
            "classes": self.classes_.tolist(),
            "n_features": int(self.n_features_),
            "feature_importances": self.feature_importances_.tolist(),
            "nodes": nodes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionTreeClassifier":
        """Rebuild a fitted tree from a :meth:`to_dict` payload."""
        try:
            tree = cls(**data["params"])
            raw = data["nodes"]
            n = len(raw["feature"])
            if n == 0:
                raise MLError("tree payload has no nodes")
            nodes = [_Node() for _ in range(n)]
            for i in range(n):
                if raw["feature"][i] < 0:
                    nodes[i].value = np.asarray(raw["value"][i],
                                                dtype=np.float64)
                else:
                    left, right = int(raw["left"][i]), int(raw["right"][i])
                    # to_dict emits nodes in DFS preorder, so children
                    # always follow their parent; enforcing that here
                    # rejects cycles and negative-index aliasing in
                    # hand-edited payloads instead of hanging _flatten()
                    if not (i < left < n and i < right < n):
                        raise MLError(
                            f"tree payload node {i} has invalid "
                            f"children ({left}, {right}); child indices "
                            f"must lie in ({i}, {n})")
                    nodes[i].feature = int(raw["feature"][i])
                    nodes[i].threshold = float(raw["threshold"][i])
                    nodes[i].left = nodes[left]
                    nodes[i].right = nodes[right]
            tree.classes_ = np.asarray(data["classes"])
            tree.n_features_ = int(data["n_features"])
            tree._n_classes = len(tree.classes_)
            tree.n_nodes_ = n
            tree.feature_importances_ = np.asarray(
                data["feature_importances"], dtype=np.float64)
            tree._root = nodes[0]
            tree._flatten()
        except MLError:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise MLError(f"malformed decision-tree payload: {exc!r}")
        return tree

    # -- introspection ----------------------------------------------------------------

    def depth(self) -> int:
        self._check_fitted()
        deepest = 0
        stack = [(self._root, 0)]
        while stack:
            node, level = stack.pop()
            if node.is_leaf:
                deepest = max(deepest, level)
            else:
                stack.append((node.left, level + 1))
                stack.append((node.right, level + 1))
        return deepest

    def n_leaves(self) -> int:
        self._check_fitted()
        leaves = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves += 1
            else:
                stack.append(node.left)
                stack.append(node.right)
        return leaves
