"""Compiled decision-table inference backends.

The training representation of :class:`~repro.ml.tree.DecisionTreeClassifier`
is a ``_Node`` graph, flattened per-tree into index arrays for batched
descent.  These classes take that one step further — they are *pure*
inference tables built once (at :meth:`repro.api.Classifier.load` /
artifact-cache load time) from a fitted model:

* :class:`CompiledTree` — contiguous copies of one tree's flat arrays.
* :class:`CompiledForest` — **all** trees of a forest concatenated into
  a single node table with absolute child indices, so the whole
  ensemble descends in one level-synchronous vectorized loop instead
  of a per-tree Python loop, and votes are tallied with the same
  flat-``bincount`` + ``argmax`` arithmetic as the reference forest.

Both are drop-in ``predict``/``predict_batch`` engines with zero
per-node Python objects on the scoring path and **byte-identical**
predictions to the node-walk reference (asserted across every
registered model family in ``tests/test_compiled.py``): the split
comparisons, the per-leaf argmax and the tie-breaking bincount order
are copied exactly, not approximated.

The ``_Node`` graph remains the representation of record for training,
serialization and the reference implementations; compiled tables are
runtime-only and never serialized into artifacts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError

__all__ = ["CompiledTree", "CompiledForest"]


class CompiledTree:
    """One fitted CART tree as contiguous flat decision tables."""

    __slots__ = ("feature", "threshold", "left", "right", "leaf_class",
                 "leaf_proba", "classes_", "n_features_")

    backend_name = "compiled"

    def __init__(self, feature, threshold, left, right, leaf_class,
                 leaf_proba, classes, n_features) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.leaf_class = leaf_class
        self.leaf_proba = leaf_proba
        self.classes_ = classes
        self.n_features_ = int(n_features)

    @classmethod
    def from_model(cls, tree) -> "CompiledTree":
        """Compile a fitted :class:`DecisionTreeClassifier`.

        The tree's own flat arrays (built by ``_flatten`` at fit/load
        time) already encode the exact split semantics, so contiguous
        copies of them *are* the compiled table — identical descent,
        identical ties, byte-identical predictions.
        """
        tree._check_fitted()
        return cls(
            np.ascontiguousarray(tree._flat_feature),
            np.ascontiguousarray(tree._flat_threshold),
            np.ascontiguousarray(tree._flat_left),
            np.ascontiguousarray(tree._flat_right),
            np.ascontiguousarray(tree._leaf_class),
            np.ascontiguousarray(tree._leaf_proba),
            tree.classes_,
            tree.n_features_,
        )

    @property
    def n_nodes_(self) -> int:
        return len(self.feature)

    def _validate_X(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise MLError(f"X must have shape (n, {self.n_features_})")
        return X

    def _leaf_indices(self, X: np.ndarray) -> np.ndarray:
        idx = np.zeros(len(X), dtype=np.intp)
        active = np.nonzero(self.feature[idx] >= 0)[0]
        while active.size:
            node = idx[active]
            go_left = (X[active, self.feature[node]]
                       <= self.threshold[node])
            idx[active] = np.where(go_left, self.left[node],
                                   self.right[node])
            active = active[self.feature[idx[active]] >= 0]
        return idx

    def predict(self, X) -> np.ndarray:
        X = self._validate_X(X)
        return self.classes_[self.leaf_class[self._leaf_indices(X)]]

    def predict_proba(self, X) -> np.ndarray:
        X = self._validate_X(X)
        return self.leaf_proba[self._leaf_indices(X)]


class CompiledForest:
    """A whole random forest as one concatenated decision table.

    Per-tree node arrays are stacked with child indices shifted to
    absolute positions; ``roots[t]`` is tree *t*'s root node.  Each
    leaf carries its vote pre-mapped to a *forest* class index (the
    same ``searchsorted`` class map the reference ``predict`` applies
    per tree), so scoring is: descend ``n_trees * n_rows`` cursors in
    one level-synchronous loop, gather ``leaf_vote``, tally with the
    identical flat-``bincount`` + ``argmax`` the reference uses —
    byte-identical results, zero Python per tree.
    """

    __slots__ = ("feature", "threshold", "left", "right", "leaf_vote",
                 "roots", "classes_", "n_features_")

    backend_name = "compiled"

    def __init__(self, feature, threshold, left, right, leaf_vote,
                 roots, classes, n_features) -> None:
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.leaf_vote = leaf_vote
        self.roots = roots
        self.classes_ = classes
        self.n_features_ = int(n_features)

    @classmethod
    def from_model(cls, forest) -> "CompiledForest":
        """Compile a fitted :class:`RandomForestClassifier`."""
        if not forest.trees_:
            raise MLError("forest is not fitted")
        features, thresholds, lefts, rights, votes, roots = \
            [], [], [], [], [], []
        offset = 0
        for tree in forest.trees_:
            tree._check_fitted()
            n = len(tree._flat_feature)
            features.append(tree._flat_feature)
            thresholds.append(tree._flat_threshold)
            lefts.append(tree._flat_left + offset)
            rights.append(tree._flat_right + offset)
            # tree.classes_ is a subset of forest.classes_ (both come
            # from the same y), so searchsorted is the exact
            # class -> forest-index map the reference predict applies;
            # internal nodes get a harmless never-read placeholder
            votes.append(np.searchsorted(
                forest.classes_, tree.classes_[tree._leaf_class]))
            roots.append(offset)
            offset += n
        return cls(
            np.ascontiguousarray(np.concatenate(features)),
            np.ascontiguousarray(np.concatenate(thresholds)),
            np.ascontiguousarray(np.concatenate(lefts)),
            np.ascontiguousarray(np.concatenate(rights)),
            np.ascontiguousarray(np.concatenate(votes)),
            np.asarray(roots, dtype=np.intp),
            forest.classes_,
            forest.trees_[0].n_features_,
        )

    @property
    def n_trees_(self) -> int:
        return len(self.roots)

    @property
    def n_nodes_(self) -> int:
        return len(self.feature)

    def predict(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise MLError(f"X must have shape (n, {self.n_features_})")
        n, k = len(X), len(self.classes_)
        n_trees = len(self.roots)
        # one cursor per (tree, row), tree-major — every still-internal
        # cursor advances one level per iteration, so the loop runs
        # max-depth times over the whole ensemble
        idx = np.repeat(self.roots, n)
        cols = np.tile(np.arange(n, dtype=np.intp), n_trees)
        active = np.nonzero(self.feature[idx] >= 0)[0]
        while active.size:
            node = idx[active]
            go_left = (X[cols[active], self.feature[node]]
                       <= self.threshold[node])
            idx[active] = np.where(go_left, self.left[node],
                                   self.right[node])
            active = active[self.feature[idx[active]] >= 0]
        # identical vote math to the reference forest predict: flat
        # (row, class) keys into one bincount, argmax ties toward the
        # lowest class index
        flat = self.leaf_vote[idx] + cols * k
        counts = np.bincount(flat, minlength=n * k).reshape(n, k)
        return self.classes_[counts.argmax(axis=1)]
