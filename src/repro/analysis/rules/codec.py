"""RPL005 — the binary codec must encode and decode the same language.

:mod:`repro.api.wire` defines frame-type constants (``FRAME_PREDICT``,
...) and :class:`struct.Struct` layouts.  A frame type that is packed
by the encoder but never matched by any decoder branch is a frame the
peer cannot read; a struct used only on one side means the two sides
have diverged layouts waiting to disagree.  Byte order matters too: a
wire struct without an explicit ``<``/``>``/``!`` prefix inherits
native alignment and padding, which silently changes layout across
machines.

Per file that defines ``struct.Struct`` constants, the rule checks:

* every module-level ``FRAME_* = <int>`` constant appears both as a
  pack/encode argument and in a comparison (a decode dispatch branch);
* every ``Struct`` constant is used by both ``.pack`` and
  ``.unpack``/``.unpack_from`` — **unless** its format string (byte
  order stripped) contains or is contained by another struct's format
  in the same file.  That containment is real composition, not
  asymmetry: ``wire.py`` packs a prediction as one fused
  ``"<IBqi"`` write (header + body) but decodes header and ``"<qi"``
  body separately once the generic frame reader has consumed the
  header;
* every ``Struct`` format pins an explicit byte order.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import Rule, dotted_name, str_const

_BYTE_ORDER = ("<", ">", "!", "=")


def _struct_defs(tree: ast.Module) -> dict:
    """Module-level ``NAME = struct.Struct("fmt")`` -> (fmt, node)."""
    out: dict = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = stmt.value
        if (
            isinstance(value, ast.Call)
            and dotted_name(value.func) in ("struct.Struct", "Struct")
            and value.args
            and str_const(value.args[0]) is not None
        ):
            out[target.id] = (str_const(value.args[0]), stmt)
    return out


def _frame_defs(tree: ast.Module) -> dict:
    """Module-level ``FRAME_* = <int>`` -> node."""
    out: dict = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if (
            isinstance(target, ast.Name)
            and target.id.startswith("FRAME_")
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
        ):
            out[target.id] = stmt
    return out


def _strip_order(fmt: str) -> str:
    return fmt[1:] if fmt and fmt[0] in _BYTE_ORDER else fmt


class _Usage:
    """Where each struct/frame constant is used within one file."""

    def __init__(self, tree, structs, frames) -> None:
        self.packs: set = set()  # struct names used via .pack
        self.unpacks: set = set()  # struct names used via .unpack*
        self.encoded: set = set()  # frame names passed to calls
        self.decoded: set = set()  # frame names used in comparisons
        self._structs = structs
        self._frames = frames
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, ast.Compare):
                self._scan_compare(node)

    def _scan_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self._structs:
                if func.attr == "pack":
                    self.packs.add(owner)
                elif func.attr in ("unpack", "unpack_from"):
                    self.unpacks.add(owner)
        for arg in list(node.args) + [k.value for k in node.keywords]:
            for leaf in ast.walk(arg):
                if isinstance(leaf, ast.Name) and leaf.id in self._frames:
                    self.encoded.add(leaf.id)

    def _scan_compare(self, node: ast.Compare) -> None:
        for op in [node.left] + list(node.comparators):
            for leaf in ast.walk(op):
                if isinstance(leaf, ast.Name) and leaf.id in self._frames:
                    self.decoded.add(leaf.id)


class CodecSymmetry(Rule):
    code = "RPL005"
    name = "codec-symmetry"
    rationale = (
        "every FRAME_* constant needs both an encode use and a decode "
        "branch; every wire Struct needs pack+unpack (or a containing "
        "composition) and an explicit byte order"
    )

    def check(self, project):
        for source in project.files:
            structs = _struct_defs(source.tree)
            if not structs:
                continue
            frames = _frame_defs(source.tree)
            usage = _Usage(source.tree, structs, frames)
            yield from self._check_frames(source, frames, usage)
            yield from self._check_structs(source, structs, usage)

    def _check_frames(self, source, frames, usage):
        # comparisons count as encode uses too (`type_ == FRAME_X` also
        # appears where the encoder selects a type), so only require
        # presence on each side, not exclusivity
        for name in sorted(frames):
            node = frames[name]
            if name not in usage.encoded and name not in usage.decoded:
                yield self.finding(
                    source.path,
                    node,
                    f"frame type {name} is defined but never used by "
                    f"an encoder or decoder",
                )
            elif name not in usage.encoded:
                yield self.finding(
                    source.path,
                    node,
                    f"frame type {name} is matched by a decoder but "
                    f"never emitted by any encoder",
                )
            elif name not in usage.decoded:
                yield self.finding(
                    source.path,
                    node,
                    f"frame type {name} is emitted by an encoder but "
                    f"no decoder branch matches it; peers cannot read "
                    f"these frames",
                )

    def _check_structs(self, source, structs, usage):
        stripped = {name: _strip_order(fmt) for name, (fmt, _) in structs.items()}
        for name in sorted(structs):
            fmt, node = structs[name]
            if not fmt or fmt[0] not in _BYTE_ORDER[:3]:
                yield self.finding(
                    source.path,
                    node,
                    f"struct {name} format {fmt!r} does not pin an "
                    f"explicit byte order (<, > or !); native order "
                    f"and padding vary across machines",
                )
            packed = name in usage.packs
            unpacked = name in usage.unpacks
            if packed == unpacked:
                # used on both sides, or entirely unused (the frame
                # checks already cover unused constants' real damage)
                continue
            if self._composed(name, stripped):
                continue
            side, missing = ("packed", "unpack") if packed else ("unpacked", "pack")
            yield self.finding(
                source.path,
                node,
                f"struct {name} ({fmt!r}) is {side} but never "
                f"{missing}ed in this file, and no other struct's "
                f"format contains it; encoder and decoder layouts "
                f"can drift apart",
            )

    @staticmethod
    def _composed(name: str, stripped: dict) -> bool:
        """One-sided use is fine when the layout is (part of) another
        struct's layout — the other side handles it fused/split."""
        fmt = stripped[name]
        for other, other_fmt in stripped.items():
            if other == name:
                continue
            if fmt in other_fmt or other_fmt in fmt:
                return True
        return False
