"""Back-compat shim — the event loop moved to :mod:`repro.api.transport`.

PR 4 introduced ``FleetEventLoop`` here as a fleet-only transport; the
unified transport core generalized it into
:class:`repro.api.transport.EventLoopServer`, which serves any
:class:`repro.api.transport.RequestEngine` (single-model or fleet).
This module keeps the old import path and constructor signature alive
for embedders; new code should use the transport module directly.
Importing it emits a :class:`DeprecationWarning` — the shim will be
removed once nothing imports it.
"""

from __future__ import annotations

import socket
import warnings

from repro.api.transport import (  # noqa: F401  (re-exports)
    RECV_BYTES,
    EventLoopServer,
    RequestEngine,
    _prediction_frame,
)

warnings.warn(
    "repro.api.fleet.eventloop is deprecated; use "
    "repro.api.transport.EventLoopServer (with a RequestEngine) instead",
    DeprecationWarning,
    stacklevel=2,
)


class FleetEventLoop(EventLoopServer):
    """Deprecated alias: an :class:`EventLoopServer` over a fleet.

    Preserves the PR 4 contract that the listener's lifetime belongs
    to the caller: :meth:`stop` does not close it.
    """

    def __init__(self, fleet, listener: socket.socket,
                 workers: int = 4, max_batch: int = 64) -> None:
        super().__init__(RequestEngine(fleet), listener,
                         workers=workers, max_batch=max_batch,
                         close_listener=False)
        self.fleet = fleet
