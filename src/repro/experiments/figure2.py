"""Figure 2: classification accuracy vs energy-tolerance threshold.

Left panel: ``static-agg``, ``static-opt``, ``dynamic``, ``dynamic-opt``
against the naive ``always-8`` policy.  Right panel: the static
feature-set exploration (``static-raw+mca``, ``static-agg``,
``static-agg+mca``, ``static-opt``).

This driver is a thin client of :mod:`repro.api`: every learned series
is one :func:`repro.api.evaluate_features` call, the baseline series is
the registered ``always-k`` model family, and the ``*-opt`` series
prune their base sets through :func:`repro.api.optimised_set`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import (
    Classifier,
    ReproConfig,
    evaluate_features,
    optimised_set,
)
from repro.api.config import DEFAULT_TOLERANCES, cv_repeats
from repro.dataset.build import Dataset
from repro.dataset.table import ColumnTable
from repro.errors import ExperimentError
from repro.features.sets import feature_names

PANELS: dict[str, tuple[str, ...]] = {
    "left": ("static-agg", "static-opt", "dynamic", "dynamic-opt",
             "always-8"),
    "right": ("static-raw+mca", "static-agg", "static-agg+mca",
              "static-opt"),
}

#: which base set each ``*-opt`` series prunes.
_OPT_BASES = {"static-opt": "static-all", "dynamic-opt": "dynamic"}


@dataclass
class Figure2Result:
    """Accuracy-vs-tolerance series for one panel."""

    panel: str
    tolerances: tuple
    series: dict = field(default_factory=dict)       # name -> [accuracy]
    opt_features: dict = field(default_factory=dict)  # name -> kept list

    def accuracy_at(self, series_name: str, tolerance: int) -> float:
        curve = self.series[series_name]
        return curve[self.tolerances.index(tolerance)]

    def render(self) -> str:
        table = ColumnTable(["tol%"] + list(self.series))
        for i, tol in enumerate(self.tolerances):
            table.add_row(tol, *[self.series[name][i]
                                 for name in self.series])
        lines = [f"Figure 2 ({self.panel} panel): accuracy vs energy "
                 f"tolerance", table.render()]
        for name, kept in self.opt_features.items():
            lines.append(f"{name} keeps {len(kept)} features: "
                         f"{', '.join(kept)}")
        return "\n".join(lines)


def _series_curve(dataset: Dataset, names: list[str], tolerances,
                  n_splits: int, repeats: int, seed: int) -> list[float]:
    report = evaluate_features(dataset, names, tolerances=tolerances,
                               n_splits=n_splits, repeats=repeats,
                               seed=seed)
    return report.curve


def _baseline_curve(dataset: Dataset, k: int, tolerances,
                    n_splits: int, repeats: int) -> list[float]:
    baseline = Classifier(ReproConfig(model="always-k",
                                      model_params={"k": k}))
    report = baseline.evaluate(dataset, tolerances=tolerances,
                               n_splits=n_splits, repeats=repeats,
                               feature_names=[])
    return report.curve


def run_figure2(dataset: Dataset, panel: str = "left",
                tolerances=DEFAULT_TOLERANCES, n_splits: int = 10,
                repeats: int | None = None, seed: int = 0) -> Figure2Result:
    """Regenerate one panel of Figure 2 on *dataset*."""
    if panel not in PANELS:
        raise ExperimentError(f"unknown panel {panel!r}; "
                              f"expected one of {sorted(PANELS)}")
    repeats = repeats if repeats is not None else cv_repeats()
    result = Figure2Result(panel=panel, tolerances=tuple(tolerances))

    for series_name in PANELS[panel]:
        if series_name == "always-8":
            curve = _baseline_curve(dataset, 8, tolerances, n_splits,
                                    repeats)
        elif series_name in _OPT_BASES:
            base = feature_names(_OPT_BASES[series_name])
            kept = optimised_set(dataset, base, n_splits=n_splits,
                                 repeats=max(3, repeats // 2), seed=seed)
            result.opt_features[series_name] = kept
            curve = _series_curve(dataset, kept, tolerances, n_splits,
                                  repeats, seed)
        else:
            curve = _series_curve(dataset, feature_names(series_name),
                                  tolerances, n_splits, repeats, seed)
        result.series[series_name] = curve
    return result
