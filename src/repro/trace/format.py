"""Trace line format.

One event per line::

    <cycle> <component-path> <payload>

with component paths mirroring the GVSOC hierarchy the paper's listeners
subscribe to:

* ``cluster/pe<i>/insn``  — an issued instruction (mnemonic + operand);
* ``cluster/pe<i>/trace`` — core state changes: ``cg_enter``/``cg_exit``
  (clock gating) and ``stall <n>`` (active-wait cycles);
* ``cluster/l1/bank<j>/trace`` — ``read``/``write``/``conflict``;
* ``cluster/l2/bank<j>/trace`` — same for L2 banks;
* ``cluster/icache/trace`` — ``refill n=<lines>``;
* ``cluster/kernel/trace`` — ``begin``/``end`` markers of the measured
  region (the paper's ``void kernel(...)`` window).
"""

from __future__ import annotations

import re

from repro.errors import TraceError

TRACE_LINE_RE = re.compile(r"^(\d+)\s+([\w/]+)\s+(.+)$")


def format_line(cycle: int, path: str, payload: str) -> str:
    return f"{cycle} {path} {payload}"


def parse_line(line: str) -> tuple[int, str, str]:
    """Split a trace line into ``(cycle, path, payload)``."""
    match = TRACE_LINE_RE.match(line.strip())
    if match is None:
        raise TraceError(f"malformed trace line: {line!r}")
    return int(match.group(1)), match.group(2), match.group(3)


def pe_insn_path(core: int) -> str:
    return f"cluster/pe{core}/insn"


def pe_state_path(core: int) -> str:
    return f"cluster/pe{core}/trace"


def l1_bank_path(bank: int) -> str:
    return f"cluster/l1/bank{bank}/trace"


def l2_bank_path(bank: int) -> str:
    return f"cluster/l2/bank{bank}/trace"


ICACHE_PATH = "cluster/icache/trace"
DMA_PATH = "cluster/dma/trace"
KERNEL_PATH = "cluster/kernel/trace"
