"""Tests for the unified transport core, sharding and pipelining.

Covers the ISSUE 5 acceptance surface: byte-identical frames across
the stdio / threaded-daemon / event-loop serving paths, the
``{"cmd": "stats"}`` verb, the pipelined client (bounded in-flight
window, out-of-order completion, typed error frames mid-pipeline,
reconnect-with-resend), and process-level sharding (1 vs N shard
byte-identity, crash -> retry lands on a live shard, registry
lifecycle, SO_REUSEPORT TCP).
"""

import functools
import io
import json
import os
import socket
import threading
import time

import pytest

from repro.api import (
    AdminClient,
    Classifier,
    ModelFleet,
    ReproConfig,
    RequestEngine,
    ScoringClient,
    ScoringDaemon,
    ShardManager,
    classifier_factory,
    serve,
)
from repro.api.client import DEFAULT_PIPELINE_WINDOW
from repro.api.shard import read_registry, shard_socket_path
from repro.api.transport import LineSplitter
from repro.errors import DaemonError, ScoringError


@pytest.fixture()
def trained(tiny_dataset) -> Classifier:
    return Classifier(ReproConfig(profile="unit")).train(tiny_dataset)


@pytest.fixture()
def unix_path(tmp_path) -> str:
    return str(tmp_path / "repro.sock")


@pytest.fixture()
def artifact(trained, tmp_path) -> str:
    path = str(tmp_path / "model.json")
    trained.save(path)
    return path


def _raw_exchange(sock_path: str, lines: list) -> list:
    """Send raw protocol lines over one connection; return raw frames."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30.0)
    sock.connect(sock_path)
    frames = []
    with sock:
        reader = sock.makefile("rb")
        for line in lines:
            sock.sendall((line + "\n").encode("utf-8"))
            frames.append(reader.readline())
    return frames


def _request_lines(trained, tiny_dataset) -> list:
    X = tiny_dataset.matrix(trained.feature_names_)
    mapping = dict(zip(trained.feature_names_, map(float, X[0])))
    return [
        json.dumps({"features": list(map(float, X[0])), "id": 1}),
        json.dumps({"features": mapping, "id": 2}),
        json.dumps({"rows": X[:4].tolist(), "id": 3}),
        json.dumps({"cmd": "info", "id": 4}),
        "this is not json",
        json.dumps({"features": {"bogus": 1.0}, "id": 5}),
        json.dumps({"cmd": "frobnicate", "id": 6}),
        json.dumps({"features": list(map(float, X[1]))}),  # no id
    ]


class TestByteIdenticalAcrossTransports:
    def test_three_serving_paths_emit_identical_frames(
            self, trained, tiny_dataset, tmp_path):
        """Acceptance: stdio, threaded daemon and event-loop daemon all
        dispatch through the shared engine and answer byte-identical
        frames for the same request lines."""
        lines = _request_lines(trained, tiny_dataset)

        # (a) stdio
        out = io.StringIO()
        serve(trained, io.StringIO("\n".join(lines) + "\n"), out)
        stdio_frames = [(f + "\n").encode("utf-8")
                        for f in out.getvalue().splitlines()]

        # (b) threaded daemon (single-model mode)
        threaded_path = str(tmp_path / "threaded.sock")
        with ScoringDaemon(trained, socket_path=threaded_path,
                           workers=2):
            threaded_frames = _raw_exchange(threaded_path, lines)

        # (c) event-loop daemon (fleet mode, same pinned model)
        fleet_path = str(tmp_path / "fleet.sock")
        fleet = ModelFleet(default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=fleet_path,
                           workers=2):
            fleet_frames = _raw_exchange(fleet_path, lines)

        assert stdio_frames == threaded_frames
        assert threaded_frames == fleet_frames
        # sanity: the lines exercised success, error and id-less paths
        decoded = [json.loads(f) for f in stdio_frames]
        assert [f["ok"] for f in decoded] == \
            [True, True, True, True, False, False, False, True]

    def test_engine_process_raw_matches_process_line(
            self, trained, tiny_dataset):
        engine = RequestEngine(trained)
        for line in _request_lines(trained, tiny_dataset):
            assert engine.process_raw(line.encode("utf-8")) == \
                engine.process_line(line + "\n")
        assert engine.process_raw(b"   ") is None
        assert engine.process_line("   \n") is None


class TestLineSplitter:
    def test_split_and_partials(self):
        splitter = LineSplitter()
        assert splitter.feed(b'{"a": 1}\n{"b"') == [b'{"a": 1}']
        assert splitter.feed(b": 2}\n") == [b'{"b": 2}']
        assert not splitter.overflowed

    def test_overflow_flag(self):
        splitter = LineSplitter(max_bytes=8)
        assert splitter.feed(b"0123456789without-newline") == []
        assert splitter.overflowed

    def test_many_lines_in_one_chunk(self):
        splitter = LineSplitter()
        assert splitter.feed(b"a\nb\nc\n") == [b"a", b"b", b"c"]


class TestStatsVerb:
    def test_stdio_stats(self, trained):
        out = io.StringIO()
        serve(trained, io.StringIO('{"cmd": "stats", "id": 9}\n'), out)
        frame = json.loads(out.getvalue())
        assert frame["ok"] is True and frame["id"] == 9
        assert isinstance(frame["stats"], dict)

    def test_threaded_daemon_stats(self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=2):
            with ScoringClient(socket_path=unix_path) as client:
                client.info()
                stats = AdminClient(client).stats()
        server = stats["server"]
        assert server["transport"] == "threads"
        assert server["requests_served"] >= 1
        assert server["connections_served"] >= 0
        assert "fleet" not in stats

    def test_fleet_daemon_stats_carry_pool_and_loop(
            self, trained, tiny_dataset, unix_path):
        X = tiny_dataset.matrix(trained.feature_names_)
        fleet = ModelFleet(default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path,
                           workers=2):
            with ScoringClient(socket_path=unix_path) as client:
                client.predict(list(map(float, X[0])))
                stats = AdminClient(client).stats()
        assert stats["server"]["transport"] == "eventloop"
        assert stats["server"]["fast_rows"] >= 1
        assert "mean_fast_batch" in stats["server"]
        pool = stats["fleet"]["pool"]
        assert pool["resident_models"] == 1
        assert "evictions" in pool
        # the engine's stats verb counts itself once answered
        assert stats["server"]["requests_served"] >= 1


class _FakeServer:
    """A scripted one-connection-at-a-time server for client tests."""

    def __init__(self, unix_path: str, session) -> None:
        self.listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.listener.bind(unix_path)
        self.listener.listen(2)
        self.errors: list = []

        def run() -> None:
            try:
                session(self.listener)
            except Exception as exc:  # surfaced by the test
                self.errors.append(exc)

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()

    def close(self) -> None:
        self.listener.close()
        self.thread.join(timeout=10)


def _read_lines(conn, n: int) -> list:
    reader = conn.makefile("rb")
    return [json.loads(reader.readline()) for _ in range(n)]


class TestPipelinedClient:
    def test_out_of_order_completion(self, unix_path):
        """Responses arriving in reverse order still pair by id."""
        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                requests = _read_lines(conn, 3)
                for request in reversed(requests):
                    conn.sendall((json.dumps(
                        {"ok": True, "id": request["id"],
                         "echo": request["n"]}) + "\n").encode())

        server = _FakeServer(unix_path, session)
        try:
            with ScoringClient(socket_path=unix_path) as client:
                frames = client.request_pipelined(
                    [{"n": i} for i in range(3)], window=3)
            assert [f["echo"] for f in frames] == [0, 1, 2]
        finally:
            server.close()
        assert not server.errors

    def test_window_bounds_in_flight_requests(self, unix_path):
        """With window=2 the third request is only sent after a
        response frees a slot."""
        observed: dict = {}

        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                reader = conn.makefile("rb")
                first = [json.loads(reader.readline())
                         for _ in range(2)]
                # the client is now blocked: nothing else may arrive
                conn.settimeout(0.4)
                try:
                    extra = conn.recv(1)
                except socket.timeout:
                    extra = b""
                observed["extra_before_reply"] = extra
                conn.settimeout(30.0)
                conn.sendall((json.dumps(
                    {"ok": True, "id": first[0]["id"]}) + "\n").encode())
                third = json.loads(reader.readline())
                for request in (first[1], third):
                    conn.sendall((json.dumps(
                        {"ok": True, "id": request["id"]}) + "\n"
                    ).encode())

        server = _FakeServer(unix_path, session)
        try:
            with ScoringClient(socket_path=unix_path) as client:
                frames = client.request_pipelined(
                    [{"n": i} for i in range(3)], window=2)
            assert len(frames) == 3
            assert observed["extra_before_reply"] == b""
        finally:
            server.close()
        assert not server.errors

    def test_error_frames_mid_pipeline(self, trained, tiny_dataset,
                                       unix_path):
        """A typed error frame answers its own request and the rest of
        the pipeline completes; predict_pipelined raises the code."""
        X = tiny_dataset.matrix(trained.feature_names_)
        good = {"features": list(map(float, X[0]))}
        bad = {"features": {"bogus": 1.0}}
        fleet = ModelFleet(default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path,
                           workers=2):
            with ScoringClient(socket_path=unix_path) as client:
                frames = client.request_pipelined(
                    [good, bad, good, bad, good], window=4)
                assert [f["ok"] for f in frames] == \
                    [True, False, True, False, True]
                assert frames[1]["code"] == "bad_request"
                assert frames[0]["prediction"] == \
                    trained.predict(X[0])
                with pytest.raises(ScoringError) as excinfo:
                    client.predict_pipelined([list(map(float, X[0])),
                                              {"bogus": 1.0}])
                assert excinfo.value.code == "bad_request"

    def test_reconnect_resends_unanswered(self, unix_path):
        """EOF mid-pipeline: the client reconnects and resends every
        request still unanswered (idempotent reads)."""
        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                requests = _read_lines(conn, 2)
                conn.sendall((json.dumps(
                    {"ok": True, "id": requests[0]["id"],
                     "echo": requests[0]["n"]}) + "\n").encode())
                # drop the connection with request 1 unanswered and
                # requests 2..4 unsent or in flight
            conn2, _ = listener.accept()
            with conn2:
                reader = conn2.makefile("rb")
                answered = 0
                while answered < 4:
                    request = json.loads(reader.readline())
                    conn2.sendall((json.dumps(
                        {"ok": True, "id": request["id"],
                         "echo": request["n"]}) + "\n").encode())
                    answered += 1

        server = _FakeServer(unix_path, session)
        try:
            with ScoringClient(socket_path=unix_path,
                               reconnect_retries=1) as client:
                frames = client.request_pipelined(
                    [{"n": i} for i in range(5)], window=2)
            assert [f["echo"] for f in frames] == [0, 1, 2, 3, 4]
        finally:
            server.close()
        assert not server.errors

    def test_exhausted_retries_raise_transport(self, unix_path):
        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                _read_lines(conn, 1)
            # EOF; no second accept with a useful reply
            conn2, _ = listener.accept()
            conn2.close()

        server = _FakeServer(unix_path, session)
        try:
            with ScoringClient(socket_path=unix_path,
                               reconnect_retries=1) as client:
                with pytest.raises(ScoringError) as excinfo:
                    client.request_pipelined([{"n": 0}, {"n": 1}],
                                             window=2)
            assert excinfo.value.code == "transport"
        finally:
            server.close()

    def test_idless_error_frame_surfaces_daemon_code(self, unix_path):
        """An error frame without an id (e.g. the server's flood
        guard) raises with the daemon's code, not a spurious
        id_mismatch, and tears the unusable stream down."""
        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                # drain both requests before answering, and half-close
                # instead of closing, so no RST can race ahead of the
                # response and discard it from the client's buffer
                _read_lines(conn, 2)
                conn.sendall(b'{"ok": false, "code": "too_large", '
                             b'"error": "request line exceeds ..."}\n')
                conn.shutdown(socket.SHUT_WR)
                try:
                    conn.recv(65536)  # wait for the client's close
                except OSError:
                    pass

        server = _FakeServer(unix_path, session)
        try:
            with ScoringClient(socket_path=unix_path,
                               reconnect_retries=0) as client:
                with pytest.raises(ScoringError) as excinfo:
                    client.request_pipelined([{"n": 0}, {"n": 1}],
                                             window=2)
            assert excinfo.value.code == "too_large"
        finally:
            server.close()

    def test_unknown_response_id_is_desync(self, unix_path):
        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                _read_lines(conn, 1)
                conn.sendall(b'{"ok": true, "id": 424242}\n')

        server = _FakeServer(unix_path, session)
        try:
            with ScoringClient(socket_path=unix_path) as client:
                with pytest.raises(ScoringError) as excinfo:
                    client.request_pipelined([{"n": 0}], window=1)
            assert excinfo.value.code == "id_mismatch"
        finally:
            server.close()

    def test_window_validation_and_empty_input(self, unix_path,
                                               trained):
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            with ScoringClient(socket_path=unix_path) as client:
                assert client.request_pipelined([]) == []
                with pytest.raises(ScoringError):
                    client.request_pipelined([{"n": 0}], window=0)
        assert DEFAULT_PIPELINE_WINDOW >= 1

    def test_pipelined_matches_sequential_against_daemon(
            self, trained, tiny_dataset, unix_path):
        X = tiny_dataset.matrix(trained.feature_names_)
        rows = [list(map(float, row)) for row in X] * 3
        expected = [int(trained.predict(row)) for row in rows]
        fleet = ModelFleet(default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path,
                           workers=2):
            with ScoringClient(socket_path=unix_path) as client:
                assert client.predict_pipelined(rows,
                                                window=8) == expected


class TestClientResponseBound:
    def test_newline_less_flood_raises_cleanly(self, unix_path,
                                               monkeypatch):
        import repro.api.client as client_mod
        monkeypatch.setattr(client_mod, "MAX_RESPONSE_BYTES", 4096)

        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                conn.makefile("rb").readline()
                conn.sendall(b"x" * 65536)  # no newline anywhere

        server = _FakeServer(unix_path, session)
        try:
            client = ScoringClient(socket_path=unix_path,
                                   reconnect_retries=0)
            with pytest.raises(ScoringError,
                               match="without a newline") as excinfo:
                client.request({"cmd": "info"})
            assert excinfo.value.code == "transport"
            client.close()
        finally:
            server.close()


class TestSharded:
    def _rows(self, trained, tiny_dataset, reps: int = 4) -> tuple:
        X = tiny_dataset.matrix(trained.feature_names_)
        rows = [list(map(float, row)) for row in X] * reps
        expected = [int(trained.predict(row)) for row in rows]
        return rows, expected

    def test_byte_identical_across_shard_counts(
            self, trained, tiny_dataset, artifact, tmp_path):
        """Acceptance: the same rows score identically through 1 and 2
        shards (and match the local classifier)."""
        rows, expected = self._rows(trained, tiny_dataset)
        factory = functools.partial(classifier_factory, artifact)
        results = {}
        for n_shards in (1, 2):
            base = str(tmp_path / f"shards{n_shards}.sock")
            with ShardManager(factory, shards=n_shards,
                              socket_path=base, workers=2):
                with ScoringClient(socket_path=base) as client:
                    results[n_shards] = client.predict_pipelined(
                        rows, window=8)
        assert results[1] == expected
        assert results[2] == expected

    def test_registry_lifecycle_and_per_shard_stats(
            self, trained, tiny_dataset, artifact, tmp_path):
        rows, expected = self._rows(trained, tiny_dataset, reps=1)
        base = str(tmp_path / "fleet.sock")
        factory = functools.partial(classifier_factory, artifact)
        manager = ShardManager(factory, shards=2, socket_path=base,
                               workers=2)
        with manager:
            registry = read_registry(base)
            assert [s["index"] for s in registry] == [0, 1]
            assert sorted(s["pid"] for s in registry) == \
                sorted(manager.pids)
            # per-shard stats: query each shard socket directly
            seen = []
            for row in registry:
                with ScoringClient(socket_path=row["path"]) as client:
                    assert client.predict(rows[0]) == expected[0]
                    stats = AdminClient(client).stats()
                    assert stats["shard"]["pid"] == row["pid"]
                    assert stats["server"]["requests_served"] >= 1
                    seen.append(stats["shard"]["index"])
            assert seen == [0, 1]
        assert not os.path.exists(base)
        for i in range(2):
            assert not os.path.exists(shard_socket_path(base, i))

    def test_shard_crash_retry_lands_on_live_shard(
            self, trained, tiny_dataset, artifact, tmp_path):
        """Acceptance: kill the shard a client is connected to; its
        next (retried) request is served by a surviving shard."""
        rows, expected = self._rows(trained, tiny_dataset, reps=1)
        base = str(tmp_path / "crash.sock")
        factory = functools.partial(classifier_factory, artifact)
        with ShardManager(factory, shards=2, socket_path=base,
                          workers=2) as manager:
            with ScoringClient(socket_path=base) as client:
                victim = AdminClient(client).stats()["shard"]["index"]
                os.kill(manager.pids[victim], 9)
                deadline = time.monotonic() + 10
                while manager.alive()[victim] and \
                        time.monotonic() < deadline:
                    time.sleep(0.05)
                assert client.predict(rows[0]) == expected[0]
                survivor = AdminClient(client).stats()["shard"]["index"]
                assert survivor != victim

    def test_tcp_shards_share_one_port(self, trained, tiny_dataset,
                                       artifact):
        rows, expected = self._rows(trained, tiny_dataset, reps=1)
        factory = functools.partial(classifier_factory, artifact)
        if not hasattr(socket, "SO_REUSEPORT"):
            pytest.skip("platform without SO_REUSEPORT")
        with ShardManager(factory, shards=2, tcp=("127.0.0.1", 0),
                          workers=2) as manager:
            kind, host, port = manager.address
            assert kind == "tcp" and port > 0
            with ScoringClient(tcp=(host, port)) as client:
                assert client.predict_pipelined(rows) == expected
                assert AdminClient(client).stats()["shard"]["index"] \
                    in (0, 1)

    def test_shard_that_dies_during_startup_fails_fast(self, tmp_path):
        """A factory that raises (missing artifact) must fail start()
        within seconds, not after the full start_timeout."""
        factory = functools.partial(classifier_factory,
                                    str(tmp_path / "missing.json"))
        manager = ShardManager(factory, shards=1,
                               socket_path=str(tmp_path / "x.sock"),
                               start_timeout=120.0)
        start = time.monotonic()
        with pytest.raises(DaemonError, match="died during startup"):
            manager.start()
        assert time.monotonic() - start < 30

    def test_validation(self, artifact):
        factory = functools.partial(classifier_factory, artifact)
        with pytest.raises(DaemonError, match="shards"):
            ShardManager(factory, shards=0, socket_path="/tmp/x.sock")
        with pytest.raises(DaemonError, match="exactly one"):
            ShardManager(factory, shards=2)
        with pytest.raises(DaemonError, match="exactly one"):
            ShardManager(factory, shards=2, socket_path="/tmp/x.sock",
                         tcp=("127.0.0.1", 0))

    def test_live_registry_is_not_stolen(self, trained, tiny_dataset,
                                         artifact, tmp_path):
        base = str(tmp_path / "taken.sock")
        factory = functools.partial(classifier_factory, artifact)
        with ShardManager(factory, shards=1, socket_path=base,
                          workers=1):
            second = ShardManager(factory, shards=1, socket_path=base,
                                  workers=1)
            with pytest.raises(DaemonError, match="live shard"):
                second.start()

    def test_stale_registry_is_reclaimed(self, artifact, tmp_path):
        base = str(tmp_path / "stale.sock")
        with open(base, "w") as handle:
            json.dump({"repro_shards": 1, "base": base,
                       "shards": [{"index": 0, "path": base + ".0",
                                   "pid": 2 ** 22 + 12345}]}, handle)
        factory = functools.partial(classifier_factory, artifact)
        with ShardManager(factory, shards=1, socket_path=base,
                          workers=1):
            assert read_registry(base)  # fresh registry written over
        assert not os.path.exists(base)

    def test_unrelated_file_is_refused(self, artifact, tmp_path):
        base = str(tmp_path / "file.sock")
        with open(base, "w") as handle:
            handle.write("precious data\n")
        factory = functools.partial(classifier_factory, artifact)
        manager = ShardManager(factory, shards=1, socket_path=base)
        with pytest.raises(DaemonError, match="refusing"):
            manager.start()
        assert open(base).read() == "precious data\n"


class TestUnterminatedFinalLine:
    def _half_close_exchange(self, sock_path: str, payload: bytes):
        """Send *payload* with no trailing newline, half-close, read."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(sock_path)
        with sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            return sock.makefile("rb").readline()

    @pytest.mark.parametrize("mode", ["threads", "eventloop"])
    def test_final_line_without_newline_is_answered(
            self, trained, mode, unix_path):
        """A client that half-closes after an unterminated final line
        still gets its response (PR 3 makefile behaviour, preserved
        by both socket transports and matching stdio)."""
        kwargs = ({"classifier": trained} if mode == "threads"
                  else {"fleet": ModelFleet(default=trained)})
        with ScoringDaemon(socket_path=unix_path, workers=2, **kwargs):
            frame = json.loads(self._half_close_exchange(
                unix_path, b'{"cmd": "info", "id": 7}'))
        assert frame["ok"] is True and frame["id"] == 7

    @pytest.mark.parametrize("mode", ["threads", "eventloop"])
    def test_half_close_after_terminated_slow_request_is_answered(
            self, trained, tiny_dataset, mode, unix_path):
        """shutdown(SHUT_WR) right after a newline-terminated worker-
        pool request: the response must still be written before the
        connection closes (the event loop defers the close until every
        outstanding answer is staged and flushed)."""
        X = tiny_dataset.matrix(trained.feature_names_)
        kwargs = ({"classifier": trained} if mode == "threads"
                  else {"fleet": ModelFleet(default=trained)})
        payload = json.dumps({"rows": X[:4].tolist(), "id": 11}) + "\n"
        with ScoringDaemon(socket_path=unix_path, workers=2, **kwargs):
            frame = json.loads(self._half_close_exchange(
                unix_path, payload.encode("utf-8")))
        assert frame["ok"] is True and frame["id"] == 11
        assert frame["predictions"] == \
            [int(p) for p in trained.predict_batch(X[:4])]

    def test_half_close_after_fast_row_is_answered(
            self, trained, tiny_dataset, unix_path):
        """Same for a coalescible fast-path row on the event loop."""
        X = tiny_dataset.matrix(trained.feature_names_)
        payload = json.dumps(
            {"features": list(map(float, X[0])), "id": 12}) + "\n"
        fleet = ModelFleet(default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path,
                           workers=2):
            frame = json.loads(self._half_close_exchange(
                unix_path, payload.encode("utf-8")))
        assert frame == {"ok": True, "id": 12,
                         "prediction": trained.predict(X[0])}


class TestClientRedialsAfterDesync:
    def test_request_after_pipeline_desync_reconnects(self, trained,
                                                      unix_path,
                                                      tmp_path):
        """A desync teardown leaves the client usable: the next
        request dials a fresh connection instead of failing on the
        closed socket forever."""
        bad_path = str(tmp_path / "bad.sock")

        def session(listener) -> None:
            conn, _ = listener.accept()
            with conn:
                _read_lines(conn, 1)
                conn.sendall(b'{"ok": true, "id": 424242}\n')

        server = _FakeServer(bad_path, session)
        client = ScoringClient(socket_path=bad_path)
        try:
            with pytest.raises(ScoringError):
                client.request_pipelined([{"n": 0}], window=1)
            # swap a real daemon behind the same endpoint: the client
            # must redial and serve normally
            server.close()
            os.unlink(bad_path)
            with ScoringDaemon(trained, socket_path=bad_path,
                               workers=1):
                assert client.info()["model_family"] == "tree"
        finally:
            client.close()
            server.close()


class TestClientTimeoutTeardown:
    def test_timeout_tears_down_and_next_request_redials(
            self, unix_path):
        """A recv timeout leaves queued responses untrusted: the
        connection is torn down and the next request dials fresh
        instead of reading a stale frame."""
        def session(listener) -> None:
            conn, _ = listener.accept()
            _read_lines(conn, 1)  # never answered; conn held open
            conn2, _ = listener.accept()
            with conn2:
                request = _read_lines(conn2, 1)[0]
                conn2.sendall((json.dumps(
                    {"ok": True, "id": request["id"],
                     "late": False}) + "\n").encode())
            conn.close()

        server = _FakeServer(unix_path, session)
        try:
            client = ScoringClient(socket_path=unix_path, timeout=0.5,
                                   reconnect_retries=0)
            with pytest.raises(ScoringError) as excinfo:
                client.request({"n": 0})
            assert excinfo.value.code == "transport"
            assert client.request({"n": 1})["late"] is False
            client.close()
        finally:
            server.close()


class TestLegacyServeScorer:
    def test_duck_typed_process_line_scorer_still_serves(self):
        """PR 4's documented extension point: serve() drives an object
        exposing only process_line(line)."""
        class Echo:
            def process_line(self, line: str):
                line = line.strip()
                if not line:
                    return None
                return json.dumps({"ok": True, "echo": line}) + "\n"

        out = io.StringIO()
        handled = serve(Echo(), io.StringIO('hello\n\nworld\n'), out)
        assert handled == 2
        frames = [json.loads(f) for f in out.getvalue().splitlines()]
        assert [f["echo"] for f in frames] == ["hello", "world"]


class TestCliShards:
    def test_shards_require_daemon_endpoint(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["serve", "--shards", "2"])
        with pytest.raises(SystemExit):
            main(["serve", "--shards", "0", "--socket", "/tmp/x.sock"])
