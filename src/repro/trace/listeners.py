"""Listener hierarchy rebuilding platform state from trace events.

The paper's trace-analysis software consists of a hierarchical set of
listeners aggregated in a ``PULPListeners`` class (8 core listeners, 16
L1-bank listeners, 32 L2-bank listeners), each registering the component
path it wants to observe.  We reproduce that structure; each listener
accumulates the counters its component contributes to the energy model
and to the dynamic features of paper Table III.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.isa.encoding import parse_instr
from repro.isa.opcodes import (
    OP_ALU,
    OP_DIV,
    OP_DMA,
    OP_FDIV,
    OP_FP,
    OP_JMP,
    OP_LD,
    OP_LD2,
    OP_LOCK,
    OP_NOP,
    OP_ST,
    OP_ST2,
    OP_UNLOCK,
)
from repro.sim.counters import BankCounters, ClusterCounters, CoreCounters
from repro.trace.format import (
    DMA_PATH,
    ICACHE_PATH,
    l1_bank_path,
    l2_bank_path,
    pe_insn_path,
    pe_state_path,
)


class CoreListener:
    """Tracks one processing element's opcode mix and power states."""

    def __init__(self, core: int) -> None:
        self.core = core
        self.counters = CoreCounters()
        self._cg_entered_at: int | None = None

    def paths(self) -> list[str]:
        return [pe_insn_path(self.core), pe_state_path(self.core)]

    def on_event(self, cycle: int, path: str, payload: str) -> None:
        if path.endswith("/insn"):
            self._on_insn(payload)
        else:
            self._on_state(cycle, payload)

    def _on_insn(self, payload: str) -> None:
        op, arg = parse_instr(payload)
        counters = self.counters
        if op == OP_ALU:
            counters.alu_ops += arg
        elif op == OP_FP:
            counters.fp_ops += arg
        elif op in (OP_LD, OP_ST, OP_LOCK, OP_UNLOCK):
            counters.l1_ops += 1
        elif op in (OP_LD2, OP_ST2):
            counters.l2_ops += 1
        elif op == OP_JMP:
            counters.jump_ops += arg
        elif op == OP_NOP:
            counters.nop_ops += arg
        elif op == OP_DIV:
            counters.div_ops += arg
        elif op == OP_FDIV:
            counters.fpdiv_ops += arg
        elif op == OP_DMA:
            counters.alu_ops += 1  # the descriptor write
        else:  # pragma: no cover - parse_instr rejects unknown mnemonics
            raise TraceError(f"unexpected opcode {op} in insn trace")

    def _on_state(self, cycle: int, payload: str) -> None:
        if payload == "cg_enter":
            if self._cg_entered_at is not None:
                raise TraceError(
                    f"core {self.core}: nested cg_enter at cycle {cycle}")
            self._cg_entered_at = cycle
        elif payload == "cg_exit":
            if self._cg_entered_at is None:
                raise TraceError(
                    f"core {self.core}: cg_exit without cg_enter at "
                    f"cycle {cycle}")
            self.counters.cg_cycles += cycle - self._cg_entered_at
            self._cg_entered_at = None
        elif payload.startswith("stall"):
            try:
                self.counters.stall_cycles += int(payload.split()[1])
            except (IndexError, ValueError) as exc:
                raise TraceError(f"malformed stall event {payload!r}") from exc
        else:
            raise TraceError(f"unknown core state event {payload!r}")


class _BankListener:
    """Shared implementation for L1 and L2 bank listeners."""

    def __init__(self, bank: int, path: str) -> None:
        self.bank = bank
        self._path = path
        self.counters = BankCounters()

    def paths(self) -> list[str]:
        return [self._path]

    def on_event(self, cycle: int, path: str, payload: str) -> None:
        if payload == "read":
            self.counters.reads += 1
        elif payload == "write":
            self.counters.writes += 1
        elif payload == "conflict":
            self.counters.conflicts += 1
        else:
            raise TraceError(f"unknown bank event {payload!r}")


class L1BankListener(_BankListener):
    def __init__(self, bank: int) -> None:
        super().__init__(bank, l1_bank_path(bank))


class L2BankListener(_BankListener):
    def __init__(self, bank: int) -> None:
        super().__init__(bank, l2_bank_path(bank))


class IcacheListener:
    """Tracks instruction-cache refills (fetches derive from core issues)."""

    def __init__(self) -> None:
        self.refills = 0

    def paths(self) -> list[str]:
        return [ICACHE_PATH]

    def on_event(self, cycle: int, path: str, payload: str) -> None:
        kind, _, count = payload.partition(" n=")
        if kind != "refill":
            raise TraceError(f"unknown icache event {payload!r}")
        self.refills += int(count) if count else 1


class DmaListener:
    """Tracks words moved by the cluster DMA."""

    def __init__(self) -> None:
        self.transfers = 0

    def paths(self) -> list[str]:
        return [DMA_PATH]

    def on_event(self, cycle: int, path: str, payload: str) -> None:
        kind, _, count = payload.partition(" n=")
        if kind != "transfer":
            raise TraceError(f"unknown DMA event {payload!r}")
        self.transfers += int(count) if count else 1


class PULPListeners:
    """Aggregate of every component listener for one platform instance.

    Exposes query methods over the reconstructed platform state, and can
    materialise a :class:`ClusterCounters` equivalent to the simulator's
    own (the cross-check the tests perform).
    """

    def __init__(self, n_cores: int = 8, n_l1_banks: int = 16,
                 n_l2_banks: int = 32, n_fpus: int = 4) -> None:
        self.n_cores = n_cores
        self.n_l1_banks = n_l1_banks
        self.n_l2_banks = n_l2_banks
        self.n_fpus = n_fpus
        self.cores = [CoreListener(i) for i in range(n_cores)]
        self.l1_banks = [L1BankListener(i) for i in range(n_l1_banks)]
        self.l2_banks = [L2BankListener(i) for i in range(n_l2_banks)]
        self.icache = IcacheListener()
        self.dma = DmaListener()
        self.kernel_begin: int | None = None
        self.kernel_end: int | None = None

    def all_listeners(self):
        yield from self.cores
        yield from self.l1_banks
        yield from self.l2_banks
        yield self.icache
        yield self.dma

    # -- queries -------------------------------------------------------------

    @property
    def window_cycles(self) -> int:
        if self.kernel_begin is None or self.kernel_end is None:
            raise TraceError("kernel begin/end markers not observed")
        return self.kernel_end - self.kernel_begin

    def core_busy_fraction(self, core: int) -> float:
        cycles = self.window_cycles or 1
        return self.cores[core].counters.busy_cycles / cycles

    def total_l1_conflicts(self) -> int:
        return sum(b.counters.conflicts for b in self.l1_banks)

    def to_counters(self) -> ClusterCounters:
        """Materialise the reconstructed :class:`ClusterCounters`."""
        counters = ClusterCounters(
            n_cores=self.n_cores, n_l1_banks=self.n_l1_banks,
            n_l2_banks=self.n_l2_banks, n_fpus=self.n_fpus)
        counters.cycles = self.window_cycles
        counters.cores = [c.counters for c in self.cores]
        counters.l1_banks = [b.counters for b in self.l1_banks]
        counters.l2_banks = [b.counters for b in self.l2_banks]
        fpu_ops = [0] * self.n_fpus
        for core_idx, listener in enumerate(self.cores):
            fpu = core_idx % self.n_fpus
            fpu_ops[fpu] += (listener.counters.fp_ops
                             + listener.counters.fpdiv_ops)
        counters.fpu_ops = fpu_ops
        counters.icache_refills = self.icache.refills
        counters.icache_fetches = sum(c.counters.issue_cycles
                                      for c in self.cores)
        counters.dma_transfers = self.dma.transfers
        return counters
