"""Process-level sharding: N daemon processes behind one endpoint.

One daemon process tops out at one core's worth of scoring (the GIL
serializes everything but the numpy kernels).  The low-voltage
parallel-systems literature the paper builds on makes the scaling
argument explicit: aggregate throughput comes from *parallel
replication of slower units*.  :class:`ShardManager` applies it to the
serving stack — ``repro serve --shards N`` runs N full scoring daemons
(one per process, each with its own model pool and event loop) that
together serve a single logical endpoint:

* **TCP** — every shard binds the same ``(host, port)`` with
  ``SO_REUSEPORT``; the kernel load-balances incoming connections
  across the shard listeners.  Clients connect to the one port and
  need no changes at all.
* **Unix sockets** — shard *i* binds ``<path>.<i>`` and the manager
  writes a **shard registry** (a small JSON file with shard socket
  paths and PIDs) at ``<path>`` itself.
  :class:`repro.api.client.ScoringClient` recognizes the registry,
  picks a shard (rotating across connections), and — because its
  reconnect logic re-reads the registry — a request retried after a
  shard crash lands on a live shard.

Shard processes are forked **before** any serving threads exist, so
each child starts clean; the scorer is built inside the child by a
picklable *factory* callable (see :func:`classifier_factory` /
:func:`fleet_factory`), which also keeps spawn-based platforms
working.  Each shard daemon carries a ``shard`` stats section
(``{"index": i, "pid": ...}``) so the ``{"cmd": "stats"}`` verb
reports per-shard request counts.

Clean fan-out shutdown: :meth:`ShardManager.stop` signals every child
(SIGTERM -> daemon.stop() -> sockets unlinked), joins them, escalates
to SIGKILL for stragglers, and removes the registry.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import stat
import tempfile
import threading
import time

from repro.api.daemon import (
    DEFAULT_WORKERS,
    ScoringDaemon,
    _reclaim_stale_unix_socket,
)
from repro.api.wire import merge_codec_stats
from repro.errors import DaemonError

#: registry format marker (bumped on incompatible layout changes).
REGISTRY_VERSION = 1


def shard_socket_path(base: str, index: int) -> str:
    """Where shard *index* of a unix-socket deployment listens."""
    return f"{base}.{index}"


def write_registry(path: str, shards: list) -> None:
    """Atomically write the shard registry file at *path*."""
    payload = {
        "repro_shards": REGISTRY_VERSION,
        "base": path,
        "shards": shards,
    }
    directory = os.path.dirname(os.path.abspath(path))
    fd, staging = tempfile.mkstemp(prefix=".shards-", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise


def read_registry(path: str) -> list | None:
    """The shard rows of the registry at *path*, or ``None``.

    ``None`` means "not a shard registry": the path is missing, is a
    socket, or holds anything but a well-formed registry document —
    callers fall back to treating the path as a plain socket.  Never
    raises on malformed input.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("repro_shards") != REGISTRY_VERSION:
        return None
    shards = payload.get("shards")
    if not isinstance(shards, list) or not shards:
        return None
    rows = [s for s in shards if isinstance(s, dict) and s.get("path")]
    return rows or None


def _pid_alive(pid) -> bool:
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


# -- picklable scorer factories (run inside the shard process) -------------


def classifier_factory(artifact_path: str, backend: str | None = None):
    """A factory loading one saved model artifact (single-model shards)."""
    from repro.api.classifier import BACKEND_COMPILED, Classifier

    return Classifier.load(
        artifact_path,
        backend=backend if backend is not None else BACKEND_COMPILED)


def fleet_factory(
    model_path: str | None = None,
    profile: str = "paper",
    family: str = "tree",
    feature_set: str = "static-all",
    models: tuple = (),
    preload: bool = False,
    max_batch: int | None = None,
    max_delay_us: int | None = None,
    memory_budget_bytes: int | None = None,
    max_models: int | None = None,
    default=None,
    on_preload=None,
    backend: str | None = None,
):
    """Build the serving fleet ``repro serve`` deploys.

    The default model is *default* (an already-fitted classifier —
    the un-sharded CLI passes the one it just loaded), or is built
    here from *model_path* (a saved artifact) / the artifact cache for
    ``(profile, family, feature_set)``, training on a miss.  Extra
    *models* specs are warm pre-loaded (*on_preload* is called per
    loaded key, for progress reporting).  ``max_batch`` <= 0 disables
    micro-batching.  *backend* selects the execution backend every
    model in the fleet runs on (default: compiled decision tables; see
    :meth:`repro.api.Classifier.compile`).  Both serve paths assemble
    through this one function: the CLI calls it inline for a
    single-process fleet, and :class:`ShardManager` runs it
    (picklable, built-in defaults) inside every shard process so each
    shard owns its own pool, batcher and event loop.
    """
    from repro.api.artifact_cache import load_or_train
    from repro.api.classifier import BACKEND_COMPILED, Classifier
    from repro.api.config import ReproConfig
    from repro.api.fleet import (
        DEFAULT_MAX_BATCH,
        DEFAULT_MAX_DELAY_US,
        MicroBatcher,
        ModelFleet,
        ModelPool,
        cache_loader,
    )

    if backend is None:
        backend = BACKEND_COMPILED
    if default is None:
        if model_path:
            default = Classifier.load(model_path, backend=backend)
        else:
            config = ReproConfig(profile=profile, model=family,
                                 feature_set=feature_set)
            default, _ = load_or_train(config, backend=backend)
    pool = ModelPool(loader=cache_loader(train_on_miss=preload,
                                         backend=backend),
                     memory_budget_bytes=memory_budget_bytes,
                     max_models=max_models,
                     default_tag=profile)
    batcher = None
    if max_batch is None:
        max_batch = DEFAULT_MAX_BATCH
    if max_delay_us is None:
        max_delay_us = DEFAULT_MAX_DELAY_US
    if max_batch > 0:
        batcher = MicroBatcher(max_batch=max_batch,
                               max_delay_us=max_delay_us)
    fleet = ModelFleet(pool, batcher, default=default)
    if models:
        keys = pool.preload([s for s in models if str(s).strip()])
        if on_preload is not None:
            for key in keys:
                on_preload(key)
    return fleet


def _shard_main(factory, kind, endpoint, index, workers, ready,
                codecs=None) -> None:
    """One shard process: build the scorer, serve until SIGTERM."""
    stop = threading.Event()

    def request_stop(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)
    scorer = factory()
    kwargs: dict = {}
    if hasattr(scorer, "handle_request"):
        kwargs["fleet"] = scorer
    else:
        kwargs["classifier"] = scorer
    daemon = ScoringDaemon(
        socket_path=endpoint if kind == "unix" else None,
        tcp=endpoint if kind == "tcp" else None,
        workers=workers,
        reuse_port=(kind == "tcp"),
        stats_extra={"shard": {"index": index, "pid": os.getpid()}},
        codecs=codecs,
        **kwargs,
    )
    daemon.start()
    ready.set()
    try:
        # a plain flag + timed wait is robust to signal delivery
        # semantics across platforms (handlers only set the flag)
        while not stop.wait(0.2):
            pass
    finally:
        daemon.stop()
        if hasattr(scorer, "close"):
            scorer.close()


class ShardManager:
    """Run and supervise N shard daemons serving one logical endpoint.

    *factory* is a picklable callable returning the scorer each shard
    serves (a fitted classifier or a fleet) — it runs **inside** the
    shard process.  Exactly one endpoint must be configured:
    ``socket_path`` (unix sockets + registry file) or ``tcp`` (a
    ``(host, port)`` pair shared via ``SO_REUSEPORT``; port 0 reserves
    an ephemeral port all shards then share, readable back from
    :attr:`address`).

    Usage::

        manager = ShardManager(
            functools.partial(classifier_factory, "model.json"),
            shards=4, socket_path="/tmp/repro.sock")
        with manager:
            ...  # ScoringClient(socket_path="/tmp/repro.sock")
    """

    def __init__(
        self,
        factory,
        shards: int,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        workers: int = DEFAULT_WORKERS,
        start_timeout: float = 120.0,
        codecs: tuple | None = None,
    ) -> None:
        if shards < 1:
            raise DaemonError(f"shards must be >= 1, got {shards}")
        if (socket_path is None) == (tcp is None):
            raise DaemonError(
                "configure exactly one endpoint: socket_path=PATH or "
                "tcp=(host, port)"
            )
        self.factory = factory
        self.shards = int(shards)
        self.socket_path = socket_path
        self.tcp = tuple(tcp) if tcp is not None else None
        self.workers = workers
        self.start_timeout = start_timeout
        self.codecs = tuple(codecs) if codecs is not None else None
        self._ctx = self._pick_context()
        self._procs: list = []
        self._guard: socket.socket | None = None  # TCP port reservation
        self._bound_tcp: tuple | None = None
        self._registry_written = False

    @staticmethod
    def _pick_context():
        # fork is cheap (the parent's imports and page cache are
        # shared copy-on-write) and needs no pickling; platforms
        # without it fall back to the default start method
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return any(proc.is_alive() for proc in self._procs)

    @property
    def address(self) -> tuple:
        """``("unix", base_path)`` or ``("tcp", host, port)`` (bound)."""
        if self.socket_path is not None:
            return ("unix", self.socket_path)
        if self._bound_tcp is not None:
            return ("tcp",) + self._bound_tcp
        return ("tcp",) + self.tcp

    @property
    def pids(self) -> list:
        return [proc.pid for proc in self._procs]

    def alive(self) -> list:
        """Liveness flags, one per shard (``alive()[i]`` = shard i)."""
        return [proc.is_alive() for proc in self._procs]

    def shard_paths(self) -> list:
        """The per-shard unix socket paths (empty for TCP)."""
        if self.socket_path is None:
            return []
        return [shard_socket_path(self.socket_path, i)
                for i in range(self.shards)]

    def start(self) -> "ShardManager":
        if self._procs:
            raise DaemonError("shard manager is already started")
        if self.socket_path is not None:
            self._prepare_base_path()
            endpoints = [("unix", path) for path in self.shard_paths()]
        else:
            self._reserve_tcp_port()
            endpoints = [("tcp", self._bound_tcp)] * self.shards
        events = []
        try:
            for index, (kind, endpoint) in enumerate(endpoints):
                ready = self._ctx.Event()
                proc = self._ctx.Process(
                    target=_shard_main,
                    args=(self.factory, kind, endpoint, index,
                          self.workers, ready, self.codecs),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
                events.append(ready)
            deadline = time.monotonic() + self.start_timeout
            for index, ready in enumerate(events):
                # poll readiness against child liveness: a shard whose
                # factory raised (bad artifact, failed bind) dies
                # immediately and must fail start() fast, not after
                # the full start_timeout
                while not ready.wait(0.2):
                    proc = self._procs[index]
                    if not proc.is_alive():
                        raise DaemonError(
                            f"shard {index} died during startup "
                            f"(exit code {proc.exitcode})"
                        )
                    if time.monotonic() > deadline:
                        raise DaemonError(
                            f"shard {index} did not become ready "
                            f"within {self.start_timeout}s"
                        )
            if self.socket_path is not None:
                write_registry(self.socket_path, [
                    {"index": i,
                     "path": shard_socket_path(self.socket_path, i),
                     "pid": self._procs[i].pid}
                    for i in range(self.shards)
                ])
                self._registry_written = True
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Fan-out shutdown: SIGTERM all shards, join, escalate, clean."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
        self._procs = []
        if self._guard is not None:
            try:
                self._guard.close()
            except OSError:
                pass
            self._guard = None
        if self.socket_path is not None:
            if self._registry_written:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
                self._registry_written = False
            for path in self.shard_paths():
                # clean exits unlink their own socket; this reaps the
                # leftovers of killed shards
                try:
                    if stat.S_ISSOCK(os.stat(path).st_mode):
                        os.unlink(path)
                except OSError:
                    pass

    def __enter__(self) -> "ShardManager":
        if not self._procs:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- endpoint preparation ----------------------------------------------

    def _prepare_base_path(self) -> None:
        base = self.socket_path
        if not os.path.exists(base):
            return
        if stat.S_ISSOCK(os.stat(base).st_mode):
            # a plain (un-sharded) daemon endpoint: reclaim only if dead
            _reclaim_stale_unix_socket(base)
            return
        shards = read_registry(base)
        if shards is not None:
            if any(_pid_alive(s.get("pid")) for s in shards):
                raise DaemonError(
                    f"socket path {base!r} holds a shard registry with "
                    f"live shard processes; refusing to serve over it"
                )
            os.unlink(base)  # stale registry from a dead manager
            return
        raise DaemonError(
            f"socket path {base!r} exists and is neither a socket nor "
            f"a shard registry; refusing to overwrite it"
        )

    def _reserve_tcp_port(self) -> None:
        if not hasattr(socket, "SO_REUSEPORT"):
            raise DaemonError(
                "this platform does not support SO_REUSEPORT; sharded "
                "TCP serving is unavailable (use unix sockets)"
            )
        host, port = self.tcp
        guard = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        guard.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            guard.bind((host, int(port)))
        except OSError as exc:
            guard.close()
            raise DaemonError(f"cannot bind tcp {host}:{port}: {exc}")
        # bound but never listening: reserves the port for the shard
        # lifetime without receiving connections (the kernel only
        # balances across *listening* SO_REUSEPORT sockets)
        self._guard = guard
        self._bound_tcp = (host, guard.getsockname()[1])


def collect_stats(base_path: str, timeout: float = 10.0) -> dict:
    """Aggregate ``{"cmd": "stats"}`` across every shard of a deployment.

    *base_path* is the unix endpoint clients connect to.  When it holds
    a shard registry, every registered shard is queried directly (the
    registry rotation would otherwise only ever show one shard per
    connection); a plain daemon socket is queried as a single
    "deployment of one".  Returns::

        {"shards": [per-shard stats payload, ...],
         "requests_served": total, "connections_served": total,
         "active_connections": total,
         "codec": merged codec section or None}

    Dead or malformed shards are skipped (their row is ``{"shard":
    {...}, "error": str}``, plus a ``"code"`` field when the failure
    carried a typed :class:`~repro.errors.ScoringError` code) rather
    than failing the whole collection: a shard dying between the
    registry read and the connect is an expected race, not a reason to
    lose the stats of the survivors.
    """
    from repro.api.client import ScoringClient
    from repro.errors import ScoringError

    rows = read_registry(base_path)
    if rows is None:
        endpoints = [(None, base_path)]
    else:
        endpoints = [(s.get("index"), s.get("path")) for s in rows]
    per_shard: list = []
    totals = {"requests_served": 0, "connections_served": 0,
              "active_connections": 0}
    codec_sections: list = []
    for index, path in endpoints:
        if not isinstance(path, str) or not path:
            per_shard.append({"shard": {"index": index, "path": path},
                              "error": "registry row has no usable "
                                       "'path'"})
            continue
        try:
            with ScoringClient(socket_path=path, timeout=timeout) as client:
                payload = client.stats()
        except Exception as exc:  # dead shard: report, do not fail
            row = {"shard": {"index": index, "path": path},
                   "error": str(exc)}
            if isinstance(exc, ScoringError) and exc.code is not None:
                row["code"] = exc.code
            per_shard.append(row)
            continue
        if index is not None:
            payload.setdefault("shard", {"index": index})
        per_shard.append(payload)
        server = payload.get("server")
        server = server if isinstance(server, dict) else {}
        for key in totals:
            value = server.get(key)
            if isinstance(value, (int, float)):
                totals[key] += value
        if isinstance(server.get("codec"), dict):
            codec_sections.append(server["codec"])
    return {
        "shards": per_shard,
        **totals,
        "codec": merge_codec_stats(codec_sections) if codec_sections
        else None,
    }
