"""Trace pipeline tests: format, writer, analyser, listener equality."""

import io

import pytest

from repro.errors import TraceError
from repro.ir.types import DType
from repro.sim.engine import simulate
from repro.trace import (
    PULPListeners,
    TraceAnalyser,
    TraceWriter,
    parse_line,
)
from repro.trace.analyser import analyse_trace
from repro.trace.format import format_line, l1_bank_path, pe_insn_path
from tests.conftest import make_axpy, make_matmul


class TestFormat:
    def test_roundtrip(self):
        line = format_line(42, pe_insn_path(3), "alu n=2")
        assert parse_line(line) == (42, "cluster/pe3/insn", "alu n=2")

    @pytest.mark.parametrize("bad", ["", "x y", "12", "cycle path payload"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(TraceError):
            parse_line(bad)


class TestWriter:
    def test_collects_lines_in_memory(self):
        writer = TraceWriter()
        writer.instr(1, 0, 0, 2)
        writer.l1(2, 5, "read")
        assert writer.lines == ["1 cluster/pe0/insn alu n=2",
                                "2 cluster/l1/bank5/trace read"]

    def test_streams_to_file(self):
        stream = io.StringIO()
        writer = TraceWriter(stream)
        writer.kernel_marker(0, "begin")
        assert stream.getvalue() == "0 cluster/kernel/trace begin\n"
        assert writer.lines == []


class TestListenerHierarchy:
    def test_paper_topology(self):
        listeners = PULPListeners()
        assert len(listeners.cores) == 8
        assert len(listeners.l1_banks) == 16
        assert len(listeners.l2_banks) == 32

    def test_duplicate_paths_rejected(self):
        listeners = PULPListeners()
        listeners.l1_banks.append(listeners.l1_banks[0])
        with pytest.raises(TraceError):
            TraceAnalyser(listeners)

    def test_unknown_path_rejected(self):
        analyser = TraceAnalyser(PULPListeners())
        with pytest.raises(TraceError):
            analyser.process(["5 cluster/pe99/insn alu n=1"])

    def test_unbalanced_cg_rejected(self):
        analyser = TraceAnalyser(PULPListeners())
        with pytest.raises(TraceError):
            analyser.process(["5 cluster/pe0/trace cg_exit"])

    def test_cycle_range_filter(self):
        listeners = PULPListeners()
        analyser = TraceAnalyser(listeners)
        lines = [
            format_line(1, l1_bank_path(0), "read"),
            format_line(50, l1_bank_path(0), "read"),
            format_line(99, l1_bank_path(0), "read"),
        ]
        used = analyser.process(lines, cycle_range=(10, 60))
        assert used == 1
        assert listeners.l1_banks[0].counters.reads == 1


class TestEngineEquivalence:
    """The paper's pipeline: trace -> regex parse -> listeners must
    reconstruct exactly what the engine counted."""

    @pytest.mark.parametrize("team", [1, 2, 5, 8])
    @pytest.mark.parametrize("dtype", [DType.INT32, DType.FP32])
    def test_axpy_equivalence(self, team, dtype):
        kernel = make_axpy(dtype, 512)
        writer = TraceWriter()
        engine = simulate(kernel, team, trace=writer)
        rebuilt = analyse_trace(writer.lines).to_counters()
        assert rebuilt.as_dict() == engine.as_dict()

    def test_matmul_equivalence(self):
        kernel = make_matmul(DType.FP32, 512)
        writer = TraceWriter()
        engine = simulate(kernel, 8, trace=writer)
        rebuilt = analyse_trace(writer.lines).to_counters()
        assert rebuilt.as_dict() == engine.as_dict()

    def test_critical_kernel_equivalence(self):
        from repro.dataset.registry import get_kernel_spec
        kernel = get_kernel_spec("critical_update").build(DType.INT32, 512)
        writer = TraceWriter()
        engine = simulate(kernel, 4, trace=writer)
        rebuilt = analyse_trace(writer.lines).to_counters()
        assert rebuilt.as_dict() == engine.as_dict()

    def test_window_queries(self):
        kernel = make_axpy(DType.INT32, 512)
        writer = TraceWriter()
        engine = simulate(kernel, 2, trace=writer)
        listeners = analyse_trace(writer.lines)
        assert listeners.window_cycles == engine.cycles
        assert 0.0 < listeners.core_busy_fraction(0) <= 1.0
        assert listeners.core_busy_fraction(7) == 0.0
