"""The :mod:`repro` service layer — the classifier as a product.

The paper's deliverable is a classifier that maps source-code features
to the most energy-efficient PULP core configuration.  This package is
its canonical entry point:

>>> from repro.api import Classifier, ReproConfig
>>> clf = Classifier(ReproConfig(profile="unit")).train()
>>> clf.save("model.json")
>>> Classifier.load("model.json").predict_batch(rows)

Everything else layers on top: the :mod:`repro.experiments` drivers are
thin clients of :func:`evaluate_features` / :class:`Classifier`, and
the ``repro train`` / ``repro predict`` / ``repro serve`` CLI commands
are thin clients of this package.

Extension points: :func:`register_model_family` (e.g. a new ensemble)
and :func:`register_feature_set` (e.g. a new static feature family)
plug new behaviour in without touching any caller.

Serving: :class:`ScoringDaemon` keeps one loaded classifier (or a
multi-model fleet) resident behind a Unix/TCP socket and answers the
JSON-lines protocol for many concurrent clients — every transport
(stdio, threaded daemon, event loop) dispatches through the unified
core in :mod:`repro.api.transport`.  :class:`ShardManager` scales that
to N daemon processes behind one endpoint and
:class:`ShardSupervisor` keeps the fleet healthy (crash respawn,
graceful drain, rolling restart, zero-downtime model hot-swap);
:class:`ScoringClient` is the wire client (sequential and pipelined),
:class:`AdminClient` the typed fleet-ops surface; and :func:`load_or_train`
caches trained model artifacts keyed on ``(dataset tag, CODE_VERSION,
model family, feature set)`` — bounded in age by
``$REPRO_ARTIFACT_TTL`` — so identical configurations never retrain.

Wire format and execution backend are both negotiated/pluggable:
connections start as JSON-lines and may upgrade to the length-prefixed
binary codec via a ``{"cmd": "hello"}`` handshake (see
:mod:`repro.api.wire`), and loaded classifiers predict through
compiled flat decision tables by default with a ``backend="reference"``
opt-out (see :meth:`Classifier.compile`).
"""

from repro.api.artifact_cache import (
    artifact_key,
    artifact_path,
    artifact_ttl,
    dataset_tag,
    load_cached,
    load_or_train,
)
from repro.api.classifier import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    BACKEND_COMPILED,
    BACKEND_REFERENCE,
    BACKENDS,
    Classifier,
    EvaluationReport,
    evaluate_features,
    kernel_features,
)
from repro.api.admin import (
    AdminClient,
    FleetMetrics,
    FleetStats,
    ModelInfo,
    ModelListing,
    ShardHealth,
    collect_metrics,
)
from repro.api.client import DEFAULT_PIPELINE_WINDOW, ScoringClient
from repro.api.daemon import (
    DEFAULT_WORKERS,
    ScoringDaemon,
    parse_tcp_endpoint,
)
from repro.api.shard import (
    ShardManager,
    classifier_factory,
    collect_stats,
    fleet_factory,
    registry_epoch,
)
from repro.api.supervisor import (
    HotSwapReport,
    ShardSupervisor,
)
from repro.api.transport import (
    EventLoopServer,
    LineSplitter,
    RequestEngine,
    ThreadedServer,
    serve_stdio,
)
from repro.api.fleet import (
    MicroBatcher,
    ModelFleet,
    ModelKey,
    ModelPool,
)
from repro.api.config import (
    DEFAULT_TOLERANCES,
    ReproConfig,
    active_profile,
    cv_repeats,
    default_jobs,
)
from repro.api.registry import (
    ModelFamily,
    available_feature_sets,
    available_model_families,
    model_family,
    register_feature_set,
    register_model_family,
    resolve_feature_set,
)
from repro.api.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_INVALID_JSON,
    error_frame,
    ok_frame,
)
from repro.api.selection import (
    optimised_set,
    prune_by_importance,
    rank_features,
)
from repro.api.service import handle_request, process_line, serve
from repro.api.wire import (
    CODEC_BINARY,
    CODEC_BINARY_V2,
    CODEC_JSON,
    DEFAULT_CODECS,
    WireSession,
    get_codec,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "Classifier",
    "EvaluationReport",
    "evaluate_features",
    "kernel_features",
    "artifact_key",
    "artifact_path",
    "artifact_ttl",
    "dataset_tag",
    "load_cached",
    "load_or_train",
    "MicroBatcher",
    "ModelFleet",
    "ModelKey",
    "ModelPool",
    "AdminClient",
    "FleetMetrics",
    "FleetStats",
    "ModelInfo",
    "ModelListing",
    "ShardHealth",
    "ScoringClient",
    "ScoringDaemon",
    "ShardManager",
    "ShardSupervisor",
    "HotSwapReport",
    "classifier_factory",
    "collect_metrics",
    "collect_stats",
    "fleet_factory",
    "registry_epoch",
    "BACKEND_COMPILED",
    "BACKEND_REFERENCE",
    "BACKENDS",
    "CODEC_BINARY",
    "CODEC_BINARY_V2",
    "CODEC_JSON",
    "DEFAULT_CODECS",
    "WireSession",
    "get_codec",
    "DEFAULT_PIPELINE_WINDOW",
    "DEFAULT_WORKERS",
    "parse_tcp_endpoint",
    "EventLoopServer",
    "LineSplitter",
    "RequestEngine",
    "ThreadedServer",
    "serve_stdio",
    "ERROR_BAD_REQUEST",
    "ERROR_INTERNAL",
    "ERROR_INVALID_JSON",
    "error_frame",
    "ok_frame",
    "process_line",
    "DEFAULT_TOLERANCES",
    "ReproConfig",
    "active_profile",
    "cv_repeats",
    "default_jobs",
    "ModelFamily",
    "available_feature_sets",
    "available_model_families",
    "model_family",
    "register_feature_set",
    "register_model_family",
    "resolve_feature_set",
    "optimised_set",
    "prune_by_importance",
    "rank_features",
    "handle_request",
    "serve",
]
