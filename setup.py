"""Setup shim.

The offline environment ships setuptools but not the ``wheel`` package,
so PEP 517/660 editable installs (which build a wheel) cannot run.  This
shim keeps the legacy ``pip install -e .`` / ``setup.py develop`` path
working; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
