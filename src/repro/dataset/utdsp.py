"""UTDSP suite ported to the kernel DSL (16 kernels).

Digital-signal-processing kernels: filters, transforms, coders.  Three
(adpcm, compress, histogram) are integer-only — their reference sources
are fixed-point — which is how the dataset reaches the paper's 448
samples (53 dual-type kernels + 6 integer-only ones).
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.expr import var
from repro.ir.nodes import (
    Compute,
    Critical,
    Load,
    Loop,
    OpKind,
    ParallelFor,
    Sequential,
    Store,
)
from repro.ir.types import DType
from repro.dataset._sizing import (
    matrix_side,
    pow2_floor,
    vector_len,
)

SUITE = "utdsp"

_TAPS = 16


def _builder(name: str, dtype: DType, size: int) -> KernelBuilder:
    return KernelBuilder(name, dtype, size, suite=SUITE)


def fir(dtype: DType, size: int):
    b = _builder("fir", dtype, size)
    n = vector_len(size, 2)
    x, y = b.array("x", n), b.array("y", n)
    c = b.array("c", _TAPS)
    i, t = var("i"), var("t")
    b.parallel_for("i", 0, max(1, n - _TAPS), [
        Loop("t", 0, _TAPS, [
            Load(x.name, i + t), Load(c.name, t), b.mul_add(),
        ]),
        Store(y.name, i),
    ])
    return b.build()


def iir(dtype: DType, size: int):
    b = _builder("iir", dtype, size)
    n = vector_len(size, 2)
    nch = max(4, n // 128)                    # independent channels
    nsamp = max(4, n // nch)
    x, y = b.array("x", n), b.array("y", n)
    ch, s = var("ch"), var("s")
    b.parallel_for("ch", 0, nch, [
        Loop("s", 2, nsamp, [
            # direct-form-II biquad: feedback + feedforward taps
            Load(x.name, ch * nsamp + s),
            Load(y.name, ch * nsamp + s - 1), b.mul_add(),
            Load(y.name, ch * nsamp + s - 2), b.mul_add(),
            b.op(2),
            Store(y.name, ch * nsamp + s),
        ]),
    ])
    return b.build()


def lmsfir(dtype: DType, size: int):
    b = _builder("lmsfir", dtype, size)
    taps = 32
    n = vector_len(size, 2)
    x, d = b.array("x", n), b.array("d", n)
    w = b.array("w", taps)
    s, j = var("s"), var("j")
    steps = max(4, min(n - taps, 48))
    error = Sequential([                      # e = d[s] - w . x[s:s+taps]
        Loop("j0", 0, taps, [
            Load(w.name, var("j0")), Load(x.name, s + var("j0")),
            b.mul_add(),
        ]),
        Load(d.name, s), b.op(1),
    ])
    adapt = ParallelFor("j", 0, taps, [       # w[j] += mu * e * x[s+j]
        Load(w.name, j), Load(x.name, s + j), b.mul_add(),
        Store(w.name, j),
    ])
    b.sequential_for("s", 0, steps, [error, adapt])
    return b.build()


def latnrm(dtype: DType, size: int):
    b = _builder("latnrm", dtype, size)
    n = vector_len(size, 2)
    order = 8
    nch = max(4, n // 64)
    nsamp = max(4, n // nch)
    x, y = b.array("x", n), b.array("y", n)
    k = b.array("kcoef", order)
    ch, s, st = var("ch"), var("s"), var("st")
    b.parallel_for("ch", 0, nch, [
        Loop("s", 0, nsamp, [
            Load(x.name, ch * nsamp + s),
            Loop("st", 0, order, [            # lattice stages
                Load(k.name, st), b.mul_add(), b.op(1),
            ]),
            b.div(1),                         # normalisation divide
            Store(y.name, ch * nsamp + s),
        ]),
    ])
    return b.build()


def mult(dtype: DType, size: int):
    b = _builder("mult", dtype, size)
    n = matrix_side(size, 3)
    n4 = max(1, n // 4)
    A, B, C = (b.array(x, n * n) for x in "ABC")
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Loop("k", 0, n4, [                # 4x unrolled MAC chain
                Load(A.name, i * n + k * 4), Load(B.name, (k * 4) * n + j),
                b.mul_add(),
                Load(A.name, i * n + k * 4 + 1),
                Load(B.name, (k * 4 + 1) * n + j), b.mul_add(),
                Load(A.name, i * n + k * 4 + 2),
                Load(B.name, (k * 4 + 2) * n + j), b.mul_add(),
                Load(A.name, i * n + k * 4 + 3),
                Load(B.name, (k * 4 + 3) * n + j), b.mul_add(),
            ]),
            Store(C.name, i * n + j),
        ]),
    ])
    return b.build()


def fft(dtype: DType, size: int):
    b = _builder("fft", dtype, size)
    n = pow2_floor(vector_len(size, 2))
    re, im = b.array("re", n), b.array("im", n)
    stages = []
    span = 2
    stage = 0
    while span <= n:
        half = span // 2
        groups = n // span
        g, k = var(f"g{stage}"), var(f"k{stage}")
        base = g * span + k
        stages.append(ParallelFor(f"g{stage}", 0, groups, [
            Loop(f"k{stage}", 0, half, [
                Load(re.name, base), Load(im.name, base),
                Load(re.name, base + half), Load(im.name, base + half),
                b.op(6),                      # complex twiddle multiply+add
                Store(re.name, base), Store(im.name, base),
                Store(re.name, base + half), Store(im.name, base + half),
            ]),
        ]))
        span *= 2
        stage += 1
    for region in stages:
        b.add_region(region)
    return b.build()


def adpcm(dtype: DType, size: int):
    b = _builder("adpcm", dtype, size)
    n = vector_len(size, 2)
    nblk = 16
    blk = max(2, n // nblk)
    x, code = b.array("x", n), b.array("code", n)
    bb, s = var("b"), var("s")
    b.parallel_for("b", 0, nblk, [
        Loop("s", 0, blk, [
            Load(x.name, bb * blk + s),
            Compute(OpKind.ALU, 4),           # predictor + delta
            Compute(OpKind.DIV, 1),           # quantisation divide
            Compute(OpKind.JUMP, 2),          # sign / step-size branches
            Compute(OpKind.ALU, 3),           # index clamp, step update
            Store(code.name, bb * blk + s),
        ]),
    ])
    return b.build()


def compress(dtype: DType, size: int):
    b = _builder("compress", dtype, size)
    n = vector_len(size, 2)
    nblk = max(1, n // 64)                    # 8x8 blocks
    img, out = b.array("img", n), b.array("out", n)
    blk, u, xx = var("blk"), var("u"), var("x")
    b.parallel_for("blk", 0, nblk, [
        Loop("u", 0, 8, [                     # row DCT
            Loop("x", 0, 8, [
                Load(img.name, blk * 64 + u * 8 + xx),
                Compute(OpKind.ALU, 2),
            ]),
            Store(out.name, blk * 64 + u * 8),
        ]),
        Loop("v", 0, 8, [                     # column DCT
            Loop("y", 0, 8, [
                Load(out.name, blk * 64 + var("y") * 8 + var("v")),
                Compute(OpKind.ALU, 2),
            ]),
            Compute(OpKind.DIV, 1),           # quantisation
            Store(out.name, blk * 64 + var("v")),
        ]),
    ])
    return b.build()


def edge_detect(dtype: DType, size: int):
    b = _builder("edge_detect", dtype, size)
    n = matrix_side(size, 2)
    img, out = b.array("img", n * n), b.array("out", n * n)
    i, j = var("i"), var("j")
    taps = []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            taps.append(Load(img.name, (i + di) * n + j + dj))
            taps.append(b.mul_add())
    b.parallel_for("i", 1, n - 1, [
        Loop("j", 1, n - 1, taps + [
            Compute(OpKind.JUMP, 1),          # threshold branch
            b.op(1),
            Store(out.name, i * n + j),
        ]),
    ])
    return b.build()


def histogram(dtype: DType, size: int):
    b = _builder("histogram", dtype, size)
    bins = 64
    n = max(8, (size // 4) - bins)
    img = b.array("img", n)
    hist = b.array("hist", bins)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(img.name, i),
        Compute(OpKind.ALU, 2),               # bin index computation
        Critical([                            # atomic histogram update
            Load(hist.name, i * 7),           # pseudo-random bin (mod len)
            Compute(OpKind.ALU, 1),
            Store(hist.name, i * 7),
        ], name="hist_update"),
    ])
    return b.build()


def spectral(dtype: DType, size: int):
    b = _builder("spectral", dtype, size)
    nlags = 64
    n = max(nlags * 2, (size // 4) - nlags)
    x = b.array("x", n)
    r = b.array("r", nlags)
    k, i = var("k"), var("i")
    b.parallel_for("k", 0, nlags, [           # autocorrelation per lag
        Loop("i", 0, -1 * k + n, [
            Load(x.name, i), Load(x.name, i + k), b.mul_add(),
        ]),
        b.div(1),
        Store(r.name, k),
    ])
    return b.build()


def decimate(dtype: DType, size: int):
    b = _builder("decimate", dtype, size)
    n = vector_len(size, 2)
    nout = max(2, n // 4)
    x, y = b.array("x", n), b.array("y", nout)
    c = b.array("c", _TAPS)
    i, t = var("i"), var("t")
    b.parallel_for("i", 0, max(1, nout - _TAPS // 4), [
        Loop("t", 0, _TAPS, [
            Load(x.name, i * 4 + t), Load(c.name, t), b.mul_add(),
        ]),
        Store(y.name, i),
    ])
    return b.build()


def fir2dim(dtype: DType, size: int):
    b = _builder("fir2dim", dtype, size)
    n = matrix_side(size, 2)
    img, out = b.array("img", n * n), b.array("out", n * n)
    coef = b.array("coef", 9)
    i, j = var("i"), var("j")
    body = []
    idx = 0
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            body.append(Load(img.name, (i + di) * n + j + dj))
            body.append(Load(coef.name, idx))
            body.append(b.mul_add())
            idx += 1
    b.parallel_for("i", 1, n - 1, [
        Loop("j", 1, n - 1, body + [Store(out.name, i * n + j)]),
    ])
    return b.build()


def dot_product(dtype: DType, size: int):
    b = _builder("dot_product", dtype, size)
    nparts = 8
    n = vector_len(size, 2)
    chunk = max(1, n // nparts)
    x, y = b.array("x", n), b.array("y", n)
    psum = b.array("psum", nparts)
    c, i = var("c"), var("i")
    b.parallel_for("c", 0, nparts, [          # partial dot products
        Loop("i", c * chunk, (c + 1) * chunk, [
            Load(x.name, i), Load(y.name, i), b.mul_add(),
        ]),
        Store(psum.name, c),
    ])
    b.sequential([                            # master combines partials
        Loop("p", 0, nparts, [
            Load(psum.name, var("p")), b.op(1),
        ]),
    ])
    return b.build()


def wavelet(dtype: DType, size: int):
    b = _builder("wavelet", dtype, size)
    n = pow2_floor(vector_len(size, 2))
    x, d = b.array("x", n), b.array("d", n)
    half = n // 2
    i, i2 = var("i"), var("i2")
    b.parallel_for("i", 0, half - 1, [        # predict (stride-2 loads)
        Load(x.name, i * 2 + 1), Load(x.name, i * 2),
        Load(x.name, i * 2 + 2), b.op(2),
        Store(d.name, i),
    ])
    b.parallel_for("i2", 1, half, [           # update
        Load(x.name, i2 * 2), Load(d.name, i2 - 1), Load(d.name, i2),
        b.op(2),
        Store(x.name, i2),
    ])
    return b.build()


def snr(dtype: DType, size: int):
    b = _builder("snr", dtype, size)
    nparts = 8
    n = vector_len(size, 2)
    chunk = max(1, n // nparts)
    sig, noise = b.array("sig", n), b.array("noise", n)
    acc = b.array("acc", nparts * 2)
    c, i = var("c"), var("i")
    b.parallel_for("c", 0, nparts, [
        Loop("i", c * chunk, (c + 1) * chunk, [
            Load(sig.name, i), b.mul_add(),       # signal power
            Load(noise.name, i), b.mul_add(),     # noise power
        ]),
        Store(acc.name, c), Store(acc.name, c + nparts),
    ])
    b.sequential([
        Loop("p", 0, nparts, [
            Load(acc.name, var("p")),
            Load(acc.name, var("p") + nparts), b.op(2),
        ]),
        b.div(1),                              # power ratio
    ])
    return b.build()


#: kernel name -> builder; integer-only kernels marked by INT_ONLY.
UTDSP_KERNELS = {
    "fir": fir,
    "iir": iir,
    "lmsfir": lmsfir,
    "latnrm": latnrm,
    "mult": mult,
    "fft": fft,
    "adpcm": adpcm,
    "compress": compress,
    "edge_detect": edge_detect,
    "histogram": histogram,
    "spectral": spectral,
    "decimate": decimate,
    "fir2dim": fir2dim,
    "dot_product": dot_product,
    "wavelet": wavelet,
    "snr": snr,
}

INT_ONLY = ("adpcm", "compress", "histogram")
