"""Custom suite (17 kernels): engineered energy trade-off stimulators.

The paper augments the public suites with hand-written parametric
kernels "designed to stimulate different patterns of memory accesses,
compute operations, and synchronisation primitives" — i.e. to populate
the minimum-energy classes that well-balanced kernels never hit.  Each
kernel here targets one mechanism:

* TCDM pressure: ``bank_hammer`` (all cores on one bank) vs
  ``bank_friendly`` (stride-1) vs ``stride7_gather``;
* FPU sharing: ``fpu_saturate`` (dense FP) and ``div_chain``;
* synchronisation: ``critical_update`` (lock serialisation),
  ``barrier_storm`` (fork/join dominated), ``reduction_tree``;
* Amdahl: ``seq_then_par``; imbalance: ``imbalanced_triangle``,
  ``tiny_parallel``;
* the L2 path: ``l2_stream`` vs ``l2_pingpong``;
* scaling references: ``stream_copy``, ``stream_triad``,
  ``compute_dense``, ``mixed_phase``, ``stencil_sync``.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.expr import var
from repro.ir.nodes import (
    Compute,
    Critical,
    DmaCopy,
    Load,
    Loop,
    OpKind,
    ParallelFor,
    Sequential,
    Store,
)
from repro.ir.types import DType
from repro.dataset._sizing import vector_len

SUITE = "custom"


def _builder(name: str, dtype: DType, size: int) -> KernelBuilder:
    return KernelBuilder(name, dtype, size, suite=SUITE)


def stream_copy(dtype: DType, size: int):
    b = _builder("stream_copy", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.parallel_for("i", 0, n, [Load(A.name, i), Store(B.name, i)])
    return b.build()


def stream_triad(dtype: DType, size: int):
    b = _builder("stream_triad", dtype, size)
    n = vector_len(size, 3)
    A, B, C = (b.array(x, n) for x in "ABC")
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(B.name, i), Load(C.name, i), b.mul_add(), Store(A.name, i),
    ])
    return b.build()


def compute_dense(dtype: DType, size: int):
    b = _builder("compute_dense", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i), b.op(24), Store(B.name, i),
    ])
    return b.build()


def fpu_saturate(dtype: DType, size: int):
    # Arithmetic-dense body: on fp32 the 2-cores-per-FPU sharing saturates
    # beyond 4 cores, so extra cores only buy NOP-priced stalls.
    b = _builder("fpu_saturate", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i), b.op(28), Store(B.name, i),
    ])
    return b.build()


def div_chain(dtype: DType, size: int):
    b = _builder("div_chain", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i), b.div(2), b.op(2), Store(B.name, i),
    ])
    return b.build()


def bank_hammer(dtype: DType, size: int):
    # Stride-16 accesses with 16 banks: every core hits the same bank
    # every cycle — worst-case TCDM serialisation.  (The index wraps
    # around the array; only its bank residue matters.)
    b = _builder("bank_hammer", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i * 16), b.op(2), Store(B.name, i * 16),
    ])
    return b.build()


def bank_friendly(dtype: DType, size: int):
    # The control pair of bank_hammer: identical mix, stride-1 accesses.
    b = _builder("bank_friendly", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i), b.op(2), Store(B.name, i),
    ])
    return b.build()


def stride7_gather(dtype: DType, size: int):
    b = _builder("stride7_gather", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i * 7), b.op(1), Store(B.name, i),  # scattered reads
    ])
    return b.build()


def critical_update(dtype: DType, size: int):
    b = _builder("critical_update", dtype, size)
    n = vector_len(size, 2)
    A = b.array("A", n)
    acc = b.array("acc", 4)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i), b.op(2),
        Critical([
            Load(acc.name, 0), Compute(OpKind.ALU, 1), Store(acc.name, 0),
        ], name="acc_update"),
    ])
    return b.build()


def barrier_storm(dtype: DType, size: int):
    b = _builder("barrier_storm", dtype, size)
    n = vector_len(size, 2)
    steps = max(8, n // 32)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    tiny = ParallelFor("i", 0, 16, [
        Load(A.name, i), Compute(OpKind.ALU, 2), Store(B.name, i),
    ])
    b.sequential_for("t", 0, steps, [tiny])
    return b.build()


def imbalanced_triangle(dtype: DType, size: int):
    b = _builder("imbalanced_triangle", dtype, size)
    n = vector_len(size, 2)
    rows = max(8, min(128, n // 8))
    A, B = b.array("A", n), b.array("B", n)
    i, j = var("i"), var("j")
    b.parallel_for("i", 0, rows, [
        Loop("j", 0, i + 1, [                 # row i costs i+1 iterations
            Load(A.name, j), b.mul_add(),
        ]),
        Store(B.name, i),
    ])
    return b.build()


def l2_stream(dtype: DType, size: int):
    b = _builder("l2_stream", dtype, size)
    n = vector_len(size, 2)
    A = b.array("A", n, space="l2")
    B = b.array("B", n, space="l2")
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(A.name, i), b.op(2), Store(B.name, i),
    ])
    return b.build()


def l2_pingpong(dtype: DType, size: int):
    # Stride-32 with 32 L2 banks: all cores serialise on one 15-cycle
    # bank — parallelism buys nothing, active waits burn energy.
    b = _builder("l2_pingpong", dtype, size)
    n = vector_len(size, 2)
    A = b.array("A", n, space="l2")
    B = b.array("B", n, space="l2")
    i = var("i")
    b.parallel_for("i", 0, n // 4, [
        Load(A.name, i * 32), b.op(2), Store(B.name, i * 32),
    ])
    return b.build()


def reduction_tree(dtype: DType, size: int):
    b = _builder("reduction_tree", dtype, size)
    nparts = 8
    n = vector_len(size, 2)
    chunk = max(1, n // nparts)
    X = b.array("X", n)
    psum = b.array("psum", nparts)
    c, i = var("c"), var("i")
    rounds = 4
    partial = ParallelFor("c", 0, nparts, [
        Loop("i", c * chunk, (c + 1) * chunk, [
            Load(X.name, i), b.mul_add(),
        ]),
        Store(psum.name, c),
    ])
    combine = Sequential([
        Loop("p", 0, nparts, [Load(psum.name, var("p")), b.op(1)]),
    ])
    b.sequential_for("t", 0, rounds, [partial, combine])
    return b.build()


def seq_then_par(dtype: DType, size: int):
    b = _builder("seq_then_par", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    b.sequential([                            # serial prefix scan (Amdahl)
        Loop("s", 0, n, [
            Load(A.name, var("s")), b.op(3), Store(A.name, var("s")),
        ]),
    ])
    b.parallel_for("i", 0, max(1, n // 16), [  # small parallel tail
        Load(A.name, i), b.op(1), Store(B.name, i),
    ])
    return b.build()


def tiny_parallel(dtype: DType, size: int):
    b = _builder("tiny_parallel", dtype, size)
    n = vector_len(size, 2)
    inner = max(8, n // 12)
    A, B = b.array("A", n), b.array("B", n)
    i, j = var("i"), var("j")
    b.parallel_for("i", 0, 12, [              # 12 heavy iterations only
        Loop("j", 0, inner, [
            Load(A.name, j), b.mul_add(),
        ]),
        Store(B.name, i),
    ])
    return b.build()


def mixed_phase(dtype: DType, size: int):
    b = _builder("mixed_phase", dtype, size)
    n = vector_len(size, 3)
    A, B, C = (b.array(x, n) for x in "ABC")
    i, i2, i3 = var("i"), var("i2"), var("i3")
    b.parallel_for("i", 0, n, [               # memory phase
        Load(A.name, i), Store(B.name, i),
    ])
    b.parallel_for("i2", 0, n, [              # integer compute phase
        Load(B.name, i2), Compute(OpKind.ALU, 12), Store(C.name, i2),
    ])
    b.parallel_for("i3", 0, n, [              # arithmetic phase
        Load(C.name, i3), b.op(8), Store(A.name, i3),
    ])
    return b.build()


def stencil_sync(dtype: DType, size: int):
    b = _builder("stencil_sync", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    steps = 8
    sweep = ParallelFor("i", 1, n - 1, [
        Load(A.name, i - 1), Load(A.name, i), Load(A.name, i + 1),
        b.op(2), Store(B.name, i),
    ])
    copy = ParallelFor("i2", 1, n - 1, [
        Load(B.name, var("i2")), Store(A.name, var("i2")),
    ])
    b.sequential_for("t", 0, steps, [sweep, copy])
    return b.build()


def dma_tiled_stream(dtype: DType, size: int):
    """Demo kernel (not in the 59-kernel dataset): the paper's
    future-work memory-hierarchy extension.

    Processes an L2-resident payload tile by tile: the master DMAs a
    tile into a TCDM buffer, the team computes on it at single-cycle
    latency, and the result is DMAed back — instead of paying the
    15-cycle L2 latency per element like ``l2_stream`` does.
    """
    b = _builder("dma_tiled_stream", dtype, size)
    n = vector_len(size, 2)
    tiles = 8
    tile = max(4, n // tiles)
    b.array("A", n, space="l2")
    b.array("B", n, space="l2")
    buf = b.array("buf", tile)
    t, i = var("t"), var("i")
    fetch = Sequential([DmaCopy(tile, "in")])
    compute = ParallelFor("i", 0, tile, [
        Load(buf.name, i), b.op(2), Store(buf.name, i),
    ])
    drain = Sequential([DmaCopy(tile, "out")])
    b.sequential_for("t", 0, tiles, [fetch, compute, drain])
    return b.build()


CUSTOM_KERNELS = {
    "stream_copy": stream_copy,
    "stream_triad": stream_triad,
    "compute_dense": compute_dense,
    "fpu_saturate": fpu_saturate,
    "div_chain": div_chain,
    "bank_hammer": bank_hammer,
    "bank_friendly": bank_friendly,
    "stride7_gather": stride7_gather,
    "critical_update": critical_update,
    "barrier_storm": barrier_storm,
    "imbalanced_triangle": imbalanced_triangle,
    "l2_stream": l2_stream,
    "l2_pingpong": l2_pingpong,
    "reduction_tree": reduction_tree,
    "seq_then_par": seq_then_par,
    "tiny_parallel": tiny_parallel,
    "mixed_phase": mixed_phase,
    # stencil_sync is kept as a demo kernel (examples, tests) but is not
    # part of the 59-kernel dataset.
}

INT_ONLY = ("bank_hammer", "critical_update", "barrier_storm")
