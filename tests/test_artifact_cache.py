"""Tests for the model-artifact cache (keying, hits, invalidation)."""

import json
import os

import numpy as np
import pytest

from repro.api import ReproConfig, artifact_key, artifact_path, dataset_tag
from repro.api import artifact_cache as ac
from repro.api.artifact_cache import load_or_train
from repro.dataset.build import Dataset
from repro.ml.tree import DecisionTreeClassifier


@pytest.fixture()
def fit_counter(monkeypatch):
    """Count every DecisionTreeClassifier.fit call."""
    counter = {"n": 0}
    real_fit = DecisionTreeClassifier.fit

    def counting_fit(self, X, y):
        counter["n"] += 1
        return real_fit(self, X, y)

    monkeypatch.setattr(DecisionTreeClassifier, "fit", counting_fit)
    return counter


@pytest.fixture()
def cache_dir(tmp_path) -> str:
    return str(tmp_path / "models")


CFG = dict(profile="unit", feature_set="static-all", model="tree")


class TestKeying:
    def test_same_inputs_same_path(self, tiny_dataset, cache_dir):
        config = ReproConfig(**CFG)
        assert artifact_path(config, tiny_dataset, cache_dir) == \
            artifact_path(config, tiny_dataset, cache_dir)

    def test_dataset_tag_includes_profile_and_size(self, tiny_dataset):
        assert dataset_tag(tiny_dataset).startswith(
            f"unit-{len(tiny_dataset)}-")
        assert dataset_tag(profile="paper") == "paper"

    def test_same_size_different_content_does_not_alias(
            self, tiny_dataset):
        """Two same-length datasets with different samples must key
        different artifacts (content digest, not just len())."""
        first = Dataset(samples=tiny_dataset.samples[:10],
                        profile=tiny_dataset.profile,
                        team_sizes=tiny_dataset.team_sizes)
        second = Dataset(samples=tiny_dataset.samples[10:20],
                         profile=tiny_dataset.profile,
                         team_sizes=tiny_dataset.team_sizes)
        assert len(first) == len(second)
        assert dataset_tag(first) != dataset_tag(second)

    def test_key_changes_with_every_component(self, tiny_dataset):
        config = ReproConfig(**CFG)
        base = artifact_key(config, dataset_tag(tiny_dataset))
        assert artifact_key(config, dataset_tag(profile="paper")) != base
        assert artifact_key(config.replace(feature_set="static-agg"),
                            dataset_tag(tiny_dataset)) != base
        assert artifact_key(config.replace(model="forest"),
                            dataset_tag(tiny_dataset)) != base
        assert artifact_key(
            config.replace(model_params={"max_depth": 3}),
            dataset_tag(tiny_dataset)) != base
        assert artifact_key(config.replace(seed=1),
                            dataset_tag(tiny_dataset)) != base

    def test_env_var_moves_the_cache(self, monkeypatch, tmp_path):
        target = str(tmp_path / "elsewhere")
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", target)
        path = artifact_path(ReproConfig(**CFG))
        assert path.startswith(target)


class TestHitsAndInvalidation:
    def test_identical_inputs_hit_cache_no_second_fit(
            self, tiny_dataset, cache_dir, fit_counter):
        config = ReproConfig(**CFG)
        clf1, hit1 = load_or_train(config, tiny_dataset, cache_dir)
        assert not hit1 and fit_counter["n"] == 1
        clf2, hit2 = load_or_train(config, tiny_dataset, cache_dir)
        assert hit2 and fit_counter["n"] == 1  # served from disk, no fit
        X = tiny_dataset.matrix(clf1.feature_names_)
        assert np.array_equal(clf1.predict_batch(X),
                              clf2.predict_batch(X))

    def test_code_version_change_forces_retrain(
            self, tiny_dataset, cache_dir, fit_counter, monkeypatch):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        assert fit_counter["n"] == 1
        monkeypatch.setattr(ac, "CODE_VERSION", ac.CODE_VERSION + 1)
        _, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert not hit and fit_counter["n"] == 2

    def test_dataset_tag_change_forces_retrain(
            self, tiny_dataset, cache_dir, fit_counter):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        subset = Dataset(samples=tiny_dataset.samples[:12],
                         profile=tiny_dataset.profile,
                         team_sizes=tiny_dataset.team_sizes)
        _, hit = load_or_train(config, subset, cache_dir)
        assert not hit and fit_counter["n"] == 2

    def test_same_size_content_change_forces_retrain(
            self, tiny_dataset, cache_dir, fit_counter):
        config = ReproConfig(**CFG)
        first = Dataset(samples=tiny_dataset.samples[:10],
                        profile=tiny_dataset.profile,
                        team_sizes=tiny_dataset.team_sizes)
        second = Dataset(samples=tiny_dataset.samples[10:20],
                         profile=tiny_dataset.profile,
                         team_sizes=tiny_dataset.team_sizes)
        load_or_train(config, first, cache_dir)
        _, hit = load_or_train(config, second, cache_dir)
        assert not hit and fit_counter["n"] == 2

    def test_feature_set_change_forces_retrain(
            self, tiny_dataset, cache_dir, fit_counter):
        load_or_train(ReproConfig(**CFG), tiny_dataset, cache_dir)
        _, hit = load_or_train(
            ReproConfig(**{**CFG, "feature_set": "static-agg"}),
            tiny_dataset, cache_dir)
        assert not hit and fit_counter["n"] == 2

    def test_force_retrains_and_rewrites(self, tiny_dataset, cache_dir,
                                         fit_counter):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        _, hit = load_or_train(config, tiny_dataset, cache_dir,
                               force=True)
        assert not hit and fit_counter["n"] == 2
        # the forced artifact is still a valid cache entry afterwards
        _, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert hit and fit_counter["n"] == 2

    def test_corrupt_artifact_is_retrained_over(self, tiny_dataset,
                                                cache_dir, fit_counter):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        path = artifact_path(config, tiny_dataset, cache_dir)
        with open(path, "w") as handle:
            handle.write("{corrupt")
        clf, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert not hit and fit_counter["n"] == 2
        assert clf.is_fitted
        with open(path) as handle:
            assert json.load(handle)["model_family"] == "tree"

    def test_stale_code_version_artifact_is_retrained_over(
            self, tiny_dataset, cache_dir, fit_counter):
        """An artifact sitting at the right path but written under a
        different CODE_VERSION must not be served."""
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        path = artifact_path(config, tiny_dataset, cache_dir)
        with open(path) as handle:
            payload = json.load(handle)
        payload["code_version"] = payload["code_version"] + 1
        with open(path, "w") as handle:
            json.dump(payload, handle)
        _, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert not hit and fit_counter["n"] == 2

    def test_miss_writes_artifact_to_cache_dir(self, tiny_dataset,
                                               cache_dir):
        config = ReproConfig(**CFG)
        path = artifact_path(config, tiny_dataset, cache_dir)
        assert not os.path.exists(path)
        load_or_train(config, tiny_dataset, cache_dir)
        assert os.path.exists(path)


class TestTtlInvalidation:
    """REPRO_ARTIFACT_TTL / load_or_train(ttl=...): age-bounded reuse."""

    def _backdate(self, path: str, seconds: float) -> None:
        stamp = os.path.getmtime(path) - seconds
        os.utime(path, (stamp, stamp))

    def test_fresh_artifact_hits_within_ttl(self, tiny_dataset,
                                            cache_dir, fit_counter):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        _, hit = load_or_train(config, tiny_dataset, cache_dir,
                               ttl=3600.0)
        assert hit and fit_counter["n"] == 1

    def test_aged_artifact_is_refit(self, tiny_dataset, cache_dir,
                                    fit_counter):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        path = artifact_path(config, tiny_dataset, cache_dir)
        self._backdate(path, 7200.0)
        assert ac.load_cached(config, tiny_dataset, cache_dir,
                              ttl=3600.0) is None
        _, hit = load_or_train(config, tiny_dataset, cache_dir,
                               ttl=3600.0)
        assert not hit and fit_counter["n"] == 2
        # the refit refreshed the artifact: it hits again now
        _, hit = load_or_train(config, tiny_dataset, cache_dir,
                               ttl=3600.0)
        assert hit and fit_counter["n"] == 2

    def test_env_var_ttl(self, tiny_dataset, cache_dir, fit_counter,
                         monkeypatch):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        path = artifact_path(config, tiny_dataset, cache_dir)
        self._backdate(path, 600.0)
        monkeypatch.setenv("REPRO_ARTIFACT_TTL", "3600")
        _, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert hit and fit_counter["n"] == 1
        monkeypatch.setenv("REPRO_ARTIFACT_TTL", "60")
        _, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert not hit and fit_counter["n"] == 2

    def test_explicit_ttl_overrides_env(self, tiny_dataset, cache_dir,
                                        fit_counter, monkeypatch):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        path = artifact_path(config, tiny_dataset, cache_dir)
        self._backdate(path, 600.0)
        monkeypatch.setenv("REPRO_ARTIFACT_TTL", "60")  # would expire
        _, hit = load_or_train(config, tiny_dataset, cache_dir,
                               ttl=3600.0)
        assert hit and fit_counter["n"] == 1

    def test_non_positive_ttl_always_refits(self, tiny_dataset,
                                            cache_dir, fit_counter):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        _, hit = load_or_train(config, tiny_dataset, cache_dir, ttl=0)
        assert not hit and fit_counter["n"] == 2

    def test_invalid_env_ttl_warns_and_never_expires(
            self, tiny_dataset, cache_dir, fit_counter, monkeypatch):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        monkeypatch.setenv("REPRO_ARTIFACT_TTL", "soon")
        with pytest.warns(RuntimeWarning, match="REPRO_ARTIFACT_TTL"):
            _, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert hit and fit_counter["n"] == 1

    def test_no_ttl_means_no_expiry(self, tiny_dataset, cache_dir,
                                    fit_counter):
        config = ReproConfig(**CFG)
        load_or_train(config, tiny_dataset, cache_dir)
        path = artifact_path(config, tiny_dataset, cache_dir)
        self._backdate(path, 10 * 365 * 24 * 3600.0)
        _, hit = load_or_train(config, tiny_dataset, cache_dir)
        assert hit and fit_counter["n"] == 1
