"""Parallel campaign, cache safety and batched-prediction equivalence."""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dataset.build import build_dataset
from repro.dataset.cache import SimCache, _safe_name
from repro.dataset.registry import get_kernel_spec
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import repeated_cv_predict
from repro.ml.tree import DecisionTreeClassifier
from repro.parallel import resolve_jobs

PARALLEL_KERNELS = ("gemm", "stream_triad", "fir")


class TestSafeNameCollisions:
    def test_distinct_ids_get_distinct_paths(self):
        assert _safe_name("a/b") != _safe_name("a_b")
        assert _safe_name("k:int32:512") != _safe_name("k:int32_512")

    def test_sanitised_output_is_filesystem_safe(self):
        name = _safe_name("weird/id with spaces:1")
        assert all(c.isalnum() or c in "._-" for c in name)

    def test_colliding_ids_do_not_cross_contaminate(self, tmp_path):
        cache = SimCache(str(tmp_path))
        cache.store("a/b", "fp", {"1": {"cycles": 1}})
        cache.store("a_b", "fp", {"1": {"cycles": 2}})
        assert cache.load("a/b", "fp") == {"1": {"cycles": 1}}
        assert cache.load("a_b", "fp") == {"1": {"cycles": 2}}


class TestConcurrentStore:
    def test_racing_writers_never_publish_torn_files(self, tmp_path):
        """Hammer one sample id from many threads; every observable
        state must be a complete entry from one writer."""
        cache = SimCache(str(tmp_path))
        payload = {str(t): {"cycles": t * 1000, "pad": "x" * 2000}
                   for t in range(1, 9)}

        def writer(worker: int) -> None:
            for _ in range(30):
                cache.store("shared:sample", f"fp{worker}", payload)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(writer, range(8)))

        path = cache._path("shared:sample")
        with open(path) as handle:
            data = json.load(handle)  # complete, valid JSON
        assert data["teams"] == payload
        assert data["fingerprint"] in {f"fp{w}" for w in range(8)}

    def test_no_temp_droppings_after_store(self, tmp_path):
        cache = SimCache(str(tmp_path))
        cache.store("s1", "fp", {"1": {"cycles": 1}})
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.endswith(".tmp")]
        assert leftovers == []


class TestParallelBuildEquality:
    @pytest.fixture(scope="class")
    def builds(self, tmp_path_factory):
        specs = [get_kernel_spec(name) for name in PARALLEL_KERNELS]
        serial_dir = str(tmp_path_factory.mktemp("serial_cache"))
        parallel_dir = str(tmp_path_factory.mktemp("parallel_cache"))
        serial = build_dataset("unit", specs=specs, cache_dir=serial_dir,
                               jobs=1)
        parallel = build_dataset("unit", specs=specs,
                                 cache_dir=parallel_dir, jobs=2)
        return serial, parallel

    def test_same_samples_labels_energies(self, builds):
        serial, parallel = builds
        assert [s.sample_id for s in serial.samples] \
            == [s.sample_id for s in parallel.samples]
        assert (serial.labels == parallel.labels).all()
        assert serial.energy_matrix.tolist() \
            == parallel.energy_matrix.tolist()
        assert [s.cycles for s in serial.samples] \
            == [s.cycles for s in parallel.samples]

    def test_saved_json_byte_identical(self, builds, tmp_path):
        serial, parallel = builds
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        serial.save(a)
        parallel.save(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_parallel_build_populates_shared_cache(self, tmp_path):
        specs = [get_kernel_spec("stream_triad")]
        cache_dir = str(tmp_path)
        first = build_dataset("unit", specs=specs, cache_dir=cache_dir,
                              jobs=2)
        # force a rebuild from the sim cache (not the dataset JSON)
        for name in os.listdir(cache_dir):
            if name.startswith("dataset_"):
                os.unlink(os.path.join(cache_dir, name))
        second = build_dataset("unit", specs=specs, cache_dir=cache_dir,
                               jobs=1)
        assert first.energy_matrix.tolist() \
            == second.energy_matrix.tolist()


class TestBatchedPredictionEquivalence:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(42)
        X_train = rng.standard_normal((300, 9))
        y_train = rng.integers(1, 9, size=300)
        X_test = rng.standard_normal((500, 9))
        return X_train, y_train, X_test

    def test_tree_predict_matches_rowwise(self, data):
        X_train, y_train, X_test = data
        tree = DecisionTreeClassifier(random_state=0)
        tree.fit(X_train, y_train)
        assert np.array_equal(tree.predict(X_test),
                              tree._predict_rowwise(X_test))

    def test_tree_proba_matches_rowwise(self, data):
        X_train, y_train, X_test = data
        tree = DecisionTreeClassifier(max_depth=4, random_state=1)
        tree.fit(X_train, y_train)
        assert np.array_equal(tree.predict_proba(X_test),
                              tree._predict_proba_rowwise(X_test))

    def test_single_leaf_tree(self):
        X = np.zeros((5, 3))
        y = np.ones(5, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(np.random.default_rng(0)
                             .standard_normal((10, 3))) == 1).all()

    def test_predict_empty_batch(self, data):
        X_train, y_train, _ = data
        tree = DecisionTreeClassifier(random_state=0)
        tree.fit(X_train, y_train)
        assert len(tree.predict(np.empty((0, 9)))) == 0

    def test_forest_predict_matches_loop(self, data):
        X_train, y_train, X_test = data
        forest = RandomForestClassifier(n_estimators=12, max_depth=6,
                                        random_state=3)
        forest.fit(X_train, y_train)
        assert np.array_equal(forest.predict(X_test),
                              forest._predict_loop(X_test))

    def test_forest_subset_classes_per_tree(self):
        """Bootstrap trees that miss classes still vote correctly."""
        rng = np.random.default_rng(0)
        X = rng.standard_normal((40, 4))
        y = np.r_[np.full(36, 2), np.array([5, 5, 7, 7])]
        forest = RandomForestClassifier(n_estimators=9, random_state=0)
        forest.fit(X, y)
        X_test = rng.standard_normal((60, 4))
        assert np.array_equal(forest.predict(X_test),
                              forest._predict_loop(X_test))


class TestParallelCv:
    def test_jobs_do_not_change_predictions(self):
        rng = np.random.default_rng(7)
        X = rng.standard_normal((80, 5))
        y = rng.integers(0, 3, size=80)
        factory = lambda: DecisionTreeClassifier(max_depth=4,  # noqa: E731
                                                 random_state=0)
        serial = repeated_cv_predict(factory, X, y, n_splits=4,
                                     repeats=3, seed=5, jobs=1)
        threaded = repeated_cv_predict(factory, X, y, n_splits=4,
                                       repeats=3, seed=5, jobs=2)
        assert np.array_equal(serial[0], threaded[0])
        assert np.allclose(serial[1], threaded[1])


class TestResolveJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(None, default=2) == 2

    def test_invalid_env_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning):
            assert resolve_jobs(None) == 1

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)
