"""Quickstart: build a kernel, find its minimum-energy core count.

Run with::

    python examples/quickstart.py

This walks the core loop of the paper: express an OpenMP kernel in the
IR, simulate it on the PULP cluster model at every team size, integrate
the Table-I energy model, and read off the minimum-energy configuration.
"""

from repro.energy.report import format_breakdown
from repro.features import extract_agg, extract_mca, extract_raw
from repro.ir import KernelBuilder, Load, Store
from repro.ir.expr import var
from repro.ir.types import DType
from repro.sim.results import minimum_energy_label, sweep_cores


def build_saxpy_like(dtype: DType, size_bytes: int):
    """y[i] += a * x[i], with a little extra arithmetic per element."""
    b = KernelBuilder("quickstart_axpy", dtype, size_bytes)
    n = b.split_elements(2)
    x, y = b.array("x", n), b.array("y", n)
    i = var("i")
    b.parallel_for("i", 0, n, [
        Load(x.name, i),
        Load(y.name, i),
        b.mul_add(),          # a * x[i] + y[i]
        b.op(2),              # extra arithmetic of the kernel's dtype
        Store(y.name, i),
    ])
    return b.build()


def main() -> None:
    kernel = build_saxpy_like(DType.FP32, size_bytes=4096)
    print(f"kernel: {kernel.name} ({kernel.dtype}, "
          f"{kernel.size_bytes} B payload)\n")

    # --- simulate at every team size and account energy -------------------
    results = sweep_cores(kernel)
    print("cores  cycles      energy [nJ]")
    for res in results:
        print(f"{res.team_size:>5}  {res.cycles:>9}  "
              f"{res.total_energy_fj / 1e6:>12.3f}")
    label = minimum_energy_label(results)
    print(f"\nminimum-energy configuration: {label} cores\n")

    best = min(results, key=lambda r: r.total_energy_fj)
    print(format_breakdown(best.energy, f"at {best.team_size} cores"))

    # --- the static features a compiler would see --------------------------
    print("\nstatic features (paper Table II):")
    for name, value in {**extract_raw(kernel), **extract_agg(kernel),
                        **extract_mca(kernel)}.items():
        print(f"  {name:<10} {value:>12.4f}")


if __name__ == "__main__":
    main()
