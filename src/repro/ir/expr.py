"""Affine integer expressions over loop variables.

Array indices and loop bounds in the dataset kernels are affine in the
enclosing loop variables (this is exactly the polyhedral fragment that
Polybench exercises).  Keeping them symbolic lets the same kernel IR serve
three consumers:

* the **compiler**, which emits Python source evaluating the expression
  with loop variables as local integers;
* the **static feature extractors**, which need trip counts and access
  counts without running anything;
* the **validators/tests**, which evaluate expressions on concrete
  environments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

AffineLike = Union["Affine", int]


class Affine:
    """An immutable affine form ``const + sum(coef_v * v)``.

    Instances support ``+``, ``-``, ``*`` (by integer constants) and mixed
    arithmetic with plain ``int``; loop variables are created with
    :func:`var`.
    """

    __slots__ = ("const", "terms")

    def __init__(self, const: int = 0,
                 terms: Mapping[str, int] | None = None) -> None:
        self.const = int(const)
        clean = {}
        if terms:
            for name, coef in terms.items():
                coef = int(coef)
                if coef != 0:
                    clean[name] = coef
        self.terms = dict(sorted(clean.items()))

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def wrap(value: AffineLike) -> "Affine":
        """Coerce an ``int`` (or pass through an :class:`Affine`)."""
        if isinstance(value, Affine):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"cannot build an affine expression from "
                            f"{type(value).__name__}")
        return Affine(value)

    # -- algebra -------------------------------------------------------------

    def __add__(self, other: AffineLike) -> "Affine":
        other = Affine.wrap(other)
        terms = dict(self.terms)
        for name, coef in other.terms.items():
            terms[name] = terms.get(name, 0) + coef
        return Affine(self.const + other.const, terms)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(-self.const, {n: -c for n, c in self.terms.items()})

    def __sub__(self, other: AffineLike) -> "Affine":
        return self + (-Affine.wrap(other))

    def __rsub__(self, other: AffineLike) -> "Affine":
        return Affine.wrap(other) + (-self)

    def __mul__(self, factor: int) -> "Affine":
        if isinstance(factor, Affine):
            if not factor.terms:
                factor = factor.const
            elif not self.terms:
                return factor * self.const
            else:
                raise TypeError("product of two non-constant affine "
                                "expressions is not affine")
        if not isinstance(factor, int):
            raise TypeError(f"affine expressions scale by int, not "
                            f"{type(factor).__name__}")
        return Affine(self.const * factor,
                      {n: c * factor for n, c in self.terms.items()})

    __rmul__ = __mul__

    # -- queries -------------------------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate with loop variables bound by *env*."""
        value = self.const
        for name, coef in self.terms.items():
            value += coef * env[name]
        return value

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def variables(self) -> frozenset[str]:
        """Names of the loop variables this expression references."""
        return frozenset(self.terms)

    def substitute(self, env: Mapping[str, AffineLike]) -> "Affine":
        """Replace some variables by affine expressions (or constants)."""
        result = Affine(self.const)
        for name, coef in self.terms.items():
            if name in env:
                result = result + Affine.wrap(env[name]) * coef
            else:
                result = result + Affine(0, {name: coef})
        return result

    def to_python(self) -> str:
        """Render as a Python integer expression over the loop variables."""
        parts: list[str] = []
        for name, coef in self.terms.items():
            if coef == 1:
                parts.append(name)
            elif coef == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coef}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        src = "+".join(parts).replace("+-", "-")
        return src if len(parts) == 1 else f"({src})"

    # -- dunder plumbing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Affine(other)
        if not isinstance(other, Affine):
            return NotImplemented
        return self.const == other.const and self.terms == other.terms

    def __hash__(self) -> int:
        return hash((self.const, tuple(self.terms.items())))

    def __repr__(self) -> str:
        return f"Affine({self.to_python()})"


def var(name: str) -> Affine:
    """Create the affine expression consisting of the single variable *name*."""
    if not name.isidentifier():
        raise ValueError(f"loop variable name must be an identifier, "
                         f"got {name!r}")
    return Affine(0, {name: 1})


def max_of(values: Iterable[int]) -> int:
    """``max`` with a 0 default, used for conservative trip estimates."""
    values = list(values)
    return max(values) if values else 0
