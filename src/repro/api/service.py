"""JSON-lines batch-scoring service (the ``repro serve`` backend).

One JSON object per input line, one JSON object per output line — the
simplest protocol that composes with shell pipes, socket wrappers and
container health checks alike.  Requests:

``{"kernel": "gemm", "dtype": "fp32", "size": 2048}``
    build the named dataset kernel and score it (``dtype`` defaults to
    ``int32``, ``size`` to 2048 bytes);
``{"features": {"name": value, ...}}``
    score an explicit feature mapping;
``{"rows": [[...], ...]}``
    score a batch of pre-assembled feature vectors;
``{"cmd": "info"}``
    describe the loaded model (family, feature set, versions).

Every request may carry an ``"id"`` which is echoed in the response.
Responses are ``{"ok": true, "prediction": k}`` (or ``"predictions"``
for batches, ``"info"`` for info) or ``{"ok": false, "error": "..."}``;
a malformed line never kills the service.
"""

from __future__ import annotations

import json
import sys

from repro.api.classifier import Classifier
from repro.dataset.registry import get_kernel_spec
from repro.errors import ReproError
from repro.ir.types import parse_dtype


def handle_request(classifier: Classifier, request) -> dict:
    """Score one decoded request; errors become error responses."""
    response: dict = {"ok": True}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    try:
        if not isinstance(request, dict):
            raise ReproError("request must be a JSON object")
        if request.get("cmd") == "info":
            response["info"] = classifier.info()
        elif "rows" in request:
            preds = classifier.predict_batch(request["rows"])
            response["predictions"] = [int(p) for p in preds]
        elif "features" in request:
            response["prediction"] = classifier.predict(
                request["features"])
        elif "kernel" in request:
            spec = get_kernel_spec(str(request["kernel"]))
            dtype = parse_dtype(str(request.get("dtype", "int32")))
            size = int(request.get("size", 2048))
            kernel = spec.build(dtype, size)
            response["prediction"] = classifier.predict(kernel)
        else:
            raise ReproError(
                "unsupported request; expected one of the keys "
                "'kernel', 'features', 'rows' or cmd='info'")
    except (ReproError, TypeError, ValueError) as exc:
        return {"ok": False, "error": str(exc),
                **({"id": request["id"]}
                   if isinstance(request, dict) and "id" in request
                   else {})}
    return response


def serve(classifier: Classifier, stdin=None, stdout=None) -> int:
    """Serve JSON-lines requests until EOF; returns requests handled."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    handled = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {"ok": False, "error": f"invalid JSON: {exc}"}
        else:
            response = handle_request(classifier, request)
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        handled += 1
    return handled
