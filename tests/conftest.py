"""Shared fixtures.

The ``tiny_dataset`` fixture runs a real (small) labelling campaign once
per session: ten kernels at 512 B, both dtypes where supported — enough
samples for the ML/experiment layers to train on without slowing the
suite down.
"""

from __future__ import annotations

import os

import pytest

from repro.dataset.build import build_dataset
from repro.dataset.registry import get_kernel_spec
from repro.ir import KernelBuilder, Load, Loop, Store
from repro.ir.expr import var
from repro.ir.types import DType
from repro.platform.config import ClusterConfig

TINY_KERNELS = (
    "gemm", "atax", "fir", "stream_triad", "fpu_saturate",
    "bank_hammer", "critical_update", "trisolv", "histogram",
    "compute_dense", "seq_then_par", "jacobi-1d",
)


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the model-artifact cache at a session temp dir, so tests
    never pollute (or get poisoned by) the developer's .repro_cache."""
    previous = os.environ.get("REPRO_ARTIFACT_CACHE")
    os.environ["REPRO_ARTIFACT_CACHE"] = str(
        tmp_path_factory.mktemp("artifact_cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_ARTIFACT_CACHE", None)
    else:
        os.environ["REPRO_ARTIFACT_CACHE"] = previous


@pytest.fixture(scope="session")
def config() -> ClusterConfig:
    return ClusterConfig()


@pytest.fixture()
def axpy_kernel():
    """A small dual-array streaming kernel (int32, 512 B)."""
    return make_axpy(DType.INT32, 512)


@pytest.fixture()
def axpy_fp_kernel():
    return make_axpy(DType.FP32, 512)


def make_axpy(dtype: DType, size_bytes: int):
    builder = KernelBuilder("axpy", dtype, size_bytes)
    n = builder.split_elements(2)
    x, y = builder.array("x", n), builder.array("y", n)
    i = var("i")
    builder.parallel_for("i", 0, n, [
        Load(x.name, i), Load(y.name, i), builder.mul_add(),
        Store(y.name, i),
    ])
    return builder.build()


def make_matmul(dtype: DType, size_bytes: int):
    builder = KernelBuilder("mini_matmul", dtype, size_bytes)
    n = builder.square_side(3)
    a = builder.array("A", n * n)
    b = builder.array("B", n * n)
    c = builder.array("C", n * n)
    i, j, k = var("i"), var("j"), var("k")
    builder.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Loop("k", 0, n, [
                Load(a.name, i * n + k), Load(b.name, k * n + j),
                builder.mul_add(),
            ]),
            Store(c.name, i * n + j),
        ]),
    ])
    return builder.build()


@pytest.fixture(scope="session")
def tiny_dataset(tmp_path_factory):
    """A real labelled mini-dataset (ten kernels, 512 B)."""
    cache_dir = str(tmp_path_factory.mktemp("repro_cache"))
    specs = [get_kernel_spec(name) for name in TINY_KERNELS]
    return build_dataset("unit", specs=specs, cache_dir=cache_dir)
