"""Tests for the :mod:`repro.api` service layer."""

import io
import json

import numpy as np
import pytest

from repro.api import (
    DEFAULT_TOLERANCES,
    Classifier,
    ReproConfig,
    available_feature_sets,
    available_model_families,
    evaluate_features,
    handle_request,
    model_family,
    register_feature_set,
    register_model_family,
    resolve_feature_set,
    serve,
)
from repro.api.registry import ModelFamily
from repro.errors import ConfigError, MLError
from repro.features.sets import feature_names
from repro.ir.types import DType
from repro.ml.metrics import mean_tolerance_curve
from repro.ml.model_selection import repeated_cv_predict
from repro.ml.tree import DecisionTreeClassifier
from repro.version import CODE_VERSION

from tests.conftest import make_axpy


def _trained(tiny_dataset, model="tree", params=None,
             feature_set="static-all") -> Classifier:
    config = ReproConfig(profile="unit", feature_set=feature_set,
                         model=model, model_params=params or {})
    return Classifier(config).train(tiny_dataset)


class TestReproConfig:
    def test_defaults(self):
        config = ReproConfig()
        assert config.profile == "paper"
        assert config.model == "tree"
        assert config.resolved_repeats() >= 1

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(profile="bogus")

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ConfigError):
            ReproConfig(n_splits=1)
        with pytest.raises(ConfigError):
            ReproConfig(repeats=0)

    def test_from_env_reads_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "unit")
        assert ReproConfig.from_env().profile == "unit"

    def test_replace_revalidates(self):
        config = ReproConfig(profile="unit")
        assert config.replace(model="forest").model == "forest"
        with pytest.raises(ConfigError):
            config.replace(profile="nope")

    def test_dict_round_trip(self):
        config = ReproConfig(profile="unit", model="forest",
                             model_params={"n_estimators": 3}, seed=7)
        assert ReproConfig.from_dict(config.as_dict()) == config


class TestRegistries:
    def test_shipped_families_and_sets(self):
        assert {"tree", "forest", "always-k"} <= \
            set(available_model_families())
        assert {"static-all", "static-opt", "dynamic", "dynamic-opt"} <= \
            set(available_feature_sets())

    def test_unknown_model_family(self):
        with pytest.raises(MLError, match="unknown model family"):
            model_family("boosted-stump")

    def test_unknown_feature_set(self):
        with pytest.raises(MLError, match="unknown feature set"):
            resolve_feature_set("static-imaginary")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MLError, match="already registered"):
            register_model_family(ModelFamily(
                name="tree", factory=lambda: None,
                to_payload=lambda m: {}, from_payload=lambda d: None))
        with pytest.raises(MLError, match="already registered"):
            register_feature_set("static-all", names=("op",))

    def test_custom_feature_set_plugs_in(self):
        from repro.api.registry import _FEATURE_RESOLVERS
        register_feature_set("test-just-op", names=("op", "tcdm"),
                             override=True)
        try:
            assert resolve_feature_set("test-just-op") == ["op", "tcdm"]
        finally:
            # the registry is process-global; leaking the entry would
            # make later tests order-dependent
            _FEATURE_RESOLVERS.pop("test-just-op", None)

    def test_fixed_sets_match_feature_names(self):
        assert resolve_feature_set("static-agg") == \
            feature_names("static-agg")

    def test_opt_set_needs_dataset(self):
        with pytest.raises(MLError, match="needs a dataset"):
            resolve_feature_set("static-opt")

    def test_opt_set_resolves_on_dataset(self, tiny_dataset):
        kept = resolve_feature_set("static-opt", tiny_dataset, repeats=2)
        assert set(kept) <= set(feature_names("static-all"))
        assert len(kept) >= 3


class TestTrainPredict:
    def test_untrained_predict_raises(self):
        with pytest.raises(MLError, match="not trained"):
            Classifier().predict([0.0])

    def test_predict_batch_agrees_with_rowwise_predict(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        X = tiny_dataset.matrix(clf.feature_names_)
        batch = clf.predict_batch(X)
        rowwise = [clf.predict(row) for row in X]
        assert list(batch) == rowwise

    def test_predict_accepts_mapping(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        X = tiny_dataset.matrix(clf.feature_names_)
        mapping = dict(zip(clf.feature_names_, X[0]))
        assert clf.predict(mapping) == clf.predict(X[0])

    def test_predict_mapping_missing_feature(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        with pytest.raises(MLError, match="missing"):
            clf.predict({clf.feature_names_[0]: 1.0})

    def test_predict_bad_vector_shape(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        with pytest.raises(MLError, match="shape"):
            clf.predict([1.0, 2.0])

    def test_predict_batch_of_dicts(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        X = tiny_dataset.matrix(clf.feature_names_)
        rows = [dict(zip(clf.feature_names_, row)) for row in X[:4]]
        assert list(clf.predict_batch(rows)) == list(clf.predict_batch(X[:4]))

    def test_predict_batch_empty(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        assert len(clf.predict_batch([])) == 0

    def test_predict_from_kernel_ir(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        prediction = clf.predict(make_axpy(DType.INT32, 512))
        assert prediction in range(1, 9)

    def test_train_builds_dataset_when_omitted(self, tiny_dataset,
                                               monkeypatch):
        calls = {}

        def fake_build(profile, progress=None, jobs=None):
            calls["profile"] = profile
            return tiny_dataset

        monkeypatch.setattr("repro.api.classifier.build_dataset",
                            fake_build)
        clf = Classifier(ReproConfig(profile="unit")).train()
        assert calls["profile"] == "unit"
        assert clf.is_fitted


class TestArtifacts:
    @pytest.mark.parametrize("model,params", [
        ("tree", {}),
        ("forest", {"n_estimators": 5}),
    ])
    def test_save_load_predict_round_trip(self, tiny_dataset, tmp_path,
                                          model, params):
        clf = _trained(tiny_dataset, model=model, params=params)
        X = tiny_dataset.matrix(clf.feature_names_)
        expected = clf.predict_batch(X)
        path = str(tmp_path / "model.json")
        clf.save(path)
        loaded = Classifier.load(path)
        assert loaded.feature_names_ == clf.feature_names_
        assert loaded.classes_ == clf.classes_
        assert np.array_equal(loaded.predict_batch(X), expected)

    def test_artifact_is_json_with_versions(self, tiny_dataset, tmp_path):
        clf = _trained(tiny_dataset)
        path = str(tmp_path / "model.json")
        clf.save(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["code_version"] == CODE_VERSION
        assert payload["model_family"] == "tree"
        assert payload["feature_set"] == "static-all"

    def _tampered(self, tiny_dataset, tmp_path, **changes) -> str:
        clf = _trained(tiny_dataset)
        path = str(tmp_path / "model.json")
        clf.save(path)
        with open(path) as handle:
            payload = json.load(handle)
        payload.update(changes)
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return path

    def test_code_version_mismatch_raises(self, tiny_dataset, tmp_path):
        path = self._tampered(tiny_dataset, tmp_path,
                              code_version=CODE_VERSION + 1)
        with pytest.raises(MLError, match="code "):
            Classifier.load(path)

    def test_code_version_mismatch_can_be_forced(self, tiny_dataset,
                                                 tmp_path):
        path = self._tampered(tiny_dataset, tmp_path,
                              code_version=CODE_VERSION + 1)
        loaded = Classifier.load(path, allow_version_mismatch=True)
        assert loaded.is_fitted

    def test_unknown_feature_set_raises(self, tiny_dataset, tmp_path):
        path = self._tampered(tiny_dataset, tmp_path,
                              feature_set="static-imaginary")
        with pytest.raises(MLError, match="unknown feature set"):
            Classifier.load(path)

    def test_unknown_model_family_raises(self, tiny_dataset, tmp_path):
        path = self._tampered(tiny_dataset, tmp_path,
                              model_family="boosted-stump")
        with pytest.raises(MLError, match="unknown model family"):
            Classifier.load(path)

    def test_future_format_version_raises(self, tiny_dataset, tmp_path):
        path = self._tampered(tiny_dataset, tmp_path, format_version=99)
        with pytest.raises(MLError, match="format version"):
            Classifier.load(path)

    def test_wrong_format_raises(self, tmp_path):
        path = str(tmp_path / "model.json")
        with open(path, "w") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(MLError, match="not a repro classifier"):
            Classifier.load(path)

    def test_cyclic_node_graph_raises(self, tiny_dataset, tmp_path):
        """Tampered child indices (cycles, negative aliasing) must be
        rejected instead of hanging the flattening traversal."""
        clf = _trained(tiny_dataset)
        path = str(tmp_path / "model.json")
        clf.save(path)
        with open(path) as handle:
            payload = json.load(handle)
        nodes = payload["model"]["nodes"]
        internal = next(i for i, f in enumerate(nodes["feature"])
                        if f >= 0)
        for bad_child in (internal, -2, len(nodes["feature"])):
            tampered = json.loads(json.dumps(payload))
            tampered["model"]["nodes"]["left"][internal] = bad_child
            with open(path, "w") as handle:
                json.dump(tampered, handle)
            with pytest.raises(MLError):
                Classifier.load(path)

    def test_unreadable_artifact_raises(self, tmp_path):
        with pytest.raises(MLError, match="cannot read"):
            Classifier.load(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(MLError, match="not valid JSON"):
            Classifier.load(str(bad))


class TestEvaluate:
    def test_matches_direct_protocol(self, tiny_dataset):
        """The API evaluation is numerically identical to the paper's
        hand-rolled repeated-CV pipeline (the experiments rely on it)."""
        names = feature_names("static-agg")
        X = tiny_dataset.matrix(names)
        preds, imps = repeated_cv_predict(
            lambda: DecisionTreeClassifier(random_state=0), X,
            tiny_dataset.labels, n_splits=10, repeats=2, seed=0)
        expected = mean_tolerance_curve(
            preds, tiny_dataset.energy_matrix, DEFAULT_TOLERANCES,
            tiny_dataset.team_sizes)
        report = evaluate_features(tiny_dataset, names, repeats=2)
        assert report.curve == expected
        assert np.array_equal(report.importances, imps)

    def test_baseline_family_skips_cv(self, tiny_dataset):
        clf = Classifier(ReproConfig(model="always-k",
                                     model_params={"k": 8}))
        report = clf.evaluate(tiny_dataset, repeats=2, feature_names=[])
        expected = mean_tolerance_curve(
            np.full(len(tiny_dataset), 8, dtype=int),
            tiny_dataset.energy_matrix, DEFAULT_TOLERANCES,
            tiny_dataset.team_sizes)
        assert report.curve == expected
        assert report.predictions.shape == (1, len(tiny_dataset))

    def test_accuracy_at(self, tiny_dataset):
        report = evaluate_features(tiny_dataset,
                                   feature_names("static-agg"), repeats=2)
        assert report.accuracy_at(0) == report.curve[0]


class TestServe:
    def test_rows_features_kernel_and_info(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        X = tiny_dataset.matrix(clf.feature_names_)
        mapping = dict(zip(clf.feature_names_, X[0]))
        requests = "\n".join([
            json.dumps({"rows": X[:3].tolist(), "id": 1}),
            json.dumps({"features": mapping, "id": 2}),
            json.dumps({"kernel": "gemm", "size": 512, "id": 3}),
            json.dumps({"cmd": "info", "id": 4}),
        ]) + "\n"
        out = io.StringIO()
        handled = serve(clf, io.StringIO(requests), out)
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert handled == 4
        assert all(r["ok"] for r in responses)
        assert responses[0]["predictions"] == \
            [int(p) for p in clf.predict_batch(X[:3])]
        assert responses[1]["prediction"] == clf.predict(X[0])
        assert responses[3]["info"]["model_family"] == "tree"
        assert [r["id"] for r in responses] == [1, 2, 3, 4]

    def test_errors_do_not_kill_the_service(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        requests = "\n".join([
            "this is not json",
            json.dumps({"features": {"op": 1.0}}),
            json.dumps({"unknown": "request"}),
            json.dumps({"kernel": "no_such_kernel"}),
            json.dumps({"kernel": "gemm", "size": 512}),
        ]) + "\n"
        out = io.StringIO()
        handled = serve(clf, io.StringIO(requests), out)
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert handled == 5
        assert [r["ok"] for r in responses] == \
            [False, False, False, False, True]

    def test_handle_request_rejects_non_object(self, tiny_dataset):
        clf = _trained(tiny_dataset)
        response = handle_request(clf, ["not", "an", "object"])
        assert response["ok"] is False
        assert response["code"] == "bad_request"

    def test_malformed_json_yields_typed_frame_and_loop_survives(
            self, tiny_dataset):
        """A line that is not JSON must produce a structured error frame
        (ok=false + code) and leave the loop serving later lines."""
        clf = _trained(tiny_dataset)
        X = tiny_dataset.matrix(clf.feature_names_)
        requests = "\n".join([
            '{"rows": [',        # truncated JSON
            "plain garbage",
            json.dumps({"rows": X[:2].tolist(), "id": "after"}),
        ]) + "\n"
        out = io.StringIO()
        handled = serve(clf, io.StringIO(requests), out)
        frames = [json.loads(line)
                  for line in out.getvalue().splitlines()]
        assert handled == 3
        assert [f["ok"] for f in frames] == [False, False, True]
        assert frames[0]["code"] == "invalid_json"
        assert frames[1]["code"] == "invalid_json"
        assert "invalid JSON" in frames[0]["error"]
        assert frames[2]["id"] == "after"

    def test_missing_feature_keys_yield_typed_frame(self, tiny_dataset):
        """Rows / feature mappings missing feature keys must produce a
        structured error frame, not crash the loop."""
        clf = _trained(tiny_dataset)
        X = tiny_dataset.matrix(clf.feature_names_)
        incomplete = {clf.feature_names_[0]: 1.0}
        requests = "\n".join([
            json.dumps({"features": incomplete, "id": 1}),
            json.dumps({"rows": [incomplete], "id": 2}),
            json.dumps({"rows": [[1.0, 2.0]], "id": 3}),
            json.dumps({"features": X[0].tolist(), "id": 4}),
        ]) + "\n"
        out = io.StringIO()
        handled = serve(clf, io.StringIO(requests), out)
        frames = [json.loads(line)
                  for line in out.getvalue().splitlines()]
        assert handled == 4
        assert [f["ok"] for f in frames] == [False, False, False, True]
        for frame in frames[:3]:
            assert frame["code"] == "bad_request"
        assert "missing" in frames[0]["error"]
        assert [f["id"] for f in frames] == [1, 2, 3, 4]
