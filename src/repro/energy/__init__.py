"""Energy model and accounting (paper Table I).

The paper characterises every cluster component with per-event /
per-cycle energies in femtojoules, derived from post place-and-route
power analysis at 0.65 V.  We reproduce Table I verbatim as the default
:class:`EnergyModel` and integrate it over simulation counters to obtain
``E(kernel, n_cores)``.
"""

from repro.energy.model import (
    DmaEnergy,
    EnergyModel,
    FpuEnergy,
    IcacheEnergy,
    MemBankEnergy,
    OtherEnergy,
    PeEnergy,
)
from repro.energy.accounting import EnergyBreakdown, compute_energy
from repro.energy.report import format_breakdown, format_model_table

__all__ = [
    "EnergyModel",
    "PeEnergy",
    "FpuEnergy",
    "MemBankEnergy",
    "IcacheEnergy",
    "DmaEnergy",
    "OtherEnergy",
    "EnergyBreakdown",
    "compute_energy",
    "format_breakdown",
    "format_model_table",
]
