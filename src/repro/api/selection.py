"""Importance-based feature ranking and pruning (paper §IV.C).

This is the canonical home of the ``*-opt`` machinery: rank features by
gini importance averaged over the repeated stratified CV, then keep the
shortest ranked prefix covering a target share of the total importance.
:mod:`repro.experiments.optsets` re-exports these functions for
backwards compatibility; the :mod:`repro.api.registry` feature-set
resolvers (``static-opt``, ``dynamic-opt``) call them directly.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.build import Dataset
from repro.ml.model_selection import repeated_cv_predict
from repro.ml.tree import DecisionTreeClassifier

#: cumulative importance share the pruned set must retain.
DEFAULT_COVERAGE = 0.90
#: never prune below this many features.
MIN_FEATURES = 3


def rank_features(dataset: Dataset, names: list[str], n_splits: int = 10,
                  repeats: int = 5, seed: int = 0,
                  ) -> list[tuple[str, float]]:
    """(feature, mean importance) pairs, sorted by importance."""
    X = dataset.matrix(names)
    y = dataset.labels
    _, importances = repeated_cv_predict(
        lambda: DecisionTreeClassifier(random_state=seed), X, y,
        n_splits=n_splits, repeats=repeats, seed=seed)
    order = np.argsort(importances)[::-1]
    return [(names[i], float(importances[i])) for i in order]


def prune_by_importance(ranking: list[tuple[str, float]],
                        coverage: float = DEFAULT_COVERAGE,
                        min_features: int = MIN_FEATURES) -> list[str]:
    """Shortest importance-ranked prefix covering *coverage* of the mass."""
    total = sum(score for _, score in ranking) or 1.0
    kept: list[str] = []
    acc = 0.0
    for name, score in ranking:
        kept.append(name)
        acc += score / total
        if acc >= coverage and len(kept) >= min_features:
            break
    return kept


def optimised_set(dataset: Dataset, base_names: list[str],
                  n_splits: int = 10, repeats: int = 5, seed: int = 0,
                  coverage: float = DEFAULT_COVERAGE) -> list[str]:
    """The pruned (``*-opt``) feature list for a base feature set."""
    ranking = rank_features(dataset, base_names, n_splits=n_splits,
                            repeats=repeats, seed=seed)
    return prune_by_importance(ranking, coverage=coverage)
