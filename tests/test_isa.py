"""Unit tests for the abstract ISA (opcodes + textual encoding)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.isa import (
    OP_ALU,
    OP_DIV,
    OP_FDIV,
    OP_FP,
    OP_JMP,
    OP_LD,
    OP_LD2,
    OP_LOCK,
    OP_NOP,
    OP_ST,
    OP_ST2,
    OP_UNLOCK,
    OPCODE_NAMES,
)
from repro.isa import (
    format_instr,
    is_l1_access,
    is_l2_access,
    pack_lock,
    parse_instr,
    unpack_lock,
)
from repro.isa.opcodes import OP_DMA, validate_opcode


class TestOpcodeTables:
    def test_opcodes_are_dense_and_distinct(self):
        ops = [OP_ALU, OP_FP, OP_LD, OP_ST, OP_LD2, OP_ST2, OP_JMP,
               OP_NOP, OP_DIV, OP_FDIV, OP_LOCK, OP_UNLOCK, OP_DMA]
        assert sorted(ops) == list(range(len(ops)))
        assert len(OPCODE_NAMES) == len(ops)

    def test_access_classification(self):
        assert is_l1_access(OP_LD) and is_l1_access(OP_ST)
        assert is_l1_access(OP_LOCK) and is_l1_access(OP_UNLOCK)
        assert not is_l1_access(OP_LD2) and not is_l1_access(OP_ALU)
        assert is_l2_access(OP_LD2) and is_l2_access(OP_ST2)
        assert not is_l2_access(OP_LD)

    def test_validate_opcode_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_opcode(99)
        validate_opcode(OP_ALU)  # no raise


class TestLockPacking:
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=255))
    def test_roundtrip(self, lock_id, bank):
        assert unpack_lock(pack_lock(lock_id, bank)) == (lock_id, bank)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            pack_lock(-1, 0)
        with pytest.raises(ValueError):
            pack_lock(0, 256)


class TestEncoding:
    @pytest.mark.parametrize("op,arg", [
        (OP_ALU, 5), (OP_FP, 1), (OP_LD, 13), (OP_ST, 0), (OP_LD2, 31),
        (OP_ST2, 7), (OP_JMP, 1), (OP_NOP, 3), (OP_DIV, 2), (OP_FDIV, 1),
        (OP_LOCK, pack_lock(2, 9)), (OP_UNLOCK, pack_lock(0, 15)),
    ])
    def test_roundtrip_every_opcode(self, op, arg):
        assert parse_instr(format_instr(op, arg)) == (op, arg)

    def test_format_uses_mnemonics(self):
        assert format_instr(OP_LD, 3) == "lw bank=3"
        assert format_instr(OP_ALU, 4) == "alu n=4"
        assert format_instr(OP_LOCK, pack_lock(1, 2)) == "lock id=1 bank=2"

    @pytest.mark.parametrize("text", [
        "", "bogus n=1", "lw", "lw bank=", "lw bank=x", "lock id=1",
    ])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(TraceError):
            parse_instr(text)
