"""Structural validation of kernel IR.

Checks performed:

* array names are unique; every memory access targets a declared array;
* loop variables are unique along each nesting path and index expressions
  only reference in-scope variables;
* parallel regions appear only at top level or directly inside a
  :class:`SequentialFor`; their bounds are affine in enclosing
  sequential-for variables only;
* a kernel has at least one parallel region (the paper's samples are
  OpenMP kernels — a fully serial kernel has no scaling decision to make).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.nodes import (
    Barrier,
    Compute,
    Critical,
    DmaCopy,
    Kernel,
    Load,
    Loop,
    ParallelFor,
    Sequential,
    SequentialFor,
    Store,
)


def validate_kernel(kernel: Kernel) -> None:
    names = [arr.name for arr in kernel.arrays]
    if len(set(names)) != len(names):
        raise IRError(f"kernel {kernel.name!r}: duplicate array names")
    arrays = set(names)

    if not any(True for _ in kernel.parallel_regions()):
        raise IRError(f"kernel {kernel.name!r} has no parallel region")

    _check_regions(kernel, kernel.body, arrays, outer=())


def _check_regions(kernel: Kernel, regions: tuple, arrays: set,
                   outer: tuple) -> None:
    """Validate a sequence of top-level regions under *outer* seq vars."""
    for stmt in regions:
        if isinstance(stmt, ParallelFor):
            if stmt.var in outer:
                raise IRError(f"kernel {kernel.name!r}: parallel variable "
                              f"{stmt.var!r} shadows an enclosing loop")
            for bound in (stmt.lower, stmt.upper):
                unbound = bound.variables() - set(outer)
                if unbound:
                    raise IRError(
                        f"kernel {kernel.name!r}: parallel bounds use "
                        f"variables {sorted(unbound)} not bound by an "
                        f"enclosing sequential-for")
            _check_body(kernel, stmt.body, arrays,
                        scope=outer + (stmt.var,))
        elif isinstance(stmt, Sequential):
            _check_body(kernel, stmt.body, arrays, scope=outer)
        elif isinstance(stmt, SequentialFor):
            if outer:
                raise IRError(f"kernel {kernel.name!r}: sequential-for "
                              f"loops cannot nest")
            if not any(isinstance(s, ParallelFor) for s in stmt.body):
                raise IRError(f"kernel {kernel.name!r}: sequential-for "
                              f"over {stmt.var!r} contains no parallel "
                              f"region (use a plain Loop instead)")
            _check_regions(kernel, stmt.body, arrays,
                           outer=outer + (stmt.var,))
        elif isinstance(stmt, Barrier):
            continue
        else:
            raise IRError(f"kernel {kernel.name!r}: {type(stmt).__name__} "
                          f"is not allowed at region level")


def _check_body(kernel: Kernel, body: tuple, arrays: set,
                scope: tuple) -> None:
    for stmt in body:
        if isinstance(stmt, (Load, Store)):
            if stmt.array not in arrays:
                raise IRError(f"kernel {kernel.name!r}: access to undeclared "
                              f"array {stmt.array!r}")
            unbound = stmt.index.variables() - set(scope)
            if unbound:
                raise IRError(f"kernel {kernel.name!r}: index uses unbound "
                              f"variables {sorted(unbound)}")
        elif isinstance(stmt, Loop):
            if stmt.var in scope:
                raise IRError(f"kernel {kernel.name!r}: loop variable "
                              f"{stmt.var!r} shadows an enclosing loop")
            for bound in (stmt.lower, stmt.upper):
                unbound = bound.variables() - set(scope)
                if unbound:
                    raise IRError(f"kernel {kernel.name!r}: loop bound uses "
                                  f"unbound variables {sorted(unbound)}")
            _check_body(kernel, stmt.body, arrays, scope + (stmt.var,))
        elif isinstance(stmt, Critical):
            _check_body(kernel, stmt.body, arrays, scope)
        elif isinstance(stmt, (Compute, DmaCopy)):
            continue
        elif isinstance(stmt, (ParallelFor, Sequential, Barrier,
                               SequentialFor)):
            raise IRError(f"kernel {kernel.name!r}: {type(stmt).__name__} "
                          f"cannot be nested inside a loop body")
        else:
            raise IRError(f"kernel {kernel.name!r}: unexpected statement "
                          f"{type(stmt).__name__}")
