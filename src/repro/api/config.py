"""Typed run configuration for the :mod:`repro.api` service layer.

:class:`ReproConfig` gathers every knob that used to be scattered across
environment variables and per-function keyword arguments — dataset
profile, worker count, feature set, model family and hyper-parameters,
seed and evaluation protocol — into one validated, immutable object
that can be embedded verbatim in serialized model artifacts.

The environment helpers (:func:`active_profile`, :func:`cv_repeats`,
:func:`default_jobs`) are the canonical readers of ``$REPRO_PROFILE``,
``$REPRO_CV_REPEATS`` and ``$REPRO_JOBS``; the legacy
:mod:`repro.experiments.runner` module re-exports them for
backwards compatibility.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace

from repro.dataset.spec import PROFILES
from repro.errors import ConfigError
from repro.parallel import resolve_jobs

#: energy-tolerance thresholds of Figure 2 (percent).
DEFAULT_TOLERANCES = tuple(range(0, 9))


def cv_repeats(default: int = 10) -> int:
    """Repeat count for the CV protocol (``$REPRO_CV_REPEATS``)."""
    raw = os.environ.get("REPRO_CV_REPEATS")
    if raw is None:
        return max(1, default)
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"invalid REPRO_CV_REPEATS={raw!r} (not an integer); "
            f"falling back to {default}", RuntimeWarning, stacklevel=2)
        return default


def active_profile(default: str = "paper") -> str:
    """The dataset profile selected by ``$REPRO_PROFILE``."""
    profile = os.environ.get("REPRO_PROFILE", default)
    if profile not in PROFILES:
        warnings.warn(
            f"unknown REPRO_PROFILE={profile!r}; known profiles: "
            f"{sorted(PROFILES)}", RuntimeWarning, stacklevel=2)
    return profile


def default_jobs(default: int = 1) -> int:
    """Worker count from ``$REPRO_JOBS`` (see :mod:`repro.parallel`)."""
    return resolve_jobs(None, default=default)


@dataclass(frozen=True)
class ReproConfig:
    """Everything a :class:`repro.api.Classifier` needs to run.

    ``model`` and ``feature_set`` name entries in the
    :mod:`repro.api.registry`; they are validated lazily (at train /
    resolve time) so sets and families registered after construction
    remain usable.
    """

    profile: str = "paper"
    jobs: int | None = None          # None -> $REPRO_JOBS or 1
    feature_set: str = "static-all"
    model: str = "tree"
    model_params: dict = field(default_factory=dict)
    seed: int = 0
    n_splits: int = 10
    repeats: int | None = None       # None -> $REPRO_CV_REPEATS or 10

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ConfigError(f"unknown profile {self.profile!r}; "
                              f"available: {sorted(PROFILES)}")
        if self.n_splits < 2:
            raise ConfigError(f"n_splits must be >= 2, got {self.n_splits}")
        if self.repeats is not None and self.repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {self.repeats}")
        if not isinstance(self.model, str) or not self.model:
            raise ConfigError("model must be a non-empty family name")
        if not isinstance(self.feature_set, str) or not self.feature_set:
            raise ConfigError("feature_set must be a non-empty set name")

    @classmethod
    def from_env(cls, **overrides) -> "ReproConfig":
        """A config seeded from the ``REPRO_*`` environment variables."""
        base = {"profile": active_profile(), "jobs": None, "repeats": None}
        base.update(overrides)
        return cls(**base)

    def replace(self, **changes) -> "ReproConfig":
        """A copy with the given fields changed (re-validated)."""
        return replace(self, **changes)

    def resolved_jobs(self) -> int:
        return resolve_jobs(self.jobs)

    def resolved_repeats(self, default: int = 10) -> int:
        return self.repeats if self.repeats is not None \
            else cv_repeats(default)

    # -- artifact embedding ----------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "profile": self.profile,
            "jobs": self.jobs,
            "feature_set": self.feature_set,
            "model": self.model,
            "model_params": dict(self.model_params),
            "seed": self.seed,
            "n_splits": self.n_splits,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReproConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})
