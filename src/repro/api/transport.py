"""The unified transport core: one server stack, three thin adapters.

Before this module existed the repo carried **three** parallel serving
implementations — the stdio loop in :mod:`repro.api.service`, the
thread-pool socket daemon in :mod:`repro.api.daemon`, and the selectors
event loop in ``repro.api.fleet.eventloop`` — each re-implementing
framing, dispatch and error handling around the shared codec.  This
module is the single engine they all dispatch through now:

* :class:`RequestEngine` — scorer-agnostic dispatch.  Wraps either a
  fitted :class:`repro.api.Classifier` or a multi-model
  :class:`repro.api.fleet.ModelFleet` behind one ``request -> frame``
  surface, owns the protocol shell (decode, typed error frames, the
  ``MAX_REQUEST_BYTES`` guard, ``internal`` catch-alls), the
  server-level ``{"cmd": "stats"}`` admin verb, and the micro-batch
  fast path (:meth:`RequestEngine.fast_path` /
  :meth:`RequestEngine.execute_fast`) the event loop coalesces with.
* :class:`LineSplitter` — newline framing over a raw byte stream with
  the protocol's flood guard, shared by every socket transport.
* :class:`ThreadedServer` — the thread-per-connection transport
  (accept loop, worker semaphore, bounded backpressure through the
  kernel listen backlog).
* :class:`EventLoopServer` — the selectors transport (one IO thread,
  adaptive request coalescing, a worker pool for slow verbs,
  per-connection write buffers with ``EVENT_WRITE`` flow control).
* :func:`serve_stdio` — the stdin/stdout loop behind ``repro serve``.

All three adapters produce **byte-identical frames** for the same
requests because every line funnels through the same engine;
regression-tested in ``tests/test_transport.py``.  The transports own
sockets and threads only — they never interpret a request themselves.
"""

from __future__ import annotations

import os
import selectors
import socket
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api import service as _service
from repro.api.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DRAINING,
    ERROR_INTERNAL,
    MAX_REQUEST_BYTES,
    encode_frame,
    error_frame,
    ok_frame,
    request_id,
)
from repro.api.wire import (
    BINARY_V2_CODEC,
    CODEC_JSON,
    DEFAULT_CODECS,
    NO_ID,
    CodecCounters,
    PredictStream,
    WireSession,
    decode_json_raw,
    flood_frame,
    prediction_frame,
    too_large_frame,
)
from repro.errors import FleetError, MLError
from repro.obs import (
    BATCH_BUCKET_BOUNDS_ROWS,
    MetricsRegistry,
    SIZE_BUCKET_BOUNDS_BYTES,
    Tracer,
)

#: bytes read per ``recv`` on a readable connection.
RECV_BYTES = 262144

#: default worker count for the socket transports.
DEFAULT_WORKERS = 16

# the JSON wire shell moved to repro.api.wire when codecs became
# pluggable; these modules-of-record aliases keep the historical names
# importable (and the frames byte-identical)
_prediction_frame = prediction_frame
_too_large_frame = too_large_frame
_flood_frame = flood_frame
decode_raw = decode_json_raw


class LineSplitter:
    """Newline framing over a byte stream, with the protocol flood guard.

    Feed raw ``recv`` chunks in, get complete (newline-stripped) lines
    out.  When more than *max_bytes* accumulate without a newline the
    splitter flags :attr:`overflowed` — the stream cannot be
    resynchronized to a line boundary, so the owning transport answers
    one typed ``too_large`` frame and drops the connection.  Shared by
    both socket transports (and mirrored client-side by
    :class:`repro.api.client.ScoringClient`'s response bound).
    """

    __slots__ = ("buf", "max_bytes", "overflowed")

    def __init__(self, max_bytes: int = MAX_REQUEST_BYTES) -> None:
        self.buf = bytearray()
        self.max_bytes = max_bytes
        self.overflowed = False

    def feed(self, data: bytes) -> list:
        """Absorb *data*; return the complete lines it unlocked."""
        self.buf += data
        lines: list = []
        while True:
            idx = self.buf.find(b"\n")
            if idx < 0:
                break
            lines.append(bytes(self.buf[:idx]))
            del self.buf[:idx + 1]
        if len(self.buf) > self.max_bytes:
            self.overflowed = True
        return lines


class RequestEngine:
    """Scorer-agnostic protocol dispatch: one engine, every transport.

    *scorer* is either a fitted :class:`repro.api.Classifier` or any
    object exposing ``handle_request(request) -> frame`` plus
    ``stats()`` (duck-typed so :class:`repro.api.fleet.ModelFleet`
    plugs in without an import cycle).  The engine owns:

    * request dispatch (:meth:`handle`), including the server-level
      ``{"cmd": "stats"}`` admin verb;
    * the protocol shell for both text lines (:meth:`process_line`,
      the stdio path) and raw byte lines (:meth:`process_raw`, the
      socket paths) — size guard, typed ``invalid_json`` /
      ``too_large`` / ``internal`` frames, blank-line skipping;
    * the micro-batch fast path: :meth:`fast_path` classifies a
      decoded request as coalescible and :meth:`execute_fast` scores a
      coalesced chunk with per-row fallback, so batching behaves
      identically wherever it is driven from;
    * the fleet-ops control verbs ``{"cmd": "health"}`` (liveness /
      drain state, answered inline on every transport) and
      ``{"cmd": "drain"}`` (begin a graceful drain through
      :attr:`drain_hook` — see :meth:`repro.api.daemon.ScoringDaemon.
      request_drain`).  While :attr:`draining` is set, scoring
      requests are refused with a typed ``draining`` frame so clients
      re-resolve the shard registry and land on a live sibling.
    """

    def __init__(self, scorer, metrics=None) -> None:
        if hasattr(scorer, "handle_request"):
            self.fleet = scorer
            self.classifier = None
            self._default_classifier = None  # primed lazily (pool peek)
        else:
            self.fleet = None
            self.classifier = scorer
            self._default_classifier = scorer
        self._stats_sources: dict = {}
        #: the telemetry registry (see :mod:`repro.obs`): pass
        #: ``metrics=False`` to serve uninstrumented (the bench
        #: baseline), a registry to share one across components, or
        #: nothing for a fresh per-engine registry
        if metrics is False:
            self.obs = None
            self.tracer = None
        else:
            self.obs = (metrics if metrics is not None
                        else MetricsRegistry())
            self.tracer = Tracer.from_env()
        # instrument sites resolve metrics once and cache the object,
        # so the per-request path never takes the registry lock
        self._metric_cache: dict = {}
        # the hot-path triple (score latency, bytes in, bytes out) per
        # codec: one interned-string dict hit per scoring request
        # instead of three tuple-keyed lookups (see observe_request)
        self._hot_cache: dict = {}
        #: set by the owning daemon once a drain begins; checked on
        #: both the slow path (:meth:`handle`) and the coalescing fast
        #: path (:meth:`fast_path`), which bypasses handle entirely
        self.draining = False
        #: callable starting a graceful drain (wired by the daemon);
        #: ``None`` means this engine's transport cannot drain
        self.drain_hook = None

    # -- introspection -----------------------------------------------------

    def add_stats_source(self, name: str, source) -> None:
        """Register a named callable contributing to the stats verb."""
        self._stats_sources[name] = source

    def stats(self) -> dict:
        """The stats tree: every registered source plus scorer stats."""
        stats: dict = {}
        for name, source in self._stats_sources.items():
            stats[name] = source()
        if self.fleet is not None and hasattr(self.fleet, "stats"):
            stats["fleet"] = self.fleet.stats()
        return stats

    def health(self) -> dict:
        """The ``{"cmd": "health"}`` payload: status, pid, shard identity."""
        payload = {
            "status": "draining" if self.draining else "serving",
            "pid": os.getpid(),
            "draining": bool(self.draining),
        }
        shard = self._stats_sources.get("shard")
        if shard is not None:
            payload["shard"] = shard()
        return payload

    # -- observability -----------------------------------------------------

    def metrics_payload(self) -> dict:
        """The ``{"cmd": "metrics"}`` payload: one registry snapshot.

        ``enabled`` distinguishes "no traffic yet" from "serving with
        metrics off"; merge the ``series`` of many shards with
        :func:`repro.obs.merge_series` (bucket-wise), never by
        averaging percentiles.
        """
        if self.obs is None:
            return {"enabled": False, "series": []}
        payload = self.obs.snapshot()
        payload["enabled"] = True
        if self.tracer is not None:
            payload["trace"] = self.tracer.snapshot()
        return payload

    def latency_histogram(self, verb: str, codec: str, model: str):
        """The request-latency histogram for one label combination."""
        key = ("latency", verb, codec, model)
        hist = self._metric_cache.get(key)
        if hist is None:
            hist = self.obs.histogram("repro_request_latency_us",
                                      verb=verb, codec=codec,
                                      model=model)
            self._metric_cache[key] = hist
        return hist

    def _size_histogram(self, direction: str, codec: str):
        key = ("bytes", direction, codec)
        hist = self._metric_cache.get(key)
        if hist is None:
            hist = self.obs.histogram("repro_request_bytes",
                                      bounds=SIZE_BUCKET_BOUNDS_BYTES,
                                      direction=direction, codec=codec)
            self._metric_cache[key] = hist
        return hist

    def _hot_metrics(self, codec: str):
        """The pre-resolved (latency, bytes-in, bytes-out) triple for
        plain scoring requests under *codec* — the hot-path shape."""
        trio = self._hot_cache.get(codec)
        if trio is None:
            trio = (self.latency_histogram("score", codec, "default"),
                    self._size_histogram("in", codec),
                    self._size_histogram("out", codec))
            self._hot_cache[codec] = trio
        return trio

    def prime_observability(self, codecs) -> None:
        """Resolve the hot-path metric handles for every offered codec.

        Called once at transport start (connection setup cost, not
        per-request): after it, :meth:`observe_request` on a scoring
        request is one dict hit plus the records themselves — never a
        registry lock, never a label-tuple build.
        """
        if self.obs is None:
            return
        for name in codecs:
            self._hot_metrics(name)

    def observe_request(self, request, codec: str, started_ns: int,
                        bytes_in: int | None = None,
                        bytes_out: int | None = None,
                        ended_ns: int | None = None) -> None:
        """Record one answered request: latency, sizes, slow log.

        Called by every transport with the codec it spoke and the
        ``perf_counter_ns`` reading it took at ingress; a no-op on
        uninstrumented engines, so transports need no guard of their
        own beyond skipping the clock read.  Transports that already
        took an egress clock reading pass it as *ended_ns* so the
        request costs no extra clock call here.
        """
        if self.obs is None:
            return
        if ended_ns is None:
            ended_ns = time.perf_counter_ns()
        elapsed_us = (ended_ns - started_ns) / 1000.0
        verb = model = None
        if type(request) is dict:
            cmd = request.get("cmd")
            if cmd is not None:
                verb = str(cmd)
            spec = request.get("model")
            if spec is not None:
                model = str(spec)
        if verb is None and model is None:
            # the hot shape (a scoring request on the default model,
            # including decoded PredictStreams): pre-resolved handles
            latency, size_in, size_out = self._hot_metrics(codec)
        else:
            verb = verb or "score"
            model = model or "default"
            latency = self.latency_histogram(verb, codec, model)
            size_in = size_out = None
        latency.record(elapsed_us)
        if bytes_in is not None:
            (size_in if size_in is not None
             else self._size_histogram("in", codec)).record(bytes_in)
        if bytes_out is not None:
            (size_out if size_out is not None
             else self._size_histogram("out", codec)).record(bytes_out)
        tracer = self.tracer
        if (tracer is not None and tracer.slow_request_us
                and elapsed_us >= tracer.slow_request_us):
            # threshold inlined: the common (fast-request) case skips
            # the call and its keyword packing entirely
            tracer.observe_slow(elapsed_us, verb or "score",
                                codec=codec,
                                model=model or "default")

    def close_observability(self) -> None:
        """Flush buffered trace events (called off the serving paths)."""
        if self.tracer is not None:
            try:
                self.tracer.flush()
            except OSError:
                pass  # an unwritable trace path must not fail shutdown

    # -- dispatch ----------------------------------------------------------

    def handle(self, request) -> dict:
        """One decoded request to one response frame."""
        if isinstance(request, dict):
            cmd = request.get("cmd")
            if self.draining and cmd is None:
                # scoring requests (features / rows / kernel) are
                # refused while draining; control and admin verbs keep
                # answering so supervisors can watch the drain complete
                return error_frame(
                    ERROR_DRAINING,
                    "server is draining and accepts no new scoring "
                    "requests; retry on another shard",
                    request_id(request),
                )
            if cmd == "stats":
                return ok_frame({"stats": self.stats()},
                                request_id(request))
            if cmd == "health":
                return ok_frame({"health": self.health()},
                                request_id(request))
            if cmd == "metrics":
                return ok_frame({"metrics": self.metrics_payload()},
                                request_id(request))
            if cmd == "drain":
                if self.drain_hook is None:
                    return error_frame(
                        ERROR_BAD_REQUEST,
                        "this server has no drain support (no owning "
                        "daemon wired a drain hook)",
                        request_id(request),
                    )
                # set synchronously so the ack already guarantees new
                # scoring requests are refused; the hook runs the slow
                # half (pause accept, wait, stop) off this thread
                self.draining = True
                started = self.drain_hook()
                return ok_frame(
                    {"draining": True, "started": bool(started)},
                    request_id(request),
                )
            if cmd == "hello":
                # codec negotiation is per-connection transport state;
                # the socket paths intercept hello in respond() before
                # it reaches the engine, so an engine-level hello can
                # only come from a transport without a WireSession
                # (stdio, embedders) — which keeps speaking JSON
                return ok_frame({"codec": CODEC_JSON},
                                request_id(request))
        if self.fleet is not None:
            return self.fleet.handle_request(request)
        # late-bound module attribute so tests (and embedders) can
        # substitute the single-model handler
        return _service.handle_request(self.classifier, request)

    def process_line(self, line: str) -> str | None:
        """One protocol turn over a text line (the stdio path)."""
        if self.obs is None:
            return _service.process_request_line(line, self.handle)
        return _service.process_request_line(line, self._handle_observed)

    def _handle_observed(self, request) -> dict:
        """The stdio handler with per-request telemetry around it."""
        started = time.perf_counter_ns()
        frame = self.handle(request)
        self.observe_request(request, CODEC_JSON, started)
        return frame

    def process_raw(self, raw: bytes) -> str | None:
        """One protocol turn over a raw byte line (the socket paths).

        Framing through :func:`decode_raw`, so the frames produced are
        byte-identical to :meth:`process_line` on the same content.
        """
        request, decode_error = decode_raw(raw)
        if decode_error is not None:
            return encode_frame(decode_error)
        if request is None:
            return None
        started = time.perf_counter_ns() if self.obs is not None else 0
        try:
            response = encode_frame(self.handle(request))
        except Exception as exc:
            response = encode_frame(error_frame(ERROR_INTERNAL,
                                                f"internal error: {exc}",
                                                request_id(request)))
        if started:
            self.observe_request(request, CODEC_JSON, started,
                                 bytes_in=len(raw),
                                 bytes_out=len(response))
        return response

    def respond(self, raw: bytes, wire: WireSession) -> bytes | None:
        """One protocol turn over a de-framed frame (codec-aware).

        The socket transports' twin of :meth:`process_raw`: *wire*
        decodes and encodes in the connection's negotiated codec and
        absorbs the ``hello`` handshake.  On a never-negotiated (JSON)
        connection the bytes produced are identical to
        :meth:`process_raw` on the same line.
        """
        if self.obs is not None:
            return self._respond_observed(raw, wire)
        request, decode_error = wire.decode(raw)
        if decode_error is not None:
            return wire.encode(decode_error)
        if request is None:
            return None
        if type(request) is PredictStream:
            return self.respond_stream(request)
        hello = wire.negotiate(request)
        if hello is not None:
            return hello
        try:
            return wire.encode(self.handle(request))
        except Exception as exc:
            return wire.encode(error_frame(ERROR_INTERNAL,
                                           f"internal error: {exc}",
                                           request_id(request)))

    def _respond_observed(self, raw: bytes,
                          wire: WireSession) -> bytes | None:
        """:meth:`respond` with telemetry: byte-identical frames, plus
        latency/size metrics and (sampled) decode/predict/encode spans.

        When tracing is off (the common case) the whole turn costs two
        clock readings — ingress and egress; the span-boundary readings
        only happen on connections that can actually be sampled.
        """
        started = time.perf_counter_ns()
        tracer = self.tracer
        tracing = tracer is not None and tracer.sampling
        request, decode_error = wire.decode(raw)
        decoded_at = time.perf_counter_ns() if tracing else 0
        if decode_error is not None:
            return wire.encode(decode_error)
        if request is None:
            return None
        if type(request) is PredictStream:
            encoded = self.respond_stream(request)
            self.observe_request(request, wire.codec.name, started,
                                 bytes_in=len(raw),
                                 bytes_out=len(encoded))
            return encoded
        hello = wire.negotiate(request)
        if hello is not None:
            return hello
        sampled = tracing and tracer.sample()
        try:
            frame = self.handle(request)
            handled_at = time.perf_counter_ns() if tracing else 0
            encoded = wire.encode(frame)
        except Exception as exc:
            handled_at = time.perf_counter_ns() if tracing else 0
            encoded = wire.encode(error_frame(ERROR_INTERNAL,
                                              f"internal error: {exc}",
                                              request_id(request)))
        done_at = time.perf_counter_ns()
        self.observe_request(request, wire.codec.name, started,
                             bytes_in=len(raw), bytes_out=len(encoded),
                             ended_ns=done_at)
        if sampled:
            tracer.complete("decode", started, decoded_at,
                            codec=wire.codec.name)
            tracer.complete("predict", decoded_at, handled_at)
            tracer.complete("encode", handled_at, done_at)
        return encoded

    # -- the micro-batch fast path -----------------------------------------

    def prime(self) -> None:
        """Resolve the default model once (fleet pools pin it, so one
        lookup outlives the server — the per-request pool lock and LRU
        touch are reserved for requests that name a model)."""
        if self.fleet is not None and hasattr(self.fleet, "pool"):
            self._default_classifier = self.fleet.pool.peek(None)

    def fast_path(self, request):
        """Classify a decoded request for coalesced batch scoring.

        Returns ``None`` when the request must take the slow path
        (anything but a single-row ``{"features": ...}`` request, or a
        model that is not resident — loading must never block an IO
        thread), ``("error", frame)`` for inline-answerable validation
        failures, and ``("fast", classifier, req_id, vector)`` for a
        coalescible row.
        """
        if not (isinstance(request, dict) and "features" in request
                and "rows" not in request and "kernel" not in request
                and request.get("cmd") is None):
            return None
        req_id = request.get("id")
        if self.draining:
            # the fast path bypasses handle(), so the draining refusal
            # must be answered here too or coalesced rows would slip
            # through a drain
            return ("error", error_frame(
                ERROR_DRAINING,
                "server is draining and accepts no new scoring "
                "requests; retry on another shard",
                req_id))
        spec = request.get("model")
        if spec is None or self.fleet is None:
            # single-model engines ignore the model field, exactly like
            # the single-model handler they front
            classifier = self._default_classifier
        else:
            try:
                classifier = self.fleet.pool.peek(spec)
            except FleetError as exc:
                return ("error", error_frame(ERROR_BAD_REQUEST,
                                             str(exc), req_id))
        if classifier is None:
            return None  # not resident: the slow path loads it
        features = request["features"]
        # JSON already delivered plain numbers: a well-shaped list
        # skips the generic _vectorize re-conversion (the batch
        # np.asarray coerces to the identical float64s; non-numeric
        # elements surface through the fallback in execute_fast as
        # typed bad_request frames)
        if (type(features) is list
                and len(features) == len(classifier.feature_names_)):
            vector = features
        else:
            try:
                vector = classifier._vectorize(features)
            except (MLError, TypeError, ValueError) as exc:
                return ("error", error_frame(ERROR_BAD_REQUEST,
                                             str(exc), req_id))
        return ("fast", classifier, req_id, vector)

    def execute_fast(self, items, emit, wire_of=None) -> None:
        """Score coalesced fast-path rows; answer through *emit*.

        *items* are ``(token, req_id, classifier, vector)`` tuples
        (the token is opaque transport state — a connection);
        ``emit(token, encoded_frame)`` is called exactly once per item.
        Rows are grouped per classifier into single ``predict_batch``
        calls; a poisoned group falls back to per-row scoring so one
        bad row cannot fail the others.

        *wire_of* maps a token to its :class:`WireSession` so each
        answer is encoded in that connection's negotiated codec;
        without it frames are encoded as JSON text (the legacy
        contract, byte-identical to PR 5).
        """
        if wire_of is None:
            def enc_frame(token, frame):
                return encode_frame(frame)

            def enc_pred(token, req_id, prediction):
                return _prediction_frame(req_id, prediction)
        else:
            def enc_frame(token, frame):
                return wire_of(token).encode(frame)

            def enc_pred(token, req_id, prediction):
                return wire_of(token).encode_prediction(req_id,
                                                        prediction)
        tracer = self.tracer
        sampled = tracer is not None and tracer.sampling \
            and tracer.sample()
        groups: dict = {}
        for item in items:
            groups.setdefault(id(item[2]), []).append(item)
        for group in groups.values():
            classifier = group[0][2]
            opened_at = time.perf_counter_ns() if sampled else 0
            try:
                X = np.asarray([vector for _, _, _, vector in group],
                               dtype=np.float64)
                predictions = classifier.predict_batch(X)
            except Exception:
                for token, req_id, clf, vector in group:
                    try:
                        prediction = clf.predict(vector)
                    except (MLError, TypeError, ValueError) as exc:
                        emit(token, enc_frame(token, error_frame(
                            ERROR_BAD_REQUEST, str(exc), req_id)))
                    except Exception as exc:
                        emit(token, enc_frame(token, error_frame(
                            ERROR_INTERNAL, f"internal error: {exc}",
                            req_id)))
                    else:
                        emit(token, enc_frame(token, ok_frame(
                            {"prediction": int(prediction)}, req_id)))
                continue
            predicted_at = time.perf_counter_ns() if sampled else 0
            for (token, req_id, _, _), prediction in zip(
                    group, predictions.tolist()):
                emit(token, enc_pred(token, req_id, int(prediction)))
            if sampled:
                tracer.complete("predict", opened_at, predicted_at,
                                rows=len(group))
                tracer.complete("encode", predicted_at,
                                time.perf_counter_ns(),
                                rows=len(group))

    # -- the zero-decode stream path ---------------------------------------

    @staticmethod
    def _stream_errors(stream: PredictStream, code: str,
                       message: str) -> list:
        """One typed error frame per stream row (same message each)."""
        return [error_frame(code, message,
                            int(rid) if rid != NO_ID else None)
                for rid in stream.ids]

    def stream_fast(self, stream: PredictStream):
        """Classify a decoded :class:`PredictStream` for coalesced
        scoring — the stream twin of :meth:`fast_path`.

        Returns ``("fast", classifier)`` when the whole block can be
        scored against the resident default model, or
        ``("error", frames)`` with one typed error frame per row id
        (draining refusals, no resident default, column mismatch) —
        every id is always answered.
        """
        if self.draining:
            return ("error", self._stream_errors(
                stream, ERROR_DRAINING,
                "server is draining and accepts no new scoring "
                "requests; retry on another shard"))
        classifier = self._default_classifier
        if classifier is None and self.fleet is not None \
                and hasattr(self.fleet, "pool"):
            # peek, never get: resolving the default must not block an
            # IO thread on an artifact load (prime() pins it at start)
            try:
                classifier = self.fleet.pool.peek(None)
            except FleetError:
                classifier = None
        if classifier is None:
            return ("error", self._stream_errors(
                stream, ERROR_BAD_REQUEST,
                "no default model is available to score a stream "
                "frame"))
        cols = stream.rows.shape[1]
        if cols != len(classifier.feature_names_):
            return ("error", self._stream_errors(
                stream, ERROR_BAD_REQUEST,
                f"stream rows carry {cols} features; the default "
                f"model expects {len(classifier.feature_names_)}"))
        return ("fast", classifier)

    def execute_stream(self, blocks, emit) -> None:
        """Score coalesced stream blocks; answer through *emit*.

        *blocks* are ``(token, stream, classifier)`` tuples;
        ``emit(token, encoded, n_rows)`` is called with one or more
        encoded response frames per block, answering each of its
        ``n_rows`` ids exactly once.  The f32 payloads of blocks
        sharing a classifier are concatenated as raw buffers and
        lifted to float64 **once** per coalesced batch — no Python
        floats anywhere (the zero-decode path) — then the predictions
        are scatter-gathered back into one packed PREDICTIONS_STREAM
        frame per block.  A poisoned batch falls back to per-row
        scoring so one bad row cannot fail its neighbours.

        Responses are encoded by the v2 codec by construction: only
        :class:`repro.api.wire.BinaryV2Codec` can have decoded a
        :class:`PredictStream`, and (like the slow path) the answer
        speaks the codec its request arrived under.
        """
        groups: dict = {}
        for block in blocks:
            groups.setdefault(id(block[2]), []).append(block)
        for group in groups.values():
            classifier = group[0][2]
            if len(group) == 1:
                X = group[0][1].rows.astype(np.float64)
            else:
                X = np.concatenate(
                    [stream.rows for _, stream, _ in group]).astype(
                        np.float64)
            try:
                predictions = classifier.predict_batch(X)
            except Exception:
                for token, stream, clf in group:
                    emit(token, self._stream_fallback(stream, clf),
                         len(stream))
                continue
            predictions = np.asarray(predictions)
            offset = 0
            for token, stream, _ in group:
                n = len(stream)
                emit(token, BINARY_V2_CODEC.encode_predictions_stream(
                    stream.ids, predictions[offset:offset + n]), n)
                offset += n

    def _stream_fallback(self, stream: PredictStream,
                         classifier) -> bytes:
        """Per-row scoring for a poisoned stream block.

        Rows that still score are gathered into one packed stream
        response; rows that fail draw typed embedded error frames —
        every id answered exactly once, concatenated into one blob.
        """
        chunks: list = []
        good_ids: list = []
        good_predictions: list = []
        for rid, row in zip(stream.ids.tolist(), stream.rows):
            req_id = rid if rid != NO_ID else None
            try:
                prediction = classifier.predict(
                    row.astype(np.float64).tolist())
            except (MLError, TypeError, ValueError) as exc:
                chunks.append(BINARY_V2_CODEC.encode_response(
                    error_frame(ERROR_BAD_REQUEST, str(exc), req_id)))
            except Exception as exc:
                chunks.append(BINARY_V2_CODEC.encode_response(
                    error_frame(ERROR_INTERNAL,
                                f"internal error: {exc}", req_id)))
            else:
                good_ids.append(rid)
                good_predictions.append(int(prediction))
        if good_ids:
            chunks.append(BINARY_V2_CODEC.encode_predictions_stream(
                good_ids, good_predictions))
        return b"".join(chunks)

    def respond_stream(self, stream: PredictStream) -> bytes:
        """Answer one :class:`PredictStream` synchronously.

        The threaded/inline twin of the event loop's coalesced stream
        execution: same validation, same frames.  When the fleet runs
        a live micro-batcher the block rides through it (coalescing
        with other connections' rows — see
        :meth:`repro.api.fleet.batching.MicroBatcher.submit_block`);
        otherwise it scores inline.
        """
        verdict = self.stream_fast(stream)
        if verdict[0] == "error":
            return b"".join(BINARY_V2_CODEC.encode_response(frame)
                            for frame in verdict[1])
        classifier = verdict[1]
        batcher = (getattr(self.fleet, "batcher", None)
                   if self.fleet is not None else None)
        try:
            if batcher is not None and batcher.is_running:
                predictions = batcher.predict_block(classifier,
                                                    stream.rows)
            else:
                predictions = classifier.predict_batch(
                    stream.rows.astype(np.float64))
        except Exception:
            return self._stream_fallback(stream, classifier)
        return BINARY_V2_CODEC.encode_predictions_stream(stream.ids,
                                                         predictions)


def serve_lines(process, stdin=None, stdout=None) -> int:
    """Drive a ``line -> response | None`` handler over stdio.

    THE stdio loop — both engine-backed serving (:func:`serve_stdio`)
    and the legacy duck-typed ``process_line`` scorers of
    :func:`repro.api.service.serve` run through it.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    handled = 0
    for line in stdin:
        response = process(line)
        if response is None:
            continue
        stdout.write(response)
        stdout.flush()
        handled += 1
    return handled


def serve_stdio(engine: RequestEngine, stdin=None, stdout=None) -> int:
    """Serve JSON-lines requests until EOF; returns requests handled."""
    return serve_lines(engine.process_line, stdin, stdout)


class ThreadedServer:
    """Thread-per-connection transport over a bound, listening socket.

    The PR 3 serving model, now a thin adapter: one acceptor thread, a
    worker pool, and a semaphore slot per worker so excess clients wait
    in the kernel listen backlog instead of an unbounded internal
    queue.  Every line a connection delivers goes through
    ``engine.process_raw`` — the same dispatch the event loop and the
    stdio loop use.  Stopping the server closes the listener.
    """

    def __init__(self, engine: RequestEngine,
                 listener: socket.socket,
                 workers: int = DEFAULT_WORKERS,
                 codecs=DEFAULT_CODECS) -> None:
        self.engine = engine
        self.listener = listener
        self.workers = max(1, int(workers))
        self.codecs = tuple(codecs)
        self._pool: ThreadPoolExecutor | None = None
        self._acceptor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._connections: set = set()
        self._slots: threading.Semaphore | None = None
        self._requests_served = 0
        self._connections_served = 0
        self._codec_counters = CodecCounters(self.codecs)

    def start(self) -> "ThreadedServer":
        # a bounded accept timeout guarantees the acceptor re-checks
        # the stop flag even on platforms where closing a listener does
        # not wake a blocked accept()
        self.listener.settimeout(0.5)
        # stream frames score the pinned default model and the metric
        # handles resolve once — both off the per-request path
        self.engine.prime()
        self.engine.prime_observability(self.codecs)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-score",
        )
        self._slots = threading.Semaphore(self.workers)
        self._acceptor = threading.Thread(
            target=self._accept_loop,
            name="repro-accept",
            daemon=True,
        )
        self._acceptor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting, close live connections, drain the pool."""
        self._stopping.set()
        try:
            # shutdown() (unlike close()) wakes a blocked accept() on
            # Linux; the accept timeout covers platforms where it won't
            self.listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.listener.close()
        except OSError:
            pass
        if self._acceptor is not None:
            self._acceptor.join(timeout)
            self._acceptor = None
        with self._lock:
            live = list(self._connections)
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def pause_accept(self) -> None:
        """Stop accepting new connections; live sessions keep serving.

        The transport half of a graceful drain: closing the listener
        makes the acceptor thread exit while established
        ``_serve_connection`` sessions keep answering (``stop()``
        still joins everything afterwards).  One-way for this server
        instance — a drained server is stopped, never resumed.
        """
        try:
            self.listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.listener.close()
        except OSError:
            pass

    def stats(self) -> dict:
        with self._lock:
            return {
                "transport": "threads",
                "requests_served": self._requests_served,
                "connections_served": self._connections_served,
                "active_connections": len(self._connections),
                "workers": self.workers,
                "codec": self._codec_counters.snapshot(),
            }

    def _accept_loop(self) -> None:
        # a semaphore slot per worker: accept only when a worker can
        # actually serve the connection
        while not self._stopping.is_set():
            if not self._slots.acquire(timeout=0.5):
                continue  # all workers busy; re-check the stop flag
            conn = None
            while not self._stopping.is_set():
                try:
                    conn, _ = self.listener.accept()
                    break
                except socket.timeout:
                    continue  # periodic stop-flag check
                except OSError:
                    break  # listener closed by stop()
            if conn is None or self._stopping.is_set():
                self._slots.release()
                if conn is not None:
                    conn.close()
                break
            with self._lock:
                self._connections.add(conn)
            self._pool.submit(self._serve_connection, conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        """One client session: read frames, answer frames, until EOF."""
        wire = WireSession(self.codecs)
        try:
            while not self._stopping.is_set():
                data = conn.recv(RECV_BYTES)
                if not data:
                    # EOF: answer a final JSON line the client sent
                    # without a trailing newline (a shutdown(SHUT_WR)
                    # client still reads the response) — stdio serving
                    # does the same, keeping the paths byte-identical
                    tail = wire.eof_tail()
                    if tail is not None:
                        self._answer(conn, wire, tail)
                    break
                wire.push(data)
                while not wire.fatal:
                    raw = wire.next_frame()
                    if raw is None:
                        break
                    self._answer(conn, wire, raw)
                if wire.fatal:
                    # unrecoverable framing (a newline-less flood, an
                    # oversized or malformed binary frame): answer the
                    # parked typed error once, then drop the stream
                    # (it cannot be resynchronized)
                    farewell = wire.take_pending_error()
                    if farewell is not None:
                        conn.sendall(farewell)
                        wire.count_out(len(farewell))
                    break
        except OSError:
            pass  # client went away mid-session; nothing to answer
        finally:
            with self._lock:
                self._connections.discard(conn)
                self._connections_served += 1
                self._codec_counters.fold(wire)
            try:
                conn.close()
            except OSError:
                pass
            self._slots.release()

    def _answer(self, conn: socket.socket, wire: WireSession,
                raw: bytes) -> None:
        # respond answers every failure mode itself (invalid frames,
        # bad requests, internal errors with the request id preserved)
        # — it does not raise
        response = self.engine.respond(raw, wire)
        if response is None:
            return
        conn.sendall(response)
        wire.count_out(len(response))
        with self._lock:
            self._requests_served += 1


class _Connection:
    """Per-socket state owned by the loop thread (no locking needed)."""

    __slots__ = ("sock", "wire", "wbuf", "closed", "want_write",
                 "eof", "pending")

    def __init__(self, sock: socket.socket,
                 codecs=DEFAULT_CODECS) -> None:
        self.sock = sock
        self.wire = WireSession(codecs)
        self.wbuf = bytearray()
        self.closed = False
        self.want_write = False  # EVENT_WRITE interest is registered
        self.eof = False  # half-closed: finish answering, then close
        self.pending = 0  # routed requests not yet staged


class EventLoopServer:
    """Serve a :class:`RequestEngine` from one selectors IO thread.

    Thread-per-connection serving spends most of each request's budget
    on thread hand-offs, buffered-IO layers and GIL churn; this
    transport removes the overhead instead of amortizing a slice of it:

    * **one IO thread** owns every socket: it accepts, reads, splits
      lines, and is the *only* writer, so there are no per-request
      thread wake-ups and no locks on the hot path;
    * every select round drains all readable connections and gathers
      their eligible single-row requests (``engine.fast_path``) into
      coalesced ``engine.execute_fast`` calls bounded by ``max_batch``
      — the batching window is *adaptive*: it is exactly the time the
      previous round spent scoring and writing, so a lone client is
      never delayed and 16 concurrent clients coalesce to ~16-row
      batches automatically;
    * everything else — kernel simulation, explicit batches, admin
      verbs, cold-model loads — is handed to a small worker pool
      through ``engine.handle``; completed frames come back through a
      queue and a self-pipe wake-up, and the loop writes them.

    *listener* is a bound, listening socket; stopping the server
    closes it along with every accepted connection unless
    ``close_listener=False`` leaves its lifetime to the caller.
    """

    def __init__(self, engine: RequestEngine, listener: socket.socket,
                 workers: int = 4, max_batch: int = 64,
                 close_listener: bool = True,
                 codecs=DEFAULT_CODECS) -> None:
        self.engine = engine
        self.listener = listener
        self.close_listener = close_listener
        self.codecs = tuple(codecs)
        self._codec_counters = CodecCounters(self.codecs)
        self.max_batch = max(1, int(max_batch))
        self._workers = max(1, int(workers))
        self._stopping = threading.Event()
        self._pausing = threading.Event()  # drain: stop accepting
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._completions: deque = deque()  # (conn, encoded-frame str)
        self._lock = threading.Lock()       # completions + counters
        self._requests_served = 0
        self._connections_served = 0
        self._active = 0
        self._fast_rows = 0
        self._fast_batches = 0
        self._largest_fast_batch = 0
        self._slow_requests = 0
        self._stream_frames = 0
        self._stream_rows = 0
        # telemetry handles, resolved once in start() when the engine
        # carries a registry (None otherwise: zero overhead)
        self._obs_queue_wait = None
        self._obs_fast_batch = None
        self._obs_fast_latency = None
        self._obs_loop_lag = None
        self._obs_stream_rows = None
        self._obs_stream_latency = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "EventLoopServer":
        self.listener.setblocking(False)
        self.engine.prime()
        obs = self.engine.obs
        if obs is not None:
            self._obs_queue_wait = obs.histogram(
                "repro_loop_queue_wait_us")
            self._obs_fast_batch = obs.histogram(
                "repro_loop_fast_batch_rows",
                bounds=BATCH_BUCKET_BOUNDS_ROWS)
            # coalesced rows share one chunk service time; the chunk
            # may mix connections (codecs) and models, so the labels
            # name the path rather than pretending per-row identity
            self._obs_fast_latency = obs.histogram(
                "repro_request_latency_us", verb="score",
                codec="coalesced", model="default")
            self._obs_loop_lag = obs.gauge("repro_loop_lag_us")
            # the stream path: rows per coalesced stream execution and
            # the per-row share of its service time (labelled "stream"
            # — a chunk may concatenate many connections' blocks)
            self._obs_stream_rows = obs.histogram(
                "repro_loop_stream_rows",
                bounds=BATCH_BUCKET_BOUNDS_ROWS)
            self._obs_stream_latency = obs.histogram(
                "repro_request_latency_us", verb="score",
                codec="stream", model="default")
        self.engine.prime_observability(self.codecs)
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-slow")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-ioloop", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stopping.set()
        self._wake()
        self._thread.join(timeout)
        self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass
        if self.close_listener:
            try:
                self.listener.close()
            except OSError:
                pass

    def pause_accept(self) -> None:
        """Stop accepting new connections; live sessions keep serving.

        The transport half of a graceful drain.  The selector belongs
        to the loop thread, so this only raises a flag and wakes the
        loop — the loop unregisters and closes the listener on its
        next round.  One-way for this server instance.
        """
        self._pausing.set()
        self._wake()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"\0")
        except (OSError, ValueError):
            pass  # pipe full (a wake-up is already pending) or closed

    def stats(self) -> dict:
        with self._lock:
            fast_rows, fast_batches = self._fast_rows, self._fast_batches
            return {
                "transport": "eventloop",
                "requests_served": self._requests_served,
                "connections_served": self._connections_served,
                "active_connections": self._active,
                "fast_rows": fast_rows,
                "fast_batches": fast_batches,
                "mean_fast_batch": (round(fast_rows / fast_batches, 2)
                                    if fast_batches else 0.0),
                "largest_fast_batch": self._largest_fast_batch,
                "slow_requests": self._slow_requests,
                "stream_frames": self._stream_frames,
                "stream_rows": self._stream_rows,
                "max_batch": self.max_batch,
                "codec": self._codec_counters.snapshot(),
            }

    # -- the loop ----------------------------------------------------------

    def _run(self) -> None:
        sel = selectors.DefaultSelector()
        sel.register(self.listener, selectors.EVENT_READ, None)
        sel.register(self._wake_r, selectors.EVENT_READ, None)
        self._conns: set = set()
        accepting = True
        lag_gauge = self._obs_loop_lag
        try:
            while not self._stopping.is_set():
                if accepting and self._pausing.is_set():
                    # graceful drain: retire the listener while every
                    # accepted connection keeps being served
                    accepting = False
                    try:
                        sel.unregister(self.listener)
                    except (KeyError, ValueError):
                        pass
                    try:
                        self.listener.close()
                    except OSError:
                        pass
                fast: list = []
                blocks: list = []
                events = sel.select(timeout=0.5)
                if self._stopping.is_set():
                    break
                busy_from = (time.perf_counter_ns()
                             if lag_gauge is not None else 0)
                self._dispatch(events, sel, fast, blocks)
                # greedy top-up: whatever arrived while this round was
                # being read joins the same batch — but never wait
                while (fast or blocks) and len(fast) < self.max_batch \
                        and len(blocks) < self.max_batch:
                    more = sel.select(timeout=0)
                    if not more:
                        break
                    self._dispatch(more, sel, fast, blocks)
                self._drain_completions(sel)
                if blocks:
                    # stream blocks are already client-coalesced, so
                    # they execute whole — re-chunking them to
                    # max_batch would only add row copies
                    self._execute_stream(blocks, sel)
                while fast:
                    chunk, fast = fast[:self.max_batch], \
                        fast[self.max_batch:]
                    self._execute_fast(chunk, sel)
                if lag_gauge is not None:
                    # how long the loop was busy (unavailable to new
                    # I/O) this round — the event-loop lag
                    lag_gauge.set(
                        (time.perf_counter_ns() - busy_from) / 1000.0)
        finally:
            for conn in list(self._conns):
                self._close(conn, sel)
            try:
                sel.unregister(self.listener)
            except (KeyError, ValueError):
                pass
            sel.close()

    def _dispatch(self, events, sel, fast, blocks) -> None:
        for key, mask in events:
            if key.fileobj is self.listener:
                self._accept(sel)
            elif key.fileobj == self._wake_r:
                try:
                    os.read(self._wake_r, 4096)
                except OSError:
                    pass
            else:
                conn = key.data
                if mask & selectors.EVENT_WRITE:
                    self._flush(conn, sel)
                if mask & selectors.EVENT_READ and not conn.closed:
                    self._read(conn, sel, fast, blocks)

    def _accept(self, sel) -> None:
        while True:
            try:
                sock, _ = self.listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us (stop())
            sock.setblocking(False)
            conn = _Connection(sock, self.codecs)
            self._conns.add(conn)
            sel.register(sock, selectors.EVENT_READ, conn)
            with self._lock:
                self._connections_served += 1
                self._active = len(self._conns)

    def _close(self, conn, sel) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._conns.discard(conn)
        try:
            sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._lock:
            self._active = len(self._conns)
            self._codec_counters.fold(conn.wire)

    def _read(self, conn, sel, fast, blocks) -> None:
        try:
            data = conn.sock.recv(RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            # half-close (or disconnect): route a final line the
            # client sent without a trailing newline through the
            # normal fast/slow machinery, then close once every
            # outstanding answer has been staged and written — a
            # shutdown(SHUT_WR) client still reads all its responses
            tail = conn.wire.eof_tail()
            if tail is not None:
                self._route(conn, tail, sel, fast, blocks)
            conn.eof = True
            # drop read interest: a half-closed socket stays readable
            # forever and would spin the loop; completions wake it via
            # the self-pipe and _flush re-registers write interest
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conn.want_write = False
            self._flush(conn, sel)
            self._maybe_finish(conn, sel)
            return
        conn.wire.push(data)
        while not conn.wire.fatal:
            raw = conn.wire.next_frame()
            if raw is None:
                break
            self._route(conn, raw, sel, fast, blocks)
        # inline answers (decode/validation error frames) don't pass
        # through execute_fast or the completion queue: flush them now
        self._flush(conn, sel)
        if conn.wire.fatal:
            # unrecoverable framing (a newline-less flood, an oversized
            # or malformed binary frame): answer once, then drop the
            # stream (it cannot be resynchronized)
            farewell = conn.wire.take_pending_error()
            if farewell is not None:
                self._stage(conn, farewell, sel)
            self._flush(conn, sel)
            self._close(conn, sel)

    # -- request routing ---------------------------------------------------

    def _route(self, conn, raw: bytes, sel, fast, blocks) -> None:
        tracer = self.engine.tracer
        sampled = (tracer is not None and tracer.sampling
                   and tracer.sample())
        decode_from = time.perf_counter_ns() if sampled else 0
        request, decode_error = conn.wire.decode(raw)
        if sampled:
            tracer.complete("decode", decode_from,
                            time.perf_counter_ns(),
                            codec=conn.wire.codec.name)
        if decode_error is not None:
            self._stage(conn, conn.wire.encode(decode_error), sel)
            return
        if request is None:
            return
        if type(request) is PredictStream:
            verdict = self.engine.stream_fast(request)
            if verdict[0] == "error":
                for frame in verdict[1]:
                    self._stage(conn, conn.wire.encode(frame), sel)
                return
            conn.pending += len(request)
            blocks.append((conn, request, verdict[1]))
            return
        hello = conn.wire.negotiate(request)
        if hello is not None:
            self._stage(conn, hello, sel)
            return
        verdict = self.engine.fast_path(request)
        if verdict is None:
            conn.pending += 1
            self._submit_slow(conn, request)
            return
        if verdict[0] == "error":
            self._stage(conn, conn.wire.encode(verdict[1]), sel)
            return
        _, classifier, req_id, vector = verdict
        conn.pending += 1
        fast.append((conn, req_id, classifier, vector))

    def _submit_slow(self, conn, request) -> None:
        with self._lock:
            self._slow_requests += 1
        # capture the codec at submit time: a worker-encoded response
        # must speak the codec its request arrived under, even if the
        # connection re-negotiates while the request is in flight
        codec = conn.wire.codec
        engine = self.engine
        queue_wait = self._obs_queue_wait
        tracer = engine.tracer if queue_wait is not None else None
        sampled = (tracer is not None and tracer.sampling
                   and tracer.sample())
        submitted = (time.perf_counter_ns()
                     if queue_wait is not None else 0)

        def run() -> None:
            started = (time.perf_counter_ns()
                       if queue_wait is not None else 0)
            try:
                frame = self.engine.handle(request)
            except Exception as exc:  # defensive: handle answers errors
                frame = error_frame(ERROR_INTERNAL,
                                    f"internal error: {exc}",
                                    request_id(request))
            handled = (time.perf_counter_ns()
                       if queue_wait is not None else 0)
            try:
                encoded = codec.encode_response(frame)
            except (TypeError, ValueError) as exc:
                encoded = codec.encode_response(error_frame(
                    ERROR_INTERNAL, f"internal error: {exc}",
                    request_id(request)))
            if queue_wait is not None:
                done = time.perf_counter_ns()
                queue_wait.record((started - submitted) / 1000.0)
                engine.observe_request(request, codec.name, submitted,
                                       bytes_out=len(encoded),
                                       ended_ns=done)
                if sampled:
                    tracer.complete("queue", submitted, started,
                                    codec=codec.name)
                    tracer.complete("predict", started, handled)
                    tracer.complete("encode", handled, done)
            with self._lock:
                self._completions.append((conn, encoded))
            self._wake()

        self._executor.submit(run)

    def _drain_completions(self, sel) -> None:
        while True:
            with self._lock:
                if not self._completions:
                    return
                conn, encoded = self._completions.popleft()
            conn.pending -= 1
            if not conn.closed:
                self._stage(conn, encoded, sel)
                self._flush(conn, sel)
                self._maybe_finish(conn, sel)

    def _execute_fast(self, chunk, sel) -> None:
        fast_latency = self._obs_fast_latency
        tracer = (self.engine.tracer
                  if fast_latency is not None else None)
        sampled = (tracer is not None and tracer.sampling
                   and tracer.sample())
        opened = (time.perf_counter_ns()
                  if fast_latency is not None else 0)

        def emit(conn, encoded) -> None:
            conn.pending -= 1
            self._stage(conn, encoded, sel)

        self.engine.execute_fast(chunk, emit,
                                 wire_of=lambda conn: conn.wire)
        touched = {item[0] for item in chunk}
        for conn in touched:
            self._flush(conn, sel)
            self._maybe_finish(conn, sel)
        self._fast_rows += len(chunk)
        self._fast_batches += 1
        self._largest_fast_batch = max(self._largest_fast_batch,
                                       len(chunk))
        if fast_latency is not None:
            done = time.perf_counter_ns()
            elapsed_us = (done - opened) / 1000.0
            self._obs_fast_batch.record(len(chunk))
            # every coalesced row shares the chunk's service time;
            # record_many keeps the per-row cost off the loop thread
            fast_latency.record_many(elapsed_us, len(chunk))
            if tracer is not None:
                tracer.observe_slow(elapsed_us, "score",
                                    codec="coalesced",
                                    rows=len(chunk))
                if sampled:
                    tracer.complete("batch", opened, done,
                                    rows=len(chunk))

    def _execute_stream(self, blocks, sel) -> None:
        """Score this round's stream blocks in one coalesced call."""
        stream_latency = self._obs_stream_latency
        opened = (time.perf_counter_ns()
                  if stream_latency is not None else 0)

        def emit(conn, encoded, n_rows) -> None:
            conn.pending -= n_rows
            self._stage(conn, encoded, sel, requests=n_rows)

        self.engine.execute_stream(blocks, emit)
        touched = {block[0] for block in blocks}
        for conn in touched:
            self._flush(conn, sel)
            self._maybe_finish(conn, sel)
        rows = sum(len(block[1]) for block in blocks)
        self._fast_rows += rows
        self._fast_batches += 1
        self._stream_frames += len(blocks)
        self._stream_rows += rows
        self._largest_fast_batch = max(self._largest_fast_batch, rows)
        if stream_latency is not None:
            done = time.perf_counter_ns()
            elapsed_us = (done - opened) / 1000.0
            self._obs_stream_rows.record(rows)
            # every row of the coalesced stream chunk shares one
            # service time, exactly like the per-row fast path
            stream_latency.record_many(elapsed_us, rows)
            tracer = self.engine.tracer
            if tracer is not None:
                tracer.observe_slow(elapsed_us, "score", codec="stream",
                                    rows=rows)

    # -- writing -----------------------------------------------------------

    def _stage(self, conn, encoded, sel, requests: int = 1) -> None:
        # loop-thread only (completions are staged by the loop after
        # draining the queue), so the counter needs no lock.  *encoded*
        # is codec bytes; str is accepted for embedders still staging
        # JSON text.  *requests* is how many protocol requests the blob
        # answers (a stream response answers its whole row block)
        if conn.closed:
            return
        if isinstance(encoded, str):
            encoded = encoded.encode("utf-8")
        conn.wbuf += encoded
        conn.wire.count_out(len(encoded))
        self._requests_served += requests

    def _flush(self, conn, sel) -> None:
        if conn.closed or not conn.wbuf:
            return
        try:
            sent = conn.sock.send(conn.wbuf)
        except (BlockingIOError, InterruptedError):
            sent = 0
        except OSError:
            self._close(conn, sel)
            return
        if sent:
            del conn.wbuf[:sent]
        # toggle EVENT_WRITE interest only on actual transitions — the
        # common full-write case costs zero selector calls per row.
        # half-closed (eof) connections are no longer registered for
        # reads, so their transitions use register/unregister instead
        if conn.wbuf and not conn.want_write:
            conn.want_write = True
            try:
                if conn.eof:
                    sel.register(conn.sock, selectors.EVENT_WRITE, conn)
                else:
                    sel.modify(conn.sock,
                               selectors.EVENT_READ
                               | selectors.EVENT_WRITE,
                               conn)
            except (KeyError, ValueError):
                pass  # raced with close
        elif not conn.wbuf and conn.want_write:
            conn.want_write = False
            try:
                if conn.eof:
                    sel.unregister(conn.sock)
                else:
                    sel.modify(conn.sock, selectors.EVENT_READ, conn)
            except (KeyError, ValueError):
                pass
        self._maybe_finish(conn, sel)

    def _maybe_finish(self, conn, sel) -> None:
        """Close a half-closed connection once fully answered."""
        if (conn.eof and not conn.closed and not conn.wbuf
                and conn.pending == 0):
            self._close(conn, sel)
