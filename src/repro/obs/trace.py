"""Sampled per-request tracing in Chrome ``trace_event`` format.

A :class:`Tracer` answers two questions the metrics registry cannot:
*where inside one request* the time went (decode → queue → batch →
predict → encode spans, at a configurable sample rate) and *which
requests were pathological* (an always-on slow-request log above a
latency threshold, routed through :mod:`repro.obs.log`).

Sampled spans are buffered in memory as Chrome ``trace_event``
complete events (``"ph": "X"``) and written by :meth:`flush` as one
JSON document that ``chrome://tracing`` and Perfetto open directly.
The record path never touches a file — the event-loop thread only ever
appends to a bounded in-memory list (events past ``max_events`` are
counted as dropped, not grown without bound); flushing happens on
daemon shutdown, off every serving thread.

Environment knobs (read by :meth:`Tracer.from_env`):

* ``REPRO_TRACE_SAMPLE`` — sample rate in ``[0, 1]`` (default ``0``:
  tracing off; ``1`` traces every request);
* ``REPRO_TRACE_FILE`` — where :meth:`flush` writes the trace
  (default ``repro-trace-<pid>.json`` in the working directory);
* ``REPRO_SLOW_REQUEST_US`` — the always-on slow-request threshold in
  microseconds (default 100000; ``0`` disables the slow log).

Sampling is deterministic (every N-th request), so a rate of ``0.01``
costs one integer check per request on the unsampled 99%.
"""

from __future__ import annotations

import json
import os
import threading

from repro.obs.log import get_logger

__all__ = ["DEFAULT_SLOW_REQUEST_US", "Tracer"]

#: default always-on slow-request threshold (100 ms), microseconds.
DEFAULT_SLOW_REQUEST_US = 100_000

#: default bound on buffered trace events.
DEFAULT_MAX_EVENTS = 50_000


class Tracer:
    """Buffered Chrome-trace spans plus the slow-request log.

    *sample_rate* in ``[0, 1]`` selects every N-th request for span
    recording (``0`` disables spans entirely); *slow_request_us* is
    independent of sampling and logs **every** request that crosses it.
    One tracer serves a whole process: all instrumented layers append
    to the same buffer, so the flushed file shows batch spans
    interleaved with the requests they coalesced.
    """

    def __init__(self, sample_rate: float = 0.0,
                 path: str | None = None,
                 slow_request_us: int = DEFAULT_SLOW_REQUEST_US,
                 max_events: int = DEFAULT_MAX_EVENTS,
                 component: str = "server") -> None:
        rate = max(0.0, min(1.0, float(sample_rate)))
        self._period = 0 if rate <= 0 else max(1, round(1.0 / rate))
        self.path = path
        self.slow_request_us = max(0, int(slow_request_us))
        self.max_events = max(1, int(max_events))
        self._log = get_logger(component)
        # the sequence counter is bumped without the lock: a lost tick
        # under contention shifts which request gets sampled, which is
        # exactly as representative — and keeps the unsampled path at
        # one attribute bump plus one modulo
        self._seq = 0
        self._lock = threading.Lock()
        self._events: list = []
        self._dropped = 0

    @classmethod
    def from_env(cls, component: str = "server") -> "Tracer":
        """Build a tracer from the ``REPRO_TRACE_*`` environment knobs."""
        try:
            rate = float(os.environ.get("REPRO_TRACE_SAMPLE", "0") or 0)
        except ValueError:
            rate = 0.0
        try:
            slow = int(os.environ.get("REPRO_SLOW_REQUEST_US",
                                      str(DEFAULT_SLOW_REQUEST_US)))
        except ValueError:
            slow = DEFAULT_SLOW_REQUEST_US
        path = os.environ.get("REPRO_TRACE_FILE") or None
        if path is None and rate > 0:
            path = f"repro-trace-{os.getpid()}.json"
        return cls(sample_rate=rate, path=path, slow_request_us=slow,
                   component=component)

    # -- sampling ----------------------------------------------------------

    @property
    def sampling(self) -> bool:
        """Whether any request can currently be sampled."""
        return self._period > 0

    def sample(self) -> bool:
        """Decide (deterministically) whether to trace this request."""
        if self._period == 0:
            return False
        self._seq += 1
        return self._seq % self._period == 0

    # -- span recording ----------------------------------------------------

    def complete(self, name: str, start_ns: int, end_ns: int,
                 **args) -> None:
        """Record one complete span (Chrome ``"ph": "X"`` event).

        *start_ns* / *end_ns* are ``time.perf_counter_ns`` readings;
        the emitted timestamps are microseconds on the same monotonic
        timeline, so spans from every thread of one process line up.
        """
        event = {
            "name": name,
            "ph": "X",
            "ts": start_ns / 1000.0,
            "dur": max(0.0, (end_ns - start_ns) / 1000.0),
            "pid": os.getpid(),
            "tid": threading.get_ident() % 1_000_000,
            "cat": "request",
        }
        if args:
            event["args"] = args
        with self._lock:
            if len(self._events) >= self.max_events:
                self._dropped += 1
                return
            self._events.append(event)

    # -- the slow-request log ----------------------------------------------

    def observe_slow(self, duration_us: float, verb: str,
                     **fields) -> None:
        """Log one request when it crossed the slow threshold.

        Always on (independent of the sample rate) so pathological
        requests surface even at a zero trace rate.
        """
        if self.slow_request_us and duration_us >= self.slow_request_us:
            self._log.warning("slow_request", verb=verb,
                              duration_us=round(duration_us, 1),
                              threshold_us=self.slow_request_us,
                              **fields)

    # -- exposition --------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "buffered_events": len(self._events),
                "dropped_events": self._dropped,
                "sample_period": self._period,
                "path": self.path,
            }

    def drain(self) -> list:
        """Take (and clear) the buffered events."""
        with self._lock:
            events, self._events = self._events, []
            return events

    def flush(self) -> str | None:
        """Write buffered events as one Chrome trace JSON document.

        Returns the path written, or ``None`` when there was nothing
        to write or nowhere to write it.  Must only be called from
        shutdown/ownership threads — never from a serving loop (it
        opens a file).
        """
        events = self.drain()
        if not events or not self.path:
            return None
        document = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs",
                          "dropped_events": self._dropped},
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")
        self._log.info("trace_flushed", path=self.path,
                       events=len(events))
        return self.path
