"""Integration tests: the full paper pipeline on real (small) inputs."""

import numpy as np
import pytest

from repro.dataset.registry import get_kernel_spec
from repro.energy.accounting import compute_energy
from repro.energy.model import EnergyModel
from repro.features.sets import feature_names
from repro.ir.types import DType
from repro.ml import DecisionTreeClassifier, repeated_cv_predict
from repro.ml.metrics import mean_tolerance_curve
from repro.sim.engine import simulate
from repro.sim.results import minimum_energy_label, sweep_cores
from repro.trace import TraceWriter
from repro.trace.analyser import analyse_trace


class TestLabelSanity:
    """Engineered kernels must land in the classes they were built for."""

    def test_serialised_kernels_prefer_few_cores(self):
        for name in ("critical_update", "histogram"):
            spec = get_kernel_spec(name)
            kernel = spec.build(spec.dtypes[0], 2048)
            label = minimum_energy_label(sweep_cores(kernel))
            assert label <= 3, f"{name} labelled {label}"

    def test_l2_serialisation_caps_scaling(self):
        pingpong = get_kernel_spec("l2_pingpong").build(DType.INT32, 2048)
        stream = get_kernel_spec("l2_stream").build(DType.INT32, 2048)
        label_pingpong = minimum_energy_label(sweep_cores(pingpong))
        label_stream = minimum_energy_label(sweep_cores(stream))
        assert label_pingpong <= 5 < label_stream

    def test_scalable_kernels_prefer_many_cores(self):
        for name in ("compute_dense", "stream_triad"):
            kernel = get_kernel_spec(name).build(DType.INT32, 8192)
            label = minimum_energy_label(sweep_cores(kernel))
            assert label >= 6, f"{name} labelled {label}"

    def test_fpu_saturation_caps_fp_variant(self):
        spec = get_kernel_spec("fpu_saturate")
        label_int = minimum_energy_label(
            sweep_cores(spec.build(DType.INT32, 2048)))
        label_fp = minimum_energy_label(
            sweep_cores(spec.build(DType.FP32, 2048)))
        assert label_fp <= 6 < label_int

    def test_bank_pair_ordering(self):
        hammer = get_kernel_spec("bank_hammer").build(DType.INT32, 2048)
        friendly = get_kernel_spec("bank_friendly").build(DType.INT32,
                                                          2048)
        assert (minimum_energy_label(sweep_cores(hammer))
                < minimum_energy_label(sweep_cores(friendly)))


class TestEnergyCurveShape:
    def test_energy_decreases_then_flattens_for_scalable(self):
        kernel = get_kernel_spec("gemm").build(DType.INT32, 8192)
        energies = [r.total_energy_fj for r in sweep_cores(kernel)]
        assert energies[0] > energies[3] > min(energies)

    def test_interp_and_codegen_agree_on_energy(self):
        kernel = get_kernel_spec("trisolv").build(DType.FP32, 512)
        model = EnergyModel.paper_table1()
        for team in (1, 5):
            fast = compute_energy(simulate(kernel, team), model).total
            slow = compute_energy(
                simulate(kernel, team, backend="interp"), model).total
            assert fast == pytest.approx(slow)


class TestTraceAcrossRegistry:
    @pytest.mark.parametrize("name", [
        "gemm", "fft", "trisolv", "histogram", "l2_stream", "lmsfir",
    ])
    def test_trace_equivalence(self, name):
        spec = get_kernel_spec(name)
        kernel = spec.build(spec.dtypes[0], 512)
        writer = TraceWriter()
        engine = simulate(kernel, 6, trace=writer)
        rebuilt = analyse_trace(writer.lines).to_counters()
        assert rebuilt.as_dict() == engine.as_dict()


class TestEndToEndClassification:
    def test_static_model_beats_chance_on_tiny_dataset(self, tiny_dataset):
        names = feature_names("static-all")
        X = tiny_dataset.matrix(names)
        y = tiny_dataset.labels
        preds, importances = repeated_cv_predict(
            lambda: DecisionTreeClassifier(random_state=0), X, y,
            n_splits=4, repeats=3, seed=0)
        curve = mean_tolerance_curve(preds, tiny_dataset.energy_matrix,
                                     [0, 5, 8], tiny_dataset.team_sizes)
        chance = 1.0 / len(np.unique(y))
        assert curve[0] > chance
        assert curve[2] >= curve[0]
        assert importances.sum() == pytest.approx(1.0, abs=1e-6)

    def test_dynamic_features_at_least_as_good(self, tiny_dataset):
        results = {}
        for set_name in ("static-agg", "dynamic"):
            X = tiny_dataset.matrix(feature_names(set_name))
            preds, _ = repeated_cv_predict(
                lambda: DecisionTreeClassifier(random_state=0), X,
                tiny_dataset.labels, n_splits=4, repeats=3, seed=1)
            curve = mean_tolerance_curve(
                preds, tiny_dataset.energy_matrix, [5],
                tiny_dataset.team_sizes)
            results[set_name] = curve[0]
        # dynamic features contain the ground truth signal; allow noise
        assert results["dynamic"] >= results["static-agg"] - 0.15
