"""The paper's kernel dataset (§III-B / §IV-B).

59 OpenMP kernels across three suites — Polybench (polyhedral compute
kernels), UTDSP (digital signal processing) and Custom (hand-written
stimulators of the PULP energy trade-offs) — each parametric in data
type (int32 / fp32) and payload size (512 / 2048 / 8192 / 32768 bytes).
Six kernels are integer-only, giving 53*2*4 + 6*4 = 448 samples.

:func:`build_dataset` runs the full labelling campaign (simulate every
sample at every team size, attach Table-I energies, label with the
argmin) with on-disk caching of both raw counters and the assembled
dataset.
"""

from repro.dataset.spec import (
    PAPER_SIZES,
    PROFILES,
    KernelSpec,
    SampleSpec,
    enumerate_samples,
)
from repro.dataset.registry import all_kernel_specs, get_kernel_spec
from repro.dataset.build import Dataset, Sample, build_dataset

__all__ = [
    "PAPER_SIZES",
    "PROFILES",
    "KernelSpec",
    "SampleSpec",
    "enumerate_samples",
    "all_kernel_specs",
    "get_kernel_spec",
    "Dataset",
    "Sample",
    "build_dataset",
]
