"""The fleet router: one protocol endpoint, many resident models.

:class:`ModelFleet` is the layer between the JSON-lines protocol and
the classifiers.  It extends every scoring request with an optional
``"model"`` field naming a :class:`repro.api.fleet.ModelKey` spec
(``family:feature_set[:dataset_tag]``); requests that omit the field
are served by the pool's pinned default model, so pre-fleet clients
keep working unchanged.  Four admin verbs manage the pool over the
wire (see :class:`repro.api.admin.AdminClient` for the typed client
surface)::

    {"cmd": "list_models"}                     -> resident set + stats
    {"cmd": "load_model",  "model": "<spec>"}  -> warm-load one key
    {"cmd": "evict_model", "model": "<spec>"}  -> drop one key
    {"cmd": "promote",     "model": "<spec>"}  -> resident key -> default

A request naming a key the pool cannot serve answers a typed
``unknown_model`` error frame; a malformed key spec answers
``bad_request``.  When a :class:`~repro.api.fleet.MicroBatcher` is
attached, concurrent single-row ``{"features": ...}`` requests on the
synchronous path are coalesced into ``predict_batch`` calls.

Serving transports do not call this class directly any more: the
unified transport core (:mod:`repro.api.transport`) wraps a fleet in a
:class:`~repro.api.transport.RequestEngine`, which routes scoring and
model-admin verbs here and handles server-level concerns (framing,
size guards, the ``stats`` verb, event-loop coalescing) itself.
"""

from __future__ import annotations

from repro.api.classifier import Classifier
from repro.api.fleet.batching import MicroBatcher
from repro.api.fleet.pool import ModelKey, ModelPool
from repro.api.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_UNKNOWN_MODEL,
    error_frame,
    ok_frame,
    request_id,
)
from repro.api.service import handle_request as single_model_handle
from repro.api.service import process_request_line
from repro.errors import FleetError, ReproError


class ModelFleet:
    """Route protocol requests across a :class:`ModelPool`.

    ``default`` (a fitted classifier) is admitted pinned as the pool's
    default model; *batcher* enables micro-batching for single-row
    feature requests.  The fleet plugs into
    :class:`repro.api.daemon.ScoringDaemon` via its ``fleet=`` argument
    and into stdio serving via :func:`repro.api.service.serve`.
    """

    def __init__(self, pool: ModelPool | None = None,
                 batcher: MicroBatcher | None = None,
                 default: Classifier | None = None,
                 default_key: ModelKey | str | None = None) -> None:
        self.pool = pool if pool is not None else ModelPool()
        self.batcher = batcher
        if default is not None:
            self.pool.add(default, key=default_key, default=True)

    # -- request routing ---------------------------------------------------

    @property
    def default_classifier(self) -> Classifier | None:
        """The pinned default model (``None`` for an all-explicit fleet)."""
        if self.pool.default_key is None:
            return None
        return self.pool.get(self.pool.default_key)

    def _resolve(self, request) -> Classifier:
        """The classifier behind a request's ``"model"`` field.

        Malformed specs raise plain :class:`ReproError` (answered as
        ``bad_request``); keys the pool cannot serve raise
        :class:`FleetError` (answered as ``unknown_model``).
        """
        spec = request.get("model")
        if spec is not None:
            spec = self._parse_key(spec)
        return self.pool.get(spec)

    def _parse_key(self, spec) -> ModelKey:
        try:
            return self.pool.resolve_key(spec)
        except FleetError as exc:
            raise ReproError(str(exc))  # malformed spec -> bad_request

    def _batchable(self, request) -> bool:
        return (self.batcher is not None and self.batcher.is_running
                and "features" in request and "rows" not in request
                and "kernel" not in request and request.get("cmd") is None)

    def handle_request(self, request) -> dict:
        """One decoded request to one response frame (synchronous)."""
        req_id = request_id(request)
        try:
            if not isinstance(request, dict):
                raise ReproError("request must be a JSON object")
            admin = self._handle_admin(request, req_id)
            if admin is not None:
                return admin
            classifier = self._resolve(request)
            if request.get("cmd") == "info":
                return ok_frame({"info": classifier.info()}, req_id)
            if self._batchable(request):
                vector = classifier._vectorize(request["features"])
                try:
                    prediction = self.batcher.predict(classifier, vector)
                except FleetError as exc:
                    # overload/timeout/shutdown of the scheduler is a
                    # server condition, not an unknown model
                    return error_frame(ERROR_INTERNAL,
                                       f"micro-batching unavailable: "
                                       f"{exc}", req_id)
                return ok_frame({"prediction": prediction}, req_id)
            return single_model_handle(classifier, request)
        except FleetError as exc:
            return error_frame(ERROR_UNKNOWN_MODEL, str(exc), req_id)
        except (ReproError, TypeError, ValueError) as exc:
            return error_frame(ERROR_BAD_REQUEST, str(exc), req_id)

    def _handle_admin(self, request, req_id) -> dict | None:
        """The fleet admin verbs; ``None`` when the request is not one."""
        cmd = request.get("cmd")
        if cmd == "list_models":
            return ok_frame({"models": self.pool.entries(),
                             "stats": self.stats()}, req_id)
        if cmd == "load_model":
            key = self._parse_key(self._required_model(request))
            self.pool.get(key)
            return ok_frame({"model": key.spec, "loaded": True}, req_id)
        if cmd == "evict_model":
            key = self._parse_key(self._required_model(request))
            try:
                evicted = self.pool.evict(key)
            except FleetError as exc:
                # the key is known, just protected -> bad_request
                raise ReproError(str(exc))
            return ok_frame({"model": key.spec, "evicted": evicted},
                            req_id)
        if cmd == "promote":
            # FleetError (key not resident) propagates to the caller's
            # unknown_model answer: promotion never loads
            key = self.pool.promote(
                self._parse_key(self._required_model(request)))
            return ok_frame({"model": key.spec, "promoted": True},
                            req_id)
        return None

    @staticmethod
    def _required_model(request) -> str:
        spec = request.get("model")
        if spec is None:
            raise ReproError(
                f"cmd={request.get('cmd')!r} requires a 'model' key "
                f"('family:feature_set[:dataset_tag]')")
        return spec

    # -- protocol turns ----------------------------------------------------

    def process_line(self, line: str) -> str | None:
        """Synchronous protocol turn (stdio serving, tests)."""
        return process_request_line(line, self.handle_request)

    # -- lifecycle / introspection -----------------------------------------

    def close(self) -> None:
        """Flush and stop the micro-batcher (the pool needs no teardown)."""
        if self.batcher is not None:
            self.batcher.close()

    def stats(self) -> dict:
        stats = {"pool": self.pool.stats()}
        if self.batcher is not None:
            stats["batching"] = self.batcher.stats()
        return stats
