"""Tests for the sweep/result layer."""


from repro.energy.model import EnergyModel
from repro.ir.types import DType
from repro.platform.config import ClusterConfig
from repro.sim.results import (
    SimulationResult,
    minimum_energy_label,
    run_one,
    sweep_cores,
)
from tests.conftest import make_axpy


class TestRunOne:
    def test_result_fields(self):
        result = run_one(make_axpy(DType.INT32, 512), 3)
        assert isinstance(result, SimulationResult)
        assert result.kernel_name == "axpy"
        assert result.team_size == 3
        assert result.cycles == result.counters.cycles
        assert result.total_energy_fj == result.energy.total > 0

    def test_custom_model_changes_energy(self):
        kernel = make_axpy(DType.INT32, 512)
        base = run_one(kernel, 2)
        no_leak = run_one(kernel, 2, model=EnergyModel().zero_leakage())
        assert no_leak.total_energy_fj < base.total_energy_fj
        assert no_leak.cycles == base.cycles  # timing unaffected


class TestSweep:
    def test_sweeps_all_teams_by_default(self):
        results = sweep_cores(make_axpy(DType.FP32, 512))
        assert [r.team_size for r in results] == list(range(1, 9))

    def test_subset_of_teams(self):
        results = sweep_cores(make_axpy(DType.INT32, 512),
                              team_sizes=(1, 8))
        assert [r.team_size for r in results] == [1, 8]

    def test_minimum_energy_label(self):
        results = sweep_cores(make_axpy(DType.INT32, 2048))
        label = minimum_energy_label(results)
        energies = {r.team_size: r.total_energy_fj for r in results}
        assert energies[label] == min(energies.values())

    def test_custom_config_team_count(self):
        config = ClusterConfig(n_cores=4, n_fpus=2)
        results = sweep_cores(make_axpy(DType.INT32, 512), config=config)
        assert [r.team_size for r in results] == [1, 2, 3, 4]
