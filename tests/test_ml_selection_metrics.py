"""Cross-validation and metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLError
from repro.ml import (
    AlwaysKClassifier,
    DecisionTreeClassifier,
    accuracy,
    confusion_matrix,
    cross_val_predict,
    repeated_cv_predict,
    stratified_kfold,
    tolerance_accuracy,
    tolerance_curve,
)
from repro.ml.metrics import mean_tolerance_curve


class TestStratifiedKFold:
    def test_folds_partition_dataset(self):
        y = np.array([1] * 30 + [2] * 20 + [3] * 10)
        seen = []
        for train, test in stratified_kfold(y, 5, seed=0):
            assert set(train) & set(test) == set()
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(60))

    def test_class_balance_per_fold(self):
        y = np.array([1] * 40 + [2] * 20)
        for train, test in stratified_kfold(y, 4, seed=1):
            values, counts = np.unique(y[test], return_counts=True)
            ratio = dict(zip(values.tolist(), counts.tolist()))
            assert ratio == {1: 10, 2: 5}

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999),
           splits=st.integers(min_value=2, max_value=10))
    def test_partition_property(self, seed, splits):
        rng = np.random.default_rng(seed)
        y = rng.integers(1, 5, size=57)
        collected = []
        for train, test in stratified_kfold(y, splits, seed=seed):
            collected.extend(test.tolist())
        assert sorted(collected) == list(range(len(y)))

    def test_small_classes_spread(self):
        y = np.array([1] * 18 + [2, 2])
        fold_has_2 = sum(1 for _, test in stratified_kfold(y, 4, seed=0)
                         if 2 in y[test])
        assert fold_has_2 == 2  # one fold per minority sample

    def test_invalid_splits_rejected(self):
        with pytest.raises(MLError):
            list(stratified_kfold(np.ones(5), 1))
        with pytest.raises(MLError):
            list(stratified_kfold(np.ones(3), 10))


class TestCrossValidation:
    def test_out_of_fold_predictions_cover_everything(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(80, 3))
        y = (X[:, 0] > 0).astype(int) + 1
        preds, importances = cross_val_predict(
            lambda: DecisionTreeClassifier(), X, y, n_splits=5, seed=0)
        assert preds.shape == (80,)
        assert accuracy(y, preds) > 0.7
        assert importances.shape == (3,)

    def test_repeated_cv_shape_and_seed_variation(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(60, 3))
        y = rng.integers(1, 4, size=60)
        preds, _ = repeated_cv_predict(
            lambda: DecisionTreeClassifier(max_depth=3), X, y,
            n_splits=5, repeats=4, seed=2)
        assert preds.shape == (4, 60)
        # different repeats shuffle folds differently: rows should differ
        assert any((preds[0] != preds[r]).any() for r in range(1, 4))

    def test_baseline_in_cv(self):
        X = np.zeros((40, 2))
        y = np.array([8] * 30 + [1] * 10)
        preds, _ = cross_val_predict(lambda: AlwaysKClassifier(8), X, y,
                                     n_splits=4, seed=0)
        assert (preds == 8).all()


class TestToleranceAccuracy:
    def setup_method(self):
        # two samples, 4 candidate teams
        self.energy = np.array([
            [100.0, 90.0, 95.0, 120.0],   # optimum team 2
            [50.0, 52.0, 55.0, 49.0],     # optimum team 4
        ])

    def test_exact_match(self):
        assert tolerance_accuracy([2, 4], self.energy, 0.0) == 1.0

    def test_miss_without_tolerance(self):
        assert tolerance_accuracy([3, 1], self.energy, 0.0) == 0.0

    def test_tolerance_forgives_close_energy(self):
        # team 3 wastes 5/90 = 5.6% on sample 1; team 1 wastes 1/49 = 2.04%
        assert tolerance_accuracy([3, 1], self.energy, 2.0) == 0.0
        assert tolerance_accuracy([3, 1], self.energy, 3.0) == 0.5
        assert tolerance_accuracy([3, 1], self.energy, 6.0) == 1.0

    def test_curve_is_monotone(self):
        curve = tolerance_curve([3, 1], self.energy, range(0, 9))
        assert curve == sorted(curve)

    def test_mean_curve_averages_repeats(self):
        preds = np.array([[2, 4], [3, 1]])
        curve = mean_tolerance_curve(preds, self.energy, [0.0])
        assert curve[0] == pytest.approx(0.5)

    def test_custom_team_sizes(self):
        acc = tolerance_accuracy([5], np.array([[10.0, 20.0]]), 0.0,
                                 team_sizes=[5, 6])
        assert acc == 1.0

    def test_invalid_prediction_rejected(self):
        with pytest.raises(MLError):
            tolerance_accuracy([9], self.energy[:1], 0.0)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(MLError):
            tolerance_accuracy([2, 4], self.energy, -1.0)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = confusion_matrix([1, 1, 2, 2], [1, 2, 2, 2],
                                  labels=[1, 2])
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_accuracy_raises_on_shape_mismatch(self):
        with pytest.raises(MLError):
            accuracy([1, 2], [1])
