"""Stratified cross-validation drivers (paper §IV.B evaluation protocol).

The paper evaluates with 10-fold *stratified* cross-validation repeated
100 times with random seeds.  :func:`repeated_cv_predict` reproduces
that: it returns the out-of-fold prediction matrix (repeats x samples),
so any metric — plain accuracy or the energy-tolerance accuracy — can be
computed over exactly the same predictions, plus the fold-averaged
feature importances used to build the ``*-opt`` pruned sets.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator

import numpy as np

from repro.errors import MLError
from repro.parallel import resolve_jobs


def stratified_kfold(y, n_splits: int, seed: int | None = None,
                     ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs with per-class balance.

    Each class's samples are shuffled and dealt round-robin over the
    folds, so every fold's class proportions match the dataset's as
    closely as integer counts allow (classes smaller than ``n_splits``
    simply appear in fewer folds).
    """
    y = np.asarray(y)
    if n_splits < 2:
        raise MLError(f"n_splits must be >= 2, got {n_splits}")
    if n_splits > len(y):
        raise MLError(f"n_splits {n_splits} exceeds dataset size {len(y)}")
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_splits)]
    offset = 0
    for cls in np.unique(y):
        members = np.nonzero(y == cls)[0]
        rng.shuffle(members)
        for i, idx in enumerate(members):
            folds[(offset + i) % n_splits].append(int(idx))
        offset += len(members)  # stagger classes across folds
    all_idx = np.arange(len(y))
    for i, fold in enumerate(folds):
        test = np.asarray(sorted(fold), dtype=int)
        if len(test) == 0:
            warnings.warn(
                f"stratified_kfold: fold {i} is empty "
                f"(n_splits={n_splits} too large for the class sizes); "
                f"skipping it", RuntimeWarning, stacklevel=2)
            continue
        train = np.setdiff1d(all_idx, test, assume_unique=True)
        yield train, test


def cross_val_predict(model_factory: Callable, X, y, n_splits: int = 10,
                      seed: int | None = None,
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Out-of-fold predictions plus fold-averaged feature importances."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    predictions = np.empty(len(y), dtype=y.dtype)
    importances = np.zeros(X.shape[1])
    n_folds = 0
    for train, test in stratified_kfold(y, n_splits, seed):
        model = model_factory()
        model.fit(X[train], y[train])
        predictions[test] = model.predict(X[test])
        if getattr(model, "feature_importances_", None) is not None:
            importances += model.feature_importances_
        n_folds += 1
    if n_folds == 0:
        raise MLError("cross-validation produced no folds")
    return predictions, importances / n_folds


def repeated_cv_predict(model_factory: Callable, X, y,
                        n_splits: int = 10, repeats: int = 10,
                        seed: int = 0, jobs: int | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Repeat stratified CV with varying seeds.

    Returns ``(predictions, importances)`` where predictions has shape
    ``(repeats, n_samples)`` (one out-of-fold prediction per repeat) and
    importances is the grand average over folds and repeats.

    *jobs* (default ``$REPRO_JOBS`` or 1) distributes repeats over a
    thread pool.  Threads rather than processes: *model_factory* is
    usually a closure (unpicklable), each repeat is seeded
    independently, and the fit/predict hot paths live in numpy which
    releases the GIL.  Results are merged by repeat index, so they are
    identical for any *jobs*.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if repeats < 1:
        raise MLError(f"repeats must be >= 1, got {repeats}")
    jobs = resolve_jobs(jobs)
    all_preds = np.empty((repeats, len(y)), dtype=y.dtype)
    importances = np.zeros(X.shape[1])

    def one_repeat(rep: int) -> tuple[np.ndarray, np.ndarray]:
        return cross_val_predict(model_factory, X, y, n_splits,
                                 seed=seed + rep)

    if jobs > 1 and repeats > 1:
        with ThreadPoolExecutor(max_workers=min(jobs, repeats)) as pool:
            results = list(pool.map(one_repeat, range(repeats)))
    else:
        results = [one_repeat(rep) for rep in range(repeats)]
    for rep, (preds, imp) in enumerate(results):
        all_preds[rep] = preds
        importances += imp
    return all_preds, importances / repeats
