"""Persistent scoring daemon: the JSON-lines protocol over a socket.

``repro serve`` on stdin/stdout pays the model-load cost on every
process start and serves exactly one client.  :class:`ScoringDaemon`
keeps one fitted :class:`repro.api.Classifier` resident and serves the
same protocol (see :mod:`repro.api.protocol`) to many concurrent
clients over a Unix domain socket or a TCP endpoint, dispatching each
connection to a thread pool.  Predictions are pure numpy reads on the
shared model, so worker threads score without locking and every
response is byte-identical to a local ``predict_batch`` call.

Typical embedding::

    daemon = ScoringDaemon(classifier, socket_path="/tmp/repro.sock")
    with daemon:
        ...  # clients connect via repro.api.client.ScoringClient

or from the shell: ``repro serve --socket /tmp/repro.sock --workers 8``.

**Fleet mode** swaps the single resident classifier for a
:class:`repro.api.fleet.ModelFleet` — many resident models routed by
the request's ``"model"`` field::

    daemon = ScoringDaemon(fleet=fleet, socket_path="/tmp/repro.sock")

Fleet connections are served by a single-threaded event loop
(:class:`repro.api.fleet.eventloop.FleetEventLoop`) instead of the
thread pool: each select round coalesces concurrent single-row
requests into per-model ``predict_batch`` calls (bounded by the
fleet batcher's ``max_batch``), while kernel simulation, explicit
batches, admin verbs and cold-model loads run on a small worker pool
sized by ``workers``.  Requests without a ``"model"`` field hit the
fleet's pinned default model, so pre-fleet clients see identical
behaviour.
"""

from __future__ import annotations

import os
import socket
import stat
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.api.classifier import Classifier
from repro.api.service import process_line
from repro.errors import DaemonError

#: default worker-thread count (and so the concurrent-connection cap).
DEFAULT_WORKERS = 16


def _reclaim_stale_unix_socket(path: str) -> None:
    """Unlink *path* if it is a socket nobody is listening on.

    A daemon that died without :meth:`ScoringDaemon.stop` leaves its
    socket file behind; binding over it must work, but silently
    deleting a live daemon's socket (or an unrelated file) must not.
    """
    if not os.path.exists(path):
        return
    if not stat.S_ISSOCK(os.stat(path).st_mode):
        raise DaemonError(
            f"socket path {path!r} exists and is not a socket; refusing "
            f"to overwrite it"
        )
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.2)
        probe.connect(path)
    except OSError:
        os.unlink(path)  # stale: no listener behind it
    else:
        raise DaemonError(f"socket path {path!r} already has a live listener")
    finally:
        probe.close()


class ScoringDaemon:
    """Serve one loaded classifier to many clients over a socket.

    Exactly one transport must be configured: ``socket_path`` (a Unix
    domain socket) or ``tcp`` (a ``(host, port)`` pair; port 0 binds an
    ephemeral port, readable back from :attr:`address`).  ``workers``
    bounds the number of concurrently served connections; further
    connections queue in the listen backlog until a worker frees up.
    """

    def __init__(
        self,
        classifier: Classifier | None = None,
        socket_path: str | None = None,
        tcp: tuple | None = None,
        workers: int = DEFAULT_WORKERS,
        backlog: int = 128,
        fleet=None,
    ) -> None:
        if (classifier is None) == (fleet is None):
            raise DaemonError(
                "configure exactly one scorer: classifier=Classifier or "
                "fleet=ModelFleet"
            )
        if (socket_path is None) == (tcp is None):
            raise DaemonError(
                "configure exactly one transport: socket_path=PATH or "
                "tcp=(host, port)"
            )
        if classifier is not None and not classifier.is_fitted:
            raise DaemonError(
                "classifier is not fitted; train or load a model before "
                "serving it"
            )
        if workers < 1:
            raise DaemonError(f"workers must be >= 1, got {workers}")
        self.fleet = fleet
        self.classifier = classifier
        self.socket_path = socket_path
        self.tcp = tuple(tcp) if tcp is not None else None
        self.workers = workers
        self.backlog = backlog
        self._listener: socket.socket | None = None
        self._loop = None  # FleetEventLoop in fleet mode
        self._last_loop_stats: dict | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._acceptor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._connections: set = set()
        self._slots: threading.Semaphore | None = None
        self._requests_served = 0
        self._connections_served = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_running(self) -> bool:
        return self._listener is not None and not self._stopping.is_set()

    @property
    def address(self) -> tuple:
        """The bound endpoint: ``("unix", path)`` or ``("tcp", host, port)``.

        For TCP the port is the *actual* bound port, so requesting port
        0 and reading the address back yields a usable endpoint.
        """
        if self.socket_path is not None:
            return ("unix", self.socket_path)
        if self._listener is not None:
            host, port = self._listener.getsockname()[:2]
            return ("tcp", host, port)
        return ("tcp",) + self.tcp

    def start(self) -> "ScoringDaemon":
        """Bind the socket and start accepting connections."""
        if self._listener is not None:
            raise DaemonError("daemon is already started")
        if self.socket_path is not None:
            _reclaim_stale_unix_socket(self.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                listener.bind(self.socket_path)
            except OSError as exc:
                listener.close()
                raise DaemonError(
                    f"cannot bind unix socket {self.socket_path!r}: {exc}"
                )
        else:
            host, port = self.tcp
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, int(port)))
            except OSError as exc:
                listener.close()
                raise DaemonError(f"cannot bind tcp {host}:{port}: {exc}")
        listener.listen(self.backlog)
        self._stopping.clear()
        self._stopped.clear()
        self._listener = listener
        if self.fleet is not None:
            # fleet mode serves from a single-threaded event loop (one
            # IO thread, adaptive request coalescing, a small worker
            # pool for slow verbs) — see repro.api.fleet.eventloop
            from repro.api.fleet.eventloop import FleetEventLoop

            batcher = getattr(self.fleet, "batcher", None)
            max_batch = batcher.max_batch if batcher is not None else 1
            self._loop = FleetEventLoop(
                self.fleet, listener, workers=self.workers, max_batch=max_batch
            ).start()
            return self
        # a bounded accept timeout guarantees the acceptor re-checks the
        # stop flag even on platforms where closing a listener does not
        # wake a blocked accept()
        listener.settimeout(0.5)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-score",
        )
        self._slots = threading.Semaphore(self.workers)
        self._acceptor = threading.Thread(
            target=self._accept_loop,
            name="repro-accept",
            daemon=True,
        )
        self._acceptor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting, close live connections, drain the pool.

        Idempotent; a Unix socket path is unlinked on the way out so a
        clean restart can re-bind it.
        """
        if self._listener is None:
            return
        self._stopping.set()
        if self._loop is not None:
            self._loop.stop(timeout)  # closes its accepted connections
            self._last_loop_stats = self._loop.stats()
        try:
            # shutdown() (unlike close()) wakes a blocked accept() on
            # Linux; the accept timeout covers platforms where it won't
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._loop = None
        if self._acceptor is not None:
            self._acceptor.join(timeout)
            self._acceptor = None
        with self._lock:
            live = list(self._connections)
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._listener = None
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._stopped.set()

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`stop` is called.

        A ``KeyboardInterrupt`` triggers a clean :meth:`stop`, so
        Ctrl-C on ``repro serve --socket`` shuts down gracefully.
        """
        if self._listener is None:
            self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.stop()

    def __enter__(self) -> "ScoringDaemon":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- serving -----------------------------------------------------------

    def stats(self) -> dict:
        """Lifetime counters (requests, connections, live connections)."""
        if self._last_loop_stats is not None or self._loop is not None:
            loop_stats = (
                self._loop.stats()
                if self._loop is not None
                else self._last_loop_stats
            )
            stats = {
                "requests_served": loop_stats["requests_served"],
                "connections_served": loop_stats["connections_served"],
                "active_connections": loop_stats["active_connections"],
                "workers": self.workers,
                "loop": loop_stats,
            }
        else:
            with self._lock:
                stats = {
                    "requests_served": self._requests_served,
                    "connections_served": self._connections_served,
                    "active_connections": len(self._connections),
                    "workers": self.workers,
                }
        if self.fleet is not None:
            stats["fleet"] = self.fleet.stats()
        return stats

    def _accept_loop(self) -> None:
        # a semaphore slot per worker: accept only when a worker can
        # actually serve the connection, so excess clients wait in the
        # kernel listen backlog instead of an unbounded internal queue
        while not self._stopping.is_set():
            if not self._slots.acquire(timeout=0.5):
                continue  # all workers busy; re-check the stop flag
            conn = None
            while not self._stopping.is_set():
                try:
                    conn, _ = self._listener.accept()
                    break
                except socket.timeout:
                    continue  # periodic stop-flag check
                except OSError:
                    break  # listener closed by stop()
            if conn is None or self._stopping.is_set():
                self._slots.release()
                if conn is not None:
                    conn.close()
                break
            with self._lock:
                self._connections.add(conn)
            self._pool.submit(self._serve_connection, conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        """One client session: read lines, answer frames, until EOF."""
        try:
            reader = conn.makefile("r", encoding="utf-8", errors="replace")
            writer = conn.makefile("w", encoding="utf-8")
            with reader, writer:
                for line in reader:
                    # process_line answers every failure mode itself
                    # (invalid JSON, bad requests, internal errors with
                    # the request id preserved) — it does not raise
                    response = process_line(self.classifier, line)
                    if response is None:
                        continue
                    writer.write(response)
                    writer.flush()
                    with self._lock:
                        self._requests_served += 1
        except OSError:
            pass  # client went away mid-session; nothing to answer
        finally:
            with self._lock:
                self._connections.discard(conn)
                self._connections_served += 1
            try:
                conn.close()
            except OSError:
                pass
            self._slots.release()


def parse_tcp_endpoint(endpoint: str) -> tuple:
    """Parse ``HOST:PORT`` (the ``repro serve --tcp`` argument)."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise DaemonError(f"endpoint must look like HOST:PORT, got {endpoint!r}")
    try:
        return host, int(port)
    except ValueError:
        raise DaemonError(f"tcp port must be an integer, got {port!r}")
