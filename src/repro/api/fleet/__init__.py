"""Multi-model serving fleet: pool + micro-batching + router.

The serving subsystem that turns the single-model scoring daemon into
a model fleet (see ``ISSUE 4`` / the ROADMAP's sharded-serving item):

* :class:`ModelPool` — many resident artifacts keyed by
  :class:`ModelKey` *(family, feature set, dataset tag)*, warm
  pre-loading, LRU eviction under a memory budget, lazy cold loads;
* :class:`MicroBatcher` — coalesces concurrent single-row requests
  into ``predict_batch`` calls (bounded queue, ``max_batch`` /
  ``max_delay_us`` knobs);
* :class:`ModelFleet` — the protocol router: ``"model"`` request
  field, ``list_models`` / ``load_model`` / ``evict_model`` admin
  verbs, typed ``unknown_model`` error frames.

Wiring it behind a socket::

    pool = ModelPool(memory_budget_bytes=64 << 20)
    fleet = ModelFleet(pool, MicroBatcher(), default=classifier)
    ScoringDaemon(fleet=fleet, socket_path="/tmp/repro.sock").start()
"""

from repro.api.fleet.batching import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_US,
    DEFAULT_QUEUE_SIZE,
    MicroBatcher,
)
from repro.api.fleet.pool import ModelKey, ModelPool, cache_loader
from repro.api.fleet.router import ModelFleet

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_DELAY_US",
    "DEFAULT_QUEUE_SIZE",
    "MicroBatcher",
    "ModelKey",
    "ModelPool",
    "ModelFleet",
    "cache_loader",
]
