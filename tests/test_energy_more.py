"""Additional energy-accounting properties tied to the simulator."""

import pytest

from repro.energy.accounting import compute_energy
from repro.energy.model import EnergyModel
from repro.ir.types import DType
from repro.sim.engine import simulate
from tests.conftest import make_axpy, make_matmul


class TestEnergyVsTeamSize:
    def test_switching_energy_is_team_invariant_without_contention(self):
        """With leakage zeroed and no contention, energy is pure
        switching and barely depends on the team (only runtime overhead
        instructions differ)."""
        model = EnergyModel.paper_table1().zero_leakage()
        kernel = make_matmul(DType.INT32, 512)
        totals = []
        for team in (1, 2, 4):
            counters = simulate(kernel, team)
            totals.append(compute_energy(counters, model).total)
        spread = (max(totals) - min(totals)) / min(totals)
        assert spread < 0.25

    def test_leakage_scales_with_runtime(self):
        kernel = make_matmul(DType.INT32, 1024)
        model = EnergyModel.paper_table1()
        zero = EnergyModel.paper_table1().zero_leakage()
        c1 = simulate(kernel, 1)
        c8 = simulate(kernel, 8)
        leak1 = (compute_energy(c1, model).total
                 - compute_energy(c1, zero).total)
        leak8 = (compute_energy(c8, model).total
                 - compute_energy(c8, zero).total)
        # background energy is near-proportional to cycles (the residual
        # comes from CG pricing and bank-idle complements, both small)
        assert leak1 / leak8 == pytest.approx(c1.cycles / c8.cycles,
                                              rel=0.05)

    def test_fp_variant_costs_more_fpu_energy(self):
        model = EnergyModel.paper_table1()
        int_run = compute_energy(simulate(make_axpy(DType.INT32, 512), 4),
                                 model)
        fp_run = compute_energy(simulate(make_axpy(DType.FP32, 512), 4),
                                model)
        assert fp_run.fpu > int_run.fpu

    def test_energy_vector_strictly_positive(self):
        kernel = make_axpy(DType.FP32, 512)
        model = EnergyModel.paper_table1()
        for team in range(1, 9):
            breakdown = compute_energy(simulate(kernel, team), model)
            for value in breakdown.as_dict().values():
                assert value > 0.0
