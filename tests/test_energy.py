"""Unit + property tests for the energy model and accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy import EnergyModel, compute_energy, format_breakdown
from repro.energy.report import format_model_table
from repro.errors import EnergyModelError
from repro.sim.counters import BankCounters, ClusterCounters, CoreCounters


class TestModelValues:
    """Table I values, verbatim from the paper."""

    def test_processing_element(self):
        pe = EnergyModel.paper_table1().pe
        assert (pe.leakage, pe.nop, pe.alu, pe.fp, pe.l1, pe.l2, pe.cg) \
            == (182.0, 1212.0, 2558.0, 2468.0, 3242.0, 1011.0, 20.0)

    def test_fpu(self):
        fpu = EnergyModel.paper_table1().fpu
        assert (fpu.leakage, fpu.operative, fpu.idle) == (191.0, 299.0, 0.0)

    def test_memory_banks(self):
        model = EnergyModel.paper_table1()
        assert (model.l1_bank.leakage, model.l1_bank.read,
                model.l1_bank.write, model.l1_bank.idle) \
            == (49.0, 2543.0, 2568.0, 64.0)
        assert (model.l2_bank.leakage, model.l2_bank.read,
                model.l2_bank.write, model.l2_bank.idle) \
            == (105.0, 2942.0, 3480.0, 13.0)

    def test_icache_dma_other(self):
        model = EnergyModel.paper_table1()
        assert (model.icache.leakage, model.icache.use,
                model.icache.refill) == (774.0, 4492.0, 5932.0)
        assert (model.dma.leakage, model.dma.transfer, model.dma.idle) \
            == (165.0, 1750.0, 46.0)
        assert (model.other.leakage, model.other.active) == (655.0, 2702.0)

    def test_as_rows_covers_every_field(self):
        rows = EnergyModel.paper_table1().as_rows()
        assert len(rows) == 7 + 3 + 4 + 4 + 3 + 3 + 2
        assert format_model_table(EnergyModel.paper_table1())

    def test_zero_leakage_variant(self):
        variant = EnergyModel.paper_table1().zero_leakage()
        assert variant.pe.leakage == 0.0
        assert variant.l1_bank.idle == 0.0
        assert variant.other.active == 0.0
        assert variant.pe.alu == 2558.0  # switching costs untouched

    def test_scaled_variant(self):
        variant = EnergyModel.paper_table1().scaled(leakage=2.0, nop=3.0)
        assert variant.pe.leakage == 364.0
        assert variant.pe.nop == 3636.0
        assert variant.cache_key() != EnergyModel.paper_table1().cache_key()


def _counters(cycles=100, **core0):
    counters = ClusterCounters(n_cores=8, n_l1_banks=16, n_l2_banks=32,
                               n_fpus=4)
    counters.cycles = cycles
    if core0:
        counters.cores[0] = CoreCounters(**core0)
    return counters


class TestAccounting:
    def test_idle_cluster_pays_background_only(self):
        model = EnergyModel.paper_table1()
        counters = _counters(cycles=10)
        breakdown = compute_energy(counters, model)
        # background per cycle: all leakages + idle states + other.active
        per_cycle = (8 * 182 + 4 * 191 + 16 * (49 + 64) + 32 * (105 + 13)
                     + 774 + (165 + 46) + (655 + 2702))
        assert breakdown.total == pytest.approx(10 * per_cycle)

    def test_alu_op_costs_alu_energy(self):
        model = EnergyModel.paper_table1()
        base = compute_energy(_counters(), model).total
        plus = compute_energy(_counters(alu_ops=5), model).total
        assert plus - base == pytest.approx(5 * 2558.0)

    def test_jump_and_div_priced_as_alu_class(self):
        model = EnergyModel.paper_table1()
        base = compute_energy(_counters(), model).total
        plus = compute_energy(_counters(jump_ops=2, div_ops=3),
                              model).total
        assert plus - base == pytest.approx(5 * 2558.0)

    def test_stall_and_nop_priced_as_nop(self):
        model = EnergyModel.paper_table1()
        base = compute_energy(_counters(), model).total
        plus = compute_energy(_counters(stall_cycles=4, nop_ops=2),
                              model).total
        assert plus - base == pytest.approx(6 * 1212.0)

    def test_bank_read_replaces_idle_cycle(self):
        model = EnergyModel.paper_table1()
        counters = _counters()
        counters.l1_banks[3] = BankCounters(reads=7)
        delta = (compute_energy(counters, model).total
                 - compute_energy(_counters(), model).total)
        assert delta == pytest.approx(7 * (2543.0 - 64.0))

    def test_overfull_bank_rejected(self):
        counters = _counters(cycles=5)
        counters.l1_banks[0] = BankCounters(reads=6)
        with pytest.raises(EnergyModelError):
            compute_energy(counters, EnergyModel.paper_table1())

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_total_is_sum_of_components(self, alu, stalls):
        breakdown = compute_energy(
            _counters(alu_ops=alu, stall_cycles=stalls),
            EnergyModel.paper_table1())
        assert breakdown.total == pytest.approx(
            breakdown.pe + breakdown.fpu + breakdown.l1 + breakdown.l2
            + breakdown.icache + breakdown.dma + breakdown.other)

    def test_breakdown_report_renders(self):
        breakdown = compute_energy(_counters(alu_ops=5),
                                   EnergyModel.paper_table1())
        text = format_breakdown(breakdown, "(test)")
        assert "TOTAL" in text and "Processing elements" in text
