"""MCA feature tests: water-filling, port model, kernel-level features."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FeatureError
from repro.features.mca import (
    DISPATCH_WIDTH,
    MCA_FEATURES,
    _waterfill,
    analyse_mix,
    extract_mca,
    mca_report,
)
from repro.features.static_counts import StaticCounts
from repro.ir.types import DType
from tests.conftest import make_axpy, make_matmul


class TestWaterfill:
    def test_fills_least_loaded_first(self):
        loads = [0.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        _waterfill(loads, (0, 1), 4.0)
        assert loads[0] == pytest.approx(4.0)
        assert loads[1] == pytest.approx(5.0)

    def test_equalises_when_large(self):
        loads = [0.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        _waterfill(loads, (0, 1), 9.0)
        assert loads[0] == pytest.approx(loads[1]) == pytest.approx(7.0)

    @given(st.lists(st.floats(min_value=0, max_value=50), min_size=8,
                    max_size=8),
           st.floats(min_value=0, max_value=100),
           st.sets(st.integers(min_value=0, max_value=7), min_size=1))
    def test_conserves_mass_and_minimises_max(self, loads, amount, ports):
        ports = tuple(sorted(ports))
        before = list(loads)
        _waterfill(loads, ports, amount)
        # mass conservation
        assert sum(loads) == pytest.approx(sum(before) + amount)
        # untouched ports unchanged
        for port in range(8):
            if port not in ports:
                assert loads[port] == before[port]
        # min-max optimality: every raised port ends at the common level
        # or was already above it
        raised = [p for p in ports if loads[p] > before[p]]
        if raised:
            level = max(loads[p] for p in raised)
            for p in raised:
                assert loads[p] == pytest.approx(level, rel=1e-6)


class TestAnalyseMix:
    def test_pure_alu_mix(self):
        counts = StaticCounts(alu=8.0)
        result = analyse_mix(counts, iterations=1.0)
        # 8 uops over 4 eligible ports -> pressure 2 each; dispatch bound 2
        assert result.rblock_throughput == pytest.approx(2.0)
        assert result.ipc == pytest.approx(4.0)

    def test_branch_bound_mix(self):
        counts = StaticCounts(alu=2.0, jump=3.0)
        result = analyse_mix(counts, iterations=1.0)
        # branches are port-6 only -> RBP >= 3
        assert result.rblock_throughput >= 3.0
        assert result.port_pressure[6] >= 3.0

    def test_store_uses_data_and_agu_ports(self):
        counts = StaticCounts(l1_stores=4.0)
        result = analyse_mix(counts, iterations=1.0)
        assert result.port_pressure[4] == pytest.approx(4.0)
        agu = (result.port_pressure[2] + result.port_pressure[3]
               + result.port_pressure[7])
        assert agu == pytest.approx(4.0)

    def test_divider_pressure(self):
        counts = StaticCounts(div=2.0, fpdiv=1.0)
        result = analyse_mix(counts, iterations=1.0)
        assert result.div_pressure == pytest.approx(2 * 8.0 + 1 * 12.0)
        assert result.fpdiv_pressure == pytest.approx(12.0)
        assert result.rblock_throughput >= result.div_pressure

    def test_zero_iterations_rejected(self):
        with pytest.raises(FeatureError):
            analyse_mix(StaticCounts(alu=1.0), iterations=0)

    def test_uopspc_bounded_by_width(self):
        counts = StaticCounts(alu=100.0, l1_loads=30.0, l1_stores=10.0,
                              jump=5.0)
        result = analyse_mix(counts, iterations=1.0)
        assert result.uops_per_cycle <= DISPATCH_WIDTH + 1e-9


class TestKernelFeatures:
    def test_feature_names_match_table2b(self):
        feats = extract_mca(make_axpy(DType.INT32, 512))
        assert set(feats) == set(MCA_FEATURES)
        assert len(MCA_FEATURES) == 13

    def test_all_pressures_nonnegative(self):
        feats = extract_mca(make_matmul(DType.FP32, 768))
        for name, value in feats.items():
            assert value >= 0.0, name

    def test_fp_kernel_loads_fp_ports(self):
        feats_int = extract_mca(make_axpy(DType.INT32, 512))
        feats_fp = extract_mca(make_axpy(DType.FP32, 512))
        # fp variant concentrates arithmetic on ports 0/1
        assert (feats_fp["RP0"] + feats_fp["RP1"]
                >= feats_int["RP0"] + feats_int["RP1"] - 1e-9)

    def test_report_renders(self):
        text = mca_report(make_axpy(DType.FP32, 512))
        assert "Reverse block throughput" in text
        assert "Port 7" in text
