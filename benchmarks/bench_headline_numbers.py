"""E7 — headline scalar claims of the paper.

Computed from the (session-cached) Figure-2 left panel: static accuracy
levels at 0/5/8% tolerance, the static-dynamic gap, and dominance over
the always-8 policy.  Benchmarks a single tolerance-curve evaluation.
"""

import numpy as np

from repro.experiments.headline import HeadlineResult
from repro.ml.metrics import mean_tolerance_curve

from benchmarks.conftest import write_artifact


def test_headline_numbers(dataset, figure2_left, benchmark):
    fig = figure2_left
    gaps = [d - s for d, s in zip(fig.series["dynamic"],
                                  fig.series["static-opt"])]
    baseline = fig.series["always-8"]
    beats = all(
        fig.series[name][i] >= baseline[i] - 1e-9
        for name in ("static-agg", "static-opt", "dynamic", "dynamic-opt")
        for i in range(len(baseline)))
    result = HeadlineResult(
        static_agg_at_0=fig.accuracy_at("static-agg", 0),
        static_opt_at_0=fig.accuracy_at("static-opt", 0),
        static_opt_at_5=fig.accuracy_at("static-opt", 5),
        static_opt_at_8=fig.accuracy_at("static-opt", 8),
        dynamic_at_0=fig.accuracy_at("dynamic", 0),
        max_static_dynamic_gap=max(gaps),
        learned_beats_always8=beats,
        figure2=fig,
    )
    write_artifact("headline_numbers.txt", result.render())

    # shape assertions (generous: our substrate is a simulator)
    assert result.static_opt_at_0 > 0.35
    assert result.static_opt_at_5 > result.static_opt_at_0
    assert result.max_static_dynamic_gap < 0.20

    preds = np.full(len(dataset), 8, dtype=int)

    def tolerance_eval():
        return mean_tolerance_curve(preds, dataset.energy_matrix,
                                    range(0, 9), dataset.team_sizes)

    curve = benchmark(tolerance_eval)
    assert len(curve) == 9
