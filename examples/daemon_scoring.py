"""Score kernels over the wire through the persistent daemon.

Run with::

    python examples/daemon_scoring.py

This is the deployment shape the service layer is built for: train (or
fetch from the artifact cache) once, keep the model resident in a
:class:`repro.api.ScoringDaemon` behind a Unix socket, and let any
number of tools score kernels through lightweight
:class:`repro.api.ScoringClient` connections — no model load, no
simulator, just a socket round trip per request.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.api import ReproConfig, ScoringClient, ScoringDaemon, load_or_train
from repro.dataset.build import build_dataset
from repro.dataset.registry import get_kernel_spec

TRAIN_KERNELS = ("gemm", "atax", "fir", "stream_triad")
SCORE_KERNELS = ("trisolv", "histogram", "jacobi-1d")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="daemon_example_")
    try:
        # -- train once (artifact-cached across invocations) -----------
        specs = [get_kernel_spec(name) for name in TRAIN_KERNELS]
        dataset = build_dataset(
            "unit",
            specs=specs,
            cache_dir=os.path.join(workdir, "sim_cache"),
        )
        classifier, cache_hit = load_or_train(
            ReproConfig(profile="unit"),
            dataset=dataset,
            cache_dir=os.path.join(workdir, "models"),
        )
        source = "artifact cache" if cache_hit else "fresh training run"
        print(f"model ready ({source}, {len(dataset)} samples)\n")

        # -- serve it from a resident daemon ---------------------------
        socket_path = os.path.join(workdir, "repro.sock")
        with ScoringDaemon(classifier, socket_path=socket_path, workers=4):
            with ScoringClient(socket_path=socket_path) as client:
                info = client.info()
                print(
                    f"daemon serves a {info['model_family']!r} model "
                    f"({info['n_features']} features) on {socket_path}\n"
                )
                print("kernel        dtype   predicted min-energy cores")
                for name in SCORE_KERNELS:
                    cores = client.predict_kernel(name, size=1024)
                    print(f"{name:<12}  int32   {cores}")

                rows = dataset.matrix(classifier.feature_names_)
                predictions = client.predict_batch(rows)
                print(
                    f"\nbatch of {len(predictions)} rows scored over "
                    f"the wire in one round trip: {predictions}"
                )
        print("\ndaemon stopped cleanly; socket unlinked")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
