"""Kernel intermediate representation.

Kernels in the paper are C/OpenMP sources compiled to LLVM-IR; the static
features are statistics of that IR.  Here kernels are expressed directly
in a small structured IR: arrays, affine index expressions, counted
compute ops, loops, OpenMP-style ``parallel for`` regions, barriers and
critical sections.  The IR carries everything the static analysers
(RAW/AGG/MCA features) and the compiler (lowering to per-core instruction
streams) need.
"""

from repro.ir.expr import Affine, var
from repro.ir.nodes import (
    Array,
    Barrier,
    Compute,
    Critical,
    Kernel,
    Load,
    Loop,
    OpKind,
    ParallelFor,
    Sequential,
    SequentialFor,
    Store,
)
from repro.ir.builder import KernelBuilder
from repro.ir.validate import validate_kernel

__all__ = [
    "Affine",
    "var",
    "Array",
    "Barrier",
    "Compute",
    "Critical",
    "Kernel",
    "Load",
    "Loop",
    "OpKind",
    "ParallelFor",
    "Sequential",
    "SequentialFor",
    "Store",
    "KernelBuilder",
    "validate_kernel",
]
