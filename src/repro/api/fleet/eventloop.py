"""Event-loop transport for the fleet daemon: batch where it counts.

Thread-per-connection serving spends most of each request's budget on
thread hand-offs, buffered-IO layers and GIL churn — profiling the PR 3
daemon put the per-request overhead at ~70 µs against ~46 µs of actual
scoring work, which is why coalescing *only* the ``predict`` call
(see :class:`repro.api.fleet.MicroBatcher`) barely moves aggregate
throughput.  This module removes the overhead instead of amortizing a
slice of it:

* **one IO thread** owns every socket (a ``selectors`` loop): it
  accepts, reads, splits lines, and is the *only* writer, so there are
  no per-request thread wake-ups and no locks on the hot path;
* every select round drains all readable connections and gathers their
  eligible single-row ``{"features": ...}`` requests into one
  per-model ``predict_batch`` call (bounded by ``max_batch``) — the
  batching window is *adaptive*: it is exactly the time the previous
  round spent scoring and writing, so a lone client is never delayed
  and 16 concurrent clients coalesce to ~16-row batches automatically;
* everything else — kernel simulation, explicit batches, admin verbs,
  requests for models that are not resident yet (loading must never
  block the IO thread) — is handed to a small worker pool; completed
  frames come back through a queue and a self-pipe wake-up, and the
  loop writes them.

Outbound frames go through per-connection write buffers with proper
partial-write / ``EVENT_WRITE`` handling, so one slow reader cannot
stall the loop.  A connection that streams more than
:data:`~repro.api.protocol.MAX_REQUEST_BYTES` without a newline is
answered with a typed ``too_large`` frame and closed (the stream
cannot be resynchronized).
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.api.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_INVALID_JSON,
    ERROR_TOO_LARGE,
    MAX_REQUEST_BYTES,
    encode_frame,
    error_frame,
    ok_frame,
    request_id,
)
from repro.errors import FleetError, MLError

#: bytes read per ``recv`` on a readable connection.
RECV_BYTES = 262144


def _prediction_frame(req_id, prediction: int) -> str:
    """An encoded single-prediction success frame.

    Byte-identical to ``encode_frame(ok_frame(...))`` but skips the
    dict build and ``json.dumps`` for the int/absent request ids every
    sane client sends — a few µs per row that matter at tens of
    thousands of rows per second.
    """
    if req_id is None:
        return '{"ok": true, "prediction": %d}\n' % prediction
    if type(req_id) is int:
        return '{"ok": true, "id": %d, "prediction": %d}\n' % (
            req_id, prediction)
    return encode_frame(ok_frame({"prediction": prediction}, req_id))


class _Connection:
    """Per-socket state owned by the loop thread (no locking needed)."""

    __slots__ = ("sock", "rbuf", "wbuf", "closed", "overflowed",
                 "want_write")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        self.closed = False
        self.overflowed = False
        self.want_write = False  # EVENT_WRITE interest is registered


class FleetEventLoop:
    """Serve a :class:`repro.api.fleet.ModelFleet` from one IO thread.

    *listener* is a bound, listening socket whose lifetime belongs to
    the caller (:class:`repro.api.daemon.ScoringDaemon`); the loop owns
    every accepted connection.  *workers* sizes the slow-path pool,
    *max_batch* bounds rows per coalesced ``predict_batch`` call.
    """

    def __init__(self, fleet, listener: socket.socket,
                 workers: int = 4, max_batch: int = 64) -> None:
        self.fleet = fleet
        self.listener = listener
        self.max_batch = max(1, int(max_batch))
        self._workers = max(1, int(workers))
        self._stopping = threading.Event()
        self._default_classifier = None  # resolved at start()
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._completions: deque = deque()  # (conn, encoded-frame str)
        self._lock = threading.Lock()       # completions + counters
        self._requests_served = 0
        self._connections_served = 0
        self._active = 0
        self._fast_rows = 0
        self._fast_batches = 0
        self._largest_fast_batch = 0
        self._slow_requests = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FleetEventLoop":
        self.listener.setblocking(False)
        # the default model is pinned (the pool can never evict it), so
        # one lookup outlives the loop — the per-request pool lock and
        # LRU touch are reserved for requests that name a model
        self._default_classifier = self.fleet.pool.peek(None)
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-slow")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-ioloop", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stopping.set()
        self._wake()
        self._thread.join(timeout)
        self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"\0")
        except (OSError, ValueError):
            pass  # pipe full (a wake-up is already pending) or closed

    def stats(self) -> dict:
        with self._lock:
            fast_rows, fast_batches = self._fast_rows, self._fast_batches
            return {
                "requests_served": self._requests_served,
                "connections_served": self._connections_served,
                "active_connections": self._active,
                "fast_rows": fast_rows,
                "fast_batches": fast_batches,
                "mean_fast_batch": (round(fast_rows / fast_batches, 2)
                                    if fast_batches else 0.0),
                "largest_fast_batch": self._largest_fast_batch,
                "slow_requests": self._slow_requests,
                "max_batch": self.max_batch,
            }

    # -- the loop ----------------------------------------------------------

    def _run(self) -> None:
        sel = selectors.DefaultSelector()
        sel.register(self.listener, selectors.EVENT_READ, None)
        sel.register(self._wake_r, selectors.EVENT_READ, None)
        self._conns: set = set()
        try:
            while not self._stopping.is_set():
                fast: list = []
                events = sel.select(timeout=0.5)
                if self._stopping.is_set():
                    break
                self._dispatch(events, sel, fast)
                # greedy top-up: whatever arrived while this round was
                # being read joins the same batch — but never wait
                while fast and len(fast) < self.max_batch:
                    more = sel.select(timeout=0)
                    if not more:
                        break
                    self._dispatch(more, sel, fast)
                self._drain_completions(sel)
                while fast:
                    chunk, fast = fast[:self.max_batch], \
                        fast[self.max_batch:]
                    self._execute_fast(chunk, sel)
        finally:
            for conn in list(self._conns):
                self._close(conn, sel)
            try:
                sel.unregister(self.listener)
            except (KeyError, ValueError):
                pass
            sel.close()

    def _dispatch(self, events, sel, fast) -> None:
        for key, mask in events:
            if key.fileobj is self.listener:
                self._accept(sel)
            elif key.fileobj == self._wake_r:
                try:
                    os.read(self._wake_r, 4096)
                except OSError:
                    pass
            else:
                conn = key.data
                if mask & selectors.EVENT_WRITE:
                    self._flush(conn, sel)
                if mask & selectors.EVENT_READ and not conn.closed:
                    self._read(conn, sel, fast)

    def _accept(self, sel) -> None:
        while True:
            try:
                sock, _ = self.listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed under us (stop())
            sock.setblocking(False)
            conn = _Connection(sock)
            self._conns.add(conn)
            sel.register(sock, selectors.EVENT_READ, conn)
            with self._lock:
                self._connections_served += 1
                self._active = len(self._conns)

    def _close(self, conn, sel) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._conns.discard(conn)
        try:
            sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        with self._lock:
            self._active = len(self._conns)

    def _read(self, conn, sel, fast) -> None:
        try:
            data = conn.sock.recv(RECV_BYTES)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if not data:
            self._close(conn, sel)
            return
        conn.rbuf += data
        while True:
            idx = conn.rbuf.find(b"\n")
            if idx < 0:
                break
            raw = bytes(conn.rbuf[:idx])
            del conn.rbuf[:idx + 1]
            self._route(conn, raw, sel, fast)
        # inline answers (decode/validation error frames) don't pass
        # through _execute_fast or the completion queue: flush them now
        self._flush(conn, sel)
        if len(conn.rbuf) > MAX_REQUEST_BYTES and not conn.overflowed:
            # a newline-less flood: answer once, then drop the stream
            # (it cannot be resynchronized to a line boundary)
            conn.overflowed = True
            self._stage(conn, encode_frame(error_frame(
                ERROR_TOO_LARGE,
                f"request line exceeds {MAX_REQUEST_BYTES} bytes "
                f"without a newline; closing the connection")), sel)
            self._flush(conn, sel)
            self._close(conn, sel)

    # -- request routing ---------------------------------------------------

    def _route(self, conn, raw: bytes, sel, fast) -> None:
        # inlined decode_request: json.loads accepts the raw bytes
        # directly, skipping a per-line utf-8 decode + strip copy (the
        # frames produced stay identical to the protocol module's)
        if len(raw) > MAX_REQUEST_BYTES:
            self._stage(conn, encode_frame(error_frame(
                ERROR_TOO_LARGE,
                f"request line is {len(raw)} bytes; the protocol "
                f"accepts at most {MAX_REQUEST_BYTES}")), sel)
            return
        if not raw.strip():
            return
        try:
            request = json.loads(raw)
        except ValueError as exc:
            self._stage(conn, encode_frame(error_frame(
                ERROR_INVALID_JSON, f"invalid JSON: {exc}")), sel)
            return
        if isinstance(request, dict) and "features" in request \
                and "rows" not in request and "kernel" not in request \
                and request.get("cmd") is None:
            req_id = request.get("id")
            spec = request.get("model")
            if spec is None:
                classifier = self._default_classifier
            else:
                try:
                    classifier = self.fleet.pool.peek(spec)
                except FleetError as exc:
                    self._stage(conn, encode_frame(error_frame(
                        ERROR_BAD_REQUEST, str(exc), req_id)), sel)
                    return
            if classifier is not None:
                features = request["features"]
                # JSON already delivered plain numbers: a well-shaped
                # list skips the generic _vectorize re-conversion (the
                # batch np.asarray coerces to the identical float64s;
                # non-numeric elements surface through the fallback in
                # _execute_fast as typed bad_request frames)
                if (type(features) is list
                        and len(features) == len(
                            classifier.feature_names_)):
                    vector = features
                else:
                    try:
                        vector = classifier._vectorize(features)
                    except (MLError, TypeError, ValueError) as exc:
                        self._stage(conn, encode_frame(error_frame(
                            ERROR_BAD_REQUEST, str(exc), req_id)), sel)
                        return
                fast.append((conn, req_id, classifier, vector))
                return
            # not resident: the slow path loads it without blocking us
        self._submit_slow(conn, request)

    def _submit_slow(self, conn, request) -> None:
        with self._lock:
            self._slow_requests += 1

        def run() -> None:
            try:
                frame = self.fleet.handle_request(request)
            except Exception as exc:  # defensive: router answers errors
                frame = error_frame(ERROR_INTERNAL,
                                    f"internal error: {exc}",
                                    request_id(request))
            try:
                encoded = encode_frame(frame)
            except (TypeError, ValueError) as exc:
                encoded = encode_frame(error_frame(
                    ERROR_INTERNAL, f"internal error: {exc}",
                    request_id(request)))
            with self._lock:
                self._completions.append((conn, encoded))
            self._wake()

        self._executor.submit(run)

    def _drain_completions(self, sel) -> None:
        while True:
            with self._lock:
                if not self._completions:
                    return
                conn, encoded = self._completions.popleft()
            if not conn.closed:
                self._stage(conn, encoded, sel)
                self._flush(conn, sel)

    def _execute_fast(self, chunk, sel) -> None:
        groups: dict = {}
        for item in chunk:
            groups.setdefault(id(item[2]), []).append(item)
        for items in groups.values():
            classifier = items[0][2]
            try:
                X = np.asarray([vector for _, _, _, vector in items],
                               dtype=np.float64)
                predictions = classifier.predict_batch(X)
            except Exception:
                # mirror the MicroBatcher: a poisoned group falls back
                # to per-row scoring so one bad row cannot fail others
                # (and a non-numeric row gets its typed frame here)
                for conn, req_id, clf, vector in items:
                    try:
                        prediction = clf.predict(vector)
                    except (MLError, TypeError, ValueError) as exc:
                        self._stage(conn, encode_frame(error_frame(
                            ERROR_BAD_REQUEST, str(exc), req_id)), sel)
                    except Exception as exc:
                        self._stage(conn, encode_frame(error_frame(
                            ERROR_INTERNAL, f"internal error: {exc}",
                            req_id)), sel)
                    else:
                        self._stage(conn, encode_frame(ok_frame(
                            {"prediction": int(prediction)}, req_id)),
                            sel)
                continue
            for (conn, req_id, _, _), prediction in zip(
                    items, predictions.tolist()):
                self._stage(conn, _prediction_frame(req_id,
                                                    int(prediction)),
                            sel)
        touched = {item[0] for item in chunk}
        for conn in touched:
            self._flush(conn, sel)
        self._fast_rows += len(chunk)
        self._fast_batches += 1
        self._largest_fast_batch = max(self._largest_fast_batch,
                                       len(chunk))

    # -- writing -----------------------------------------------------------

    def _stage(self, conn, encoded: str, sel) -> None:
        # loop-thread only (completions are staged by the loop after
        # draining the queue), so the counter needs no lock
        if conn.closed:
            return
        conn.wbuf += encoded.encode("utf-8")
        self._requests_served += 1

    def _flush(self, conn, sel) -> None:
        if conn.closed or not conn.wbuf:
            return
        try:
            sent = conn.sock.send(conn.wbuf)
        except (BlockingIOError, InterruptedError):
            sent = 0
        except OSError:
            self._close(conn, sel)
            return
        if sent:
            del conn.wbuf[:sent]
        # toggle EVENT_WRITE interest only on actual transitions — the
        # common full-write case costs zero selector calls per row
        if conn.wbuf and not conn.want_write:
            conn.want_write = True
            try:
                sel.modify(conn.sock,
                           selectors.EVENT_READ | selectors.EVENT_WRITE,
                           conn)
            except (KeyError, ValueError):
                pass  # raced with close
        elif not conn.wbuf and conn.want_write:
            conn.want_write = False
            try:
                sel.modify(conn.sock, selectors.EVENT_READ, conn)
            except (KeyError, ValueError):
                pass
