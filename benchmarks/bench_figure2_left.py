"""E1 — Figure 2 (left): accuracy vs energy tolerance.

Regenerates the five series of the paper's left panel (static-agg,
static-opt, dynamic, dynamic-opt, always-8) and benchmarks the cost of
one cross-validated evaluation of the static-agg tree.
"""

from repro.features.sets import feature_names
from repro.ml.metrics import mean_tolerance_curve
from repro.ml.model_selection import cross_val_predict
from repro.ml.tree import DecisionTreeClassifier

from benchmarks.conftest import write_artifact


def test_figure2_left_regeneration(dataset, figure2_left, benchmark):
    write_artifact("figure2_left.txt", figure2_left.render())

    # paper-shape checks: learned models dominate always-8 and improve
    # with tolerance
    always8 = figure2_left.series["always-8"]
    for name in ("static-agg", "static-opt", "dynamic", "dynamic-opt"):
        curve = figure2_left.series[name]
        assert curve[0] >= always8[0] - 1e-9
        assert curve[-1] >= curve[0]

    X = dataset.matrix(feature_names("static-agg"))
    y = dataset.labels

    def one_cv_evaluation():
        preds, _ = cross_val_predict(
            lambda: DecisionTreeClassifier(random_state=0), X, y,
            n_splits=10, seed=0)
        return mean_tolerance_curve(preds, dataset.energy_matrix,
                                    range(0, 9), dataset.team_sizes)

    curve = benchmark(one_cv_evaluation)
    assert len(curve) == 9
