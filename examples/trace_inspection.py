"""Trace inspection: the GVSOC-style trace pipeline end to end.

Run with::

    python examples/trace_inspection.py

Simulates a small kernel with tracing enabled, shows raw trace lines,
re-parses them with the regex TraceAnalyser into the PULPListeners
hierarchy (8 core listeners, 16 L1-bank listeners, 32 L2-bank
listeners), and derives the paper's Table-III dynamic features and the
energy from the *reconstructed* counters.
"""

from repro.dataset.registry import get_kernel_spec
from repro.energy.accounting import compute_energy
from repro.energy.model import EnergyModel
from repro.features.dynamic import extract_dynamic
from repro.ir.types import DType
from repro.sim.engine import simulate
from repro.trace import TraceAnalyser, PULPListeners, TraceWriter


def main() -> None:
    kernel = get_kernel_spec("stream_triad").build(DType.FP32, 512)
    writer = TraceWriter()
    engine_counters = simulate(kernel, team_size=4, trace=writer)

    print(f"captured {len(writer.lines)} trace events; first 15:")
    for line in writer.lines[:15]:
        print("  " + line)
    print("  ...")

    listeners = PULPListeners()
    analyser = TraceAnalyser(listeners)
    n_events = analyser.process(writer.lines)
    print(f"\nanalyser dispatched {n_events} events to "
          f"{sum(1 for _ in listeners.all_listeners())} listeners")

    rebuilt = listeners.to_counters()
    assert rebuilt.as_dict() == engine_counters.as_dict(), \
        "trace reconstruction must match the engine exactly"
    print("reconstructed counters match the engine exactly\n")

    print("dynamic features (paper Table III) at 4 cores:")
    for name, value in extract_dynamic(rebuilt).items():
        print(f"  {name:<13} {value:>12.3f}")

    energy = compute_energy(rebuilt, EnergyModel.paper_table1())
    print(f"\nenergy from the trace: {energy.total / 1e6:.3f} nJ "
          f"over {rebuilt.cycles} cycles")


if __name__ == "__main__":
    main()
