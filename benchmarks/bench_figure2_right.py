"""E2 — Figure 2 (right): static feature-set exploration.

Regenerates the four static series (static-raw+mca, static-agg,
static-agg+mca, static-opt) and benchmarks a tree fit on the richest
static set.
"""

from repro.features.sets import feature_names
from repro.ml.tree import DecisionTreeClassifier

from benchmarks.conftest import write_artifact


def test_figure2_right_regeneration(dataset, figure2_right, benchmark):
    write_artifact("figure2_right.txt", figure2_right.render())

    for curve in figure2_right.series.values():
        assert curve == sorted(curve)  # tolerance-monotone

    X = dataset.matrix(feature_names("static-agg+mca"))
    y = dataset.labels

    def fit_static_tree():
        return DecisionTreeClassifier(random_state=0).fit(X, y)

    tree = benchmark(fit_static_tree)
    assert tree.n_leaves() > 1
