"""CLI tests for the dataset-free subcommands."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_kernels(self, capsys):
        assert main(["list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "custom" in out
        assert len(out.strip().splitlines()) == 59

    def test_energy_model(self, capsys):
        assert main(["energy-model"]) == 0
        out = capsys.readouterr().out
        assert "Processing Element" in out
        assert "1212" in out  # the NOP energy

    def test_simulate(self, capsys):
        assert main(["simulate", "stream_triad", "--dtype", "fp32",
                     "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "<- minimum" in out
        assert "TOTAL" in out

    def test_mca(self, capsys):
        assert main(["mca", "gemm", "--size", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Reverse block throughput" in out

    def test_unknown_kernel_errors(self):
        with pytest.raises(Exception):
            main(["simulate", "bogus_kernel"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
