"""CLI tests for the dataset-free subcommands and the api commands."""

import io
import json
import sys

import pytest

from repro.cli import main
from repro.dataset.registry import all_kernel_specs
from repro.version import CODE_VERSION, __version__


class TestCli:
    def test_list_kernels(self, capsys):
        assert main(["list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "custom" in out
        assert len(out.strip().splitlines()) == 59

    def test_energy_model(self, capsys):
        assert main(["energy-model"]) == 0
        out = capsys.readouterr().out
        assert "Processing Element" in out
        assert "1212" in out  # the NOP energy

    def test_simulate(self, capsys):
        assert main(["simulate", "stream_triad", "--dtype", "fp32",
                     "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "<- minimum" in out
        assert "TOTAL" in out

    def test_mca(self, capsys):
        assert main(["mca", "gemm", "--size", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Reverse block throughput" in out

    def test_unknown_kernel_errors(self):
        with pytest.raises(Exception):
            main(["simulate", "bogus_kernel"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out
        assert f"code version {CODE_VERSION}" in out

    def test_list_kernels_help_count_computed(self, capsys):
        """The help text derives the kernel count from the registry."""
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert f"list the {len(all_kernel_specs())} dataset kernels" in out


class TestCliApi:
    """train / predict / serve as thin clients of repro.api."""

    @pytest.fixture()
    def artifact(self, tmp_path, monkeypatch, tiny_dataset, capsys):
        monkeypatch.setattr("repro.api.classifier.build_dataset",
                            lambda *args, **kwargs: tiny_dataset)
        path = str(tmp_path / "model.json")
        assert main(["train", "--output", path]) == 0
        capsys.readouterr()
        return path

    def test_train_writes_artifact(self, artifact, capsys):
        with open(artifact) as handle:
            payload = json.load(handle)
        assert payload["code_version"] == CODE_VERSION
        assert payload["model_family"] == "tree"

    def test_predict_from_artifact(self, artifact, capsys):
        assert main(["predict", "gemm", "--model", artifact,
                     "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "predicted minimum-energy team size" in out

    def test_serve_from_artifact(self, artifact, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO('{"kernel": "gemm", "size": 512, "id": 1}\n'))
        assert main(["serve", "--model", artifact]) == 0
        out = capsys.readouterr().out
        response = json.loads(out.strip().splitlines()[0])
        assert response["ok"] is True
        assert response["prediction"] in range(1, 9)
