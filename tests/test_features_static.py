"""Static feature tests: counts, RAW, AGG, and static/dynamic agreement."""

import pytest

from repro.features import extract_agg, extract_raw
from repro.features.static_agg import agg_from_raw
from repro.features.static_counts import StaticCounts, summarize_kernel
from repro.ir import KernelBuilder, Load, Loop, ParallelFor
from repro.ir.expr import var
from repro.ir.types import DType
from repro.sim.engine import simulate
from tests.conftest import make_axpy, make_matmul


class TestStaticCounts:
    def test_rectangular_nest_counts(self):
        kernel = make_matmul(DType.INT32, 768)  # n = 8
        n = 8
        summary = summarize_kernel(kernel)
        total = summary.total
        # loads: 2 per innermost iteration
        assert total.l1_loads == 2 * n ** 3
        assert total.l1_stores == n ** 2
        # mul_add: 2 alu-class ops per innermost iteration, plus loop
        # overhead (setup 2 + induction 1 per iteration, at 3 levels)
        assert total.jump == n ** 3 + n ** 2 + n
        assert total.iterations == n ** 3 + n ** 2 + n

    def test_triangular_nest_counts(self):
        b = KernelBuilder("tri", DType.INT32, 512)
        b.array("A", 64)
        i, j = var("i"), var("j")
        b.parallel_for("i", 0, 8, [
            Loop("j", 0, i, [Load("A", j)]),
        ])
        summary = summarize_kernel(b.build())
        # sum of trips 0..7 = 28 loads
        assert summary.total.l1_loads == 28

    def test_sequential_for_instances_counted(self):
        b = KernelBuilder("sf", DType.INT32, 512)
        b.array("A", 64)
        region = ParallelFor("j", 0, var("t") + 1, (Load("A", var("j")),))
        b.sequential_for("t", 0, 4, [region])
        summary = summarize_kernel(b.build())
        assert len(summary.region_trips) == 4
        assert summary.region_trips == [1, 2, 3, 4]
        assert summary.total.l1_loads == 10

    def test_tcdm_counts_lock_traffic(self):
        counts = StaticCounts(l1_loads=3, l1_stores=2, lock_ops=1)
        assert counts.tcdm == 7  # lock probe + unlock store


class TestRawFeatures:
    def test_names(self):
        raw = extract_raw(make_axpy(DType.INT32, 512))
        assert set(raw) == {"op", "tcdm", "transfer", "avgws"}

    def test_transfer_is_array_bytes(self):
        kernel = make_axpy(DType.INT32, 512)
        assert extract_raw(kernel)["transfer"] == kernel.total_array_bytes

    def test_avgws_is_parallel_trip(self):
        kernel = make_axpy(DType.INT32, 512)
        n = kernel.array("x").length
        assert extract_raw(kernel)["avgws"] == n

    def test_dtype_changes_no_counts(self):
        # int and fp variants have identical structure -> identical RAW
        raw_i = extract_raw(make_axpy(DType.INT32, 512))
        raw_f = extract_raw(make_axpy(DType.FP32, 512))
        assert raw_i == raw_f


class TestAggFeatures:
    def test_formulas(self):
        raw = {"op": 10.0, "tcdm": 5.0, "transfer": 300.0, "avgws": 7.0}
        agg = agg_from_raw(raw)
        assert agg["F1"] == pytest.approx(300.0 / 15.0)
        assert agg["F3"] == 7.0
        assert agg["F4"] == pytest.approx(2.0)

    def test_zero_denominators_safe(self):
        agg = agg_from_raw({"op": 0.0, "tcdm": 0.0, "transfer": 5.0,
                            "avgws": 1.0})
        assert agg["F1"] == 0.0 and agg["F4"] == 0.0

    def test_extract_agg_matches_raw_pipeline(self):
        kernel = make_matmul(DType.FP32, 768)
        assert extract_agg(kernel) == agg_from_raw(extract_raw(kernel))


class TestStaticDynamicConsistency:
    """Static trip-weighted counts must equal dynamic counts for the
    kernel body (runtime fork/join overhead accounts for the rest)."""

    @pytest.mark.parametrize("team", [1, 4])
    def test_memory_counts_match_simulation(self, team):
        kernel = make_matmul(DType.INT32, 768)
        summary = summarize_kernel(kernel)
        counters = simulate(kernel, team)
        dyn_l1 = sum(c.l1_ops for c in counters.cores)
        assert dyn_l1 == summary.total.tcdm

    def test_fp_counts_match_simulation(self):
        kernel = make_matmul(DType.FP32, 768)
        summary = summarize_kernel(kernel)
        counters = simulate(kernel, 8)
        dyn_fp = sum(c.fp_ops + c.fpdiv_ops for c in counters.cores)
        assert dyn_fp == summary.total.fp + summary.total.fpdiv

    def test_jump_counts_match_simulation(self):
        kernel = make_matmul(DType.INT32, 768)
        summary = summarize_kernel(kernel)
        counters = simulate(kernel, 2)
        dyn_jumps = sum(c.jump_ops for c in counters.cores)
        assert dyn_jumps == summary.total.jump
