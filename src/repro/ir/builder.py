"""Fluent construction helper used by the dataset suites.

The builder keeps kernel definitions close to the C they transcribe::

    b = KernelBuilder("gemm", dtype, size_bytes)
    n = b.square_side(3)                      # three n*n matrices
    A, B, C = b.array("A", n * n), b.array("B", n * n), b.array("C", n * n)
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Store(C.name, i * n + j),
            Loop("k", 0, n, [
                Load(A.name, i * n + k),
                Load(B.name, k * n + j),
                b.mul_add(),
            ]),
        ]),
    ])
    kernel = b.build()

``b.op(...)``/``b.mul_add()`` pick the ALU or FP op kind from the kernel's
data type, which is how the paper's "parametric concerning the type of
data" kernels behave.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import IRError
from repro.ir.nodes import (
    Array,
    Barrier,
    Compute,
    Kernel,
    OpKind,
    ParallelFor,
    Sequential,
    SequentialFor,
)
from repro.ir.types import DType
from repro.ir.validate import validate_kernel


class KernelBuilder:
    """Accumulates arrays and top-level regions, then builds a Kernel."""

    def __init__(self, name: str, dtype: DType, size_bytes: int,
                 suite: str = "custom") -> None:
        if size_bytes <= 0:
            raise IRError(f"size_bytes must be positive, got {size_bytes}")
        self.name = name
        self.dtype = dtype
        self.size_bytes = size_bytes
        self.suite = suite
        self._arrays: list[Array] = []
        self._body: list = []

    # -- sizing helpers ------------------------------------------------------

    @property
    def elements(self) -> int:
        """Total payload element budget implied by ``size_bytes``."""
        return max(1, self.size_bytes // self.dtype.size_bytes)

    def split_elements(self, n_arrays: int) -> int:
        """Element count per array when the payload is split *n_arrays* ways."""
        return max(1, self.elements // n_arrays)

    def square_side(self, n_matrices: int) -> int:
        """Side of square matrices such that *n_matrices* fill the payload."""
        return max(2, math.isqrt(self.elements // n_matrices))

    # -- declaration ---------------------------------------------------------

    def array(self, name: str, length: int, space: str = "l1") -> Array:
        arr = Array(name, length, self.dtype, space)
        self._arrays.append(arr)
        return arr

    # -- op constructors parametric in dtype ----------------------------------

    def op(self, count: int = 1) -> Compute:
        """*count* arithmetic ops of the kernel's natural kind."""
        kind = OpKind.FP if self.dtype.is_float else OpKind.ALU
        return Compute(kind, count)

    def mul_add(self) -> Compute:
        """A multiply-accumulate: two arithmetic ops of the natural kind."""
        return self.op(2)

    def div(self, count: int = 1) -> Compute:
        kind = OpKind.FPDIV if self.dtype.is_float else OpKind.DIV
        return Compute(kind, count)

    def int_op(self, count: int = 1) -> Compute:
        """Address/index arithmetic: always integer regardless of dtype."""
        return Compute(OpKind.ALU, count)

    # -- region constructors ---------------------------------------------------

    def parallel_for(self, loop_var: str, lower: int, upper: int,
                     body: Sequence, nowait: bool = False) -> None:
        self._body.append(ParallelFor(loop_var, lower, upper, tuple(body),
                                      nowait=nowait))

    def sequential(self, body: Sequence) -> None:
        self._body.append(Sequential(tuple(body)))

    def sequential_for(self, loop_var: str, lower, upper,
                       regions: Sequence) -> None:
        """A serial outer loop whose body is a list of regions
        (:class:`ParallelFor` / :class:`Sequential` instances built by
        the caller, typically referencing *loop_var* symbolically)."""
        self._body.append(SequentialFor(loop_var, lower, upper,
                                        tuple(regions)))

    def barrier(self) -> None:
        self._body.append(Barrier())

    def add_region(self, region) -> None:
        """Append a region node built directly (ParallelFor, Sequential,
        SequentialFor or Barrier)."""
        if not isinstance(region, (ParallelFor, Sequential, SequentialFor,
                                   Barrier)):
            raise IRError(f"{type(region).__name__} is not a region")
        self._body.append(region)

    # -- finalisation ----------------------------------------------------------

    def build(self, **meta: str) -> Kernel:
        merged = {"suite": self.suite}
        merged.update(meta)
        kernel = Kernel(
            name=self.name,
            dtype=self.dtype,
            size_bytes=self.size_bytes,
            arrays=tuple(self._arrays),
            body=tuple(self._body),
            meta=merged,
        )
        validate_kernel(kernel)
        return kernel
