"""Runnable example scripts (importable for the smoke tests)."""
