"""Energy exploration: how code patterns move the optimal core count.

Run with::

    python examples/energy_exploration.py

Compares pairs of kernels from the Custom suite that isolate one
mechanism each (TCDM bank conflicts, FPU sharing, lock serialisation,
fork/join overhead) and prints where the energy optimum lands — the
trade-offs §III of the paper builds its dataset around.
"""

from repro.dataset.registry import get_kernel_spec
from repro.ir.types import DType
from repro.sim.results import minimum_energy_label, sweep_cores

PAIRS = [
    ("TCDM pressure", [("bank_friendly", DType.INT32),
                       ("bank_hammer", DType.INT32)]),
    ("FPU sharing", [("fpu_saturate", DType.INT32),
                     ("fpu_saturate", DType.FP32)]),
    ("synchronisation", [("stream_triad", DType.INT32),
                         ("critical_update", DType.INT32),
                         ("barrier_storm", DType.INT32)]),
    ("serial fraction", [("compute_dense", DType.INT32),
                         ("seq_then_par", DType.INT32)]),
    ("L2 behaviour", [("l2_stream", DType.FP32),
                      ("l2_pingpong", DType.FP32)]),
]

SIZE = 4096


def main() -> None:
    for topic, kernels in PAIRS:
        print(f"=== {topic} " + "=" * max(0, 56 - len(topic)))
        for name, dtype in kernels:
            kernel = get_kernel_spec(name).build(dtype, SIZE)
            results = sweep_cores(kernel)
            energies = [r.total_energy_fj for r in results]
            best = minimum_energy_label(results)
            norm = min(energies)
            curve = " ".join(f"{e / norm:5.2f}" for e in energies)
            print(f"{name:>18} ({dtype.value:5s})  E/Emin per core "
                  f"1..8: {curve}   -> optimum {best}")
        print()


if __name__ == "__main__":
    main()
