"""Pluggable wire codecs: JSON lines (default) + length-prefixed binary.

PR 5 funnelled every transport through one :class:`RequestEngine`; this
module extracts the *wire format* the same way, so the engine decodes
and encodes through a per-connection :class:`WireSession` instead of
hardcoding JSON framing.  Two codecs are registered:

* ``json`` — the compatibility default.  One JSON object per line, the
  exact bytes the protocol has spoken since PR 3.  Clients that never
  negotiate keep receiving byte-identical frames.
* ``binary-v1`` — length-prefixed packed frames for the hot verbs::

      u32 payload_len (LE) | u8 frame_type | payload

  ====== ============ ==============================================
  type   name         payload
  ====== ============ ==============================================
  0x00   JSON         one UTF-8 JSON object (any verb, any error)
  0x01   PREDICT      i64 id | u32 n | f32[n] features
  0x02   BATCH        i64 id | u32 rows | u32 cols | f32[rows*cols]
  0x81   PREDICTION   i64 id | i32 prediction
  0x82   PREDICTIONS  i64 id | u32 n | i32[n] predictions
  ====== ============ ==============================================

  All integers are little-endian; an ``id`` of ``-2**63`` means "no
  request id".  Feature payloads are contiguous float32 arrays — a
  batch row never materializes a per-row Python list server-side.
  Anything that is not a hot-path predict travels as an embedded JSON
  frame (0x00), so admin verbs, model routing and every error shape
  work identically under both codecs.
* ``binary-v2`` — a strict superset of ``binary-v1`` adding multi-row
  *streaming* frames for the pipelined hot path::

  ====== =================== =========================================
  type   name                payload
  ====== =================== =========================================
  0x03   PREDICT_STREAM      u32 count | u32 cols | i64 ids[count]
                             | f32[count*cols] rows
  0x83   PREDICTIONS_STREAM  u32 count | i64 ids[count]
                             | i32 preds[count]
  ====== =================== =========================================

  A PREDICT_STREAM packs *count* **independent** single-row requests
  (one id + one f32 row each) into one frame, so a pipelined client
  flushes its whole in-flight window with one send instead of one
  frame (and one syscall) per row.  The server decodes it to a
  :class:`PredictStream` — two ``np.frombuffer`` views, never Python
  floats — and answers each coalesced chunk with packed
  PREDICTIONS_STREAM frames scatter-gathered by request id.  Rows that
  fail validation are answered individually as embedded JSON error
  frames; the response streams carry only successes, so every id is
  answered exactly once either way.  Stream requests always score the
  connection's *default* model — model-routed rows keep using the
  per-request v1 frames, exactly like v1's PREDICT fast path.

Codecs are negotiated per connection: a client opens with the JSON
request ``{"cmd": "hello", "codecs": ["binary-v1"]}`` and the server
answers ``{"ok": true, "codec": "<chosen>"}`` *in the old codec*, then
both sides switch.  Unknown codec names are skipped — a hello offering
only unknown codecs falls back to ``json`` — and clients that never
send hello are never switched.

Size guards mirror the JSON protocol: a binary frame whose declared
payload length exceeds ``MAX_REQUEST_BYTES`` draws a typed
``too_large`` frame and a teardown (the stream cannot be trusted), and
a malformed frame inside a negotiated binary stream draws a typed
``invalid_frame`` error followed by a clean teardown — unlike a JSON
line, a corrupted length-prefixed stream has no newline to resync on.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.api.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INVALID_FRAME,
    ERROR_INVALID_JSON,
    ERROR_TOO_LARGE,
    MAX_REQUEST_BYTES,
    encode_frame,
    error_frame,
    ok_frame,
    request_id,
)

CODEC_JSON = "json"
CODEC_BINARY = "binary-v1"
CODEC_BINARY_V2 = "binary-v2"

#: codecs a server offers by default, in server preference order.  The
#: JSON codec is always the pre-negotiation state and the fallback.
DEFAULT_CODECS = (CODEC_BINARY_V2, CODEC_BINARY, CODEC_JSON)

#: binary frame header: u32 payload length (LE) + u8 frame type.
HEADER = struct.Struct("<IB")
_U32 = struct.Struct("<I")

FRAME_JSON = 0x00
FRAME_PREDICT = 0x01
FRAME_BATCH = 0x02
FRAME_PREDICT_STREAM = 0x03
FRAME_PREDICTION = 0x81
FRAME_PREDICTIONS = 0x82
FRAME_PREDICTIONS_STREAM = 0x83

_PREDICT_HEAD = struct.Struct("<qI")    # id, n_features
_BATCH_HEAD = struct.Struct("<qII")     # id, rows, cols
_PREDICTION_FULL = struct.Struct("<IBqi")  # header + id + prediction
_PREDICTION_BODY = struct.Struct("<qi")
_PREDICTIONS_HEAD = struct.Struct("<qI")   # id, n
_STREAM_HEAD = struct.Struct("<II")        # count, cols
_PSTREAM_HEAD = struct.Struct("<I")        # count

#: the i64 sentinel meaning "this request carried no id".
NO_ID = -(2 ** 63)

_I64_MIN, _I64_MAX = -(2 ** 63), 2 ** 63 - 1
_I32_MIN, _I32_MAX = -(2 ** 31), 2 ** 31 - 1


# -- the JSON shell (shared verbatim by transport.py) ----------------------


def prediction_frame(req_id, prediction: int) -> str:
    """An encoded single-prediction success frame.

    Byte-identical to ``encode_frame(ok_frame(...))`` but skips the
    dict build and ``json.dumps`` for the int/absent request ids every
    sane client sends — a few µs per row that matter at tens of
    thousands of rows per second.
    """
    if req_id is None:
        return '{"ok": true, "prediction": %d}\n' % prediction
    if type(req_id) is int:
        return '{"ok": true, "id": %d, "prediction": %d}\n' % (
            req_id, prediction)
    return encode_frame(ok_frame({"prediction": prediction}, req_id))


def too_large_frame(n_bytes: int) -> dict:
    return error_frame(
        ERROR_TOO_LARGE,
        f"request line is {n_bytes} bytes; the protocol "
        f"accepts at most {MAX_REQUEST_BYTES}")


def flood_frame() -> dict:
    return error_frame(
        ERROR_TOO_LARGE,
        f"request line exceeds {MAX_REQUEST_BYTES} bytes "
        f"without a newline; closing the connection")


def decode_json_raw(raw: bytes):
    """Decode one raw byte line — THE framing shell of every socket path.

    Returns ``(request, None)`` on success, ``(None, error_frame)``
    for oversized or malformed lines and ``(None, None)`` for blank
    lines.  The bytes twin of :func:`repro.api.protocol.decode_request`
    (``json.loads`` accepts the bytes directly, skipping a per-line
    utf-8 decode + copy; the frames produced are byte-identical).
    """
    if len(raw) > MAX_REQUEST_BYTES:
        return None, too_large_frame(len(raw))
    raw = raw.strip()
    if not raw:
        return None, None
    try:
        return json.loads(raw), None
    except ValueError as exc:
        return None, error_frame(ERROR_INVALID_JSON,
                                 f"invalid JSON: {exc}")


def _json_safe(frame: dict) -> dict:
    """Re-list ndarray payload fields so json.dumps accepts the frame.

    The client builds ``rows``/``features`` as arrays under the binary
    codec; when a retry lands on a JSON-only server the same request
    dict must still encode.
    """
    out = None
    for key in ("rows", "features"):
        value = frame.get(key)
        if isinstance(value, np.ndarray):
            out = dict(frame) if out is None else out
            out[key] = value.tolist()
    return out if out is not None else frame


# -- codecs ----------------------------------------------------------------


class JsonCodec:
    """The compatibility codec: JSON lines, byte-identical to PR 5."""

    name = CODEC_JSON

    # server side
    def decode_request(self, raw: bytes):
        return decode_json_raw(raw)

    def encode_response(self, frame: dict) -> bytes:
        return encode_frame(frame).encode("utf-8")

    def encode_prediction(self, req_id, prediction: int) -> bytes:
        return prediction_frame(req_id, prediction).encode("utf-8")

    # client side
    def encode_request(self, frame: dict) -> bytes:
        return (json.dumps(_json_safe(frame)) + "\n").encode("utf-8")

    def decode_response(self, raw: bytes):
        return json.loads(raw)  # ValueError on garbage


class BinaryCodec:
    """Length-prefixed packed frames; JSON embedding for cold verbs."""

    name = CODEC_BINARY

    _SINGLE_KEYS = frozenset(("ok", "id", "prediction"))
    _BATCH_KEYS = frozenset(("ok", "id", "predictions"))

    # -- server side -------------------------------------------------------

    def decode_request(self, raw: bytes):
        """Decode one de-framed frame (type byte + payload).

        Hot-path frames decode straight into the request shapes the
        engine already understands: PREDICT yields a ``features`` list
        (fast-path eligible), BATCH yields ``rows`` as a contiguous
        float64 matrix — no per-row Python lists.
        """
        ftype = raw[0]
        payload = memoryview(raw)[1:]
        try:
            if ftype == FRAME_JSON:
                try:
                    return json.loads(bytes(payload)), None
                except ValueError as exc:
                    return None, error_frame(ERROR_INVALID_JSON,
                                             f"invalid JSON: {exc}")
            if ftype == FRAME_PREDICT:
                req_id, n = _PREDICT_HEAD.unpack_from(payload)
                if len(payload) != _PREDICT_HEAD.size + 4 * n:
                    raise ValueError(
                        f"PREDICT declares {n} features but carries "
                        f"{len(payload) - _PREDICT_HEAD.size} payload bytes")
                features = np.frombuffer(
                    payload, dtype="<f4", count=n,
                    offset=_PREDICT_HEAD.size).astype(np.float64).tolist()
                request: dict = {"features": features}
                if req_id != NO_ID:
                    request["id"] = req_id
                return request, None
            if ftype == FRAME_BATCH:
                req_id, rows, cols = _BATCH_HEAD.unpack_from(payload)
                if len(payload) != _BATCH_HEAD.size + 4 * rows * cols:
                    raise ValueError(
                        f"BATCH declares {rows}x{cols} but carries "
                        f"{len(payload) - _BATCH_HEAD.size} payload bytes")
                matrix = np.frombuffer(
                    payload, dtype="<f4",
                    offset=_BATCH_HEAD.size).astype(
                        np.float64).reshape(rows, cols)
                request = {"rows": matrix}
                if req_id != NO_ID:
                    request["id"] = req_id
                return request, None
        except (struct.error, ValueError) as exc:
            return None, error_frame(
                ERROR_INVALID_FRAME,
                f"malformed binary frame (type 0x{ftype:02x}): {exc}")
        return None, error_frame(
            ERROR_INVALID_FRAME,
            f"unknown binary frame type 0x{ftype:02x}")

    def encode_response(self, frame: dict) -> bytes:
        if frame.get("ok") is True:
            req_id = frame.get("id", NO_ID)
            if type(req_id) is int and _I64_MIN <= req_id <= _I64_MAX:
                keys = frame.keys()
                if "prediction" in frame and keys <= self._SINGLE_KEYS:
                    p = frame["prediction"]
                    if type(p) is int and _I32_MIN <= p <= _I32_MAX:
                        return _PREDICTION_FULL.pack(
                            _PREDICTION_BODY.size, FRAME_PREDICTION,
                            req_id, p)
                elif "predictions" in frame and keys <= self._BATCH_KEYS:
                    packed = self._pack_predictions(
                        req_id, frame["predictions"])
                    if packed is not None:
                        return packed
        return self._embed_json(frame)

    def encode_prediction(self, req_id, prediction: int) -> bytes:
        if req_id is None:
            req_id = NO_ID
        if (type(req_id) is int and _I64_MIN <= req_id <= _I64_MAX
                and _I32_MIN <= prediction <= _I32_MAX):
            return _PREDICTION_FULL.pack(_PREDICTION_BODY.size,
                                         FRAME_PREDICTION, req_id,
                                         prediction)
        if req_id == NO_ID:
            req_id = None
        return self._embed_json(ok_frame({"prediction": prediction},
                                         req_id))

    def _pack_predictions(self, req_id: int, predictions) -> bytes | None:
        if not isinstance(predictions, list):
            return None
        try:
            arr = np.asarray(predictions, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            return None
        if arr.ndim != 1 or (arr.size and (
                arr.max() > _I32_MAX or arr.min() < _I32_MIN)):
            return None
        body = arr.astype("<i4").tobytes()
        return (HEADER.pack(_PREDICTIONS_HEAD.size + len(body),
                            FRAME_PREDICTIONS)
                + _PREDICTIONS_HEAD.pack(req_id, arr.size) + body)

    def _embed_json(self, frame: dict) -> bytes:
        body = json.dumps(frame).encode("utf-8")
        return HEADER.pack(len(body), FRAME_JSON) + body

    # -- client side -------------------------------------------------------

    def encode_request(self, frame: dict) -> bytes:
        keys = frame.keys()
        req_id = frame.get("id", NO_ID)
        if type(req_id) is int and _I64_MIN <= req_id <= _I64_MAX:
            if "features" in frame and keys <= {"id", "features"}:
                body = self._pack_f32(frame["features"], ndim=1)
                if body is not None:
                    return (HEADER.pack(_PREDICT_HEAD.size + len(body),
                                        FRAME_PREDICT)
                            + _PREDICT_HEAD.pack(req_id, len(body) // 4)
                            + body)
            elif "rows" in frame and keys <= {"id", "rows"}:
                rows = frame["rows"]
                try:
                    arr = np.ascontiguousarray(rows, dtype="<f4")
                except (TypeError, ValueError):
                    arr = None
                if arr is not None and arr.ndim == 2:
                    body = arr.tobytes()
                    return (HEADER.pack(_BATCH_HEAD.size + len(body),
                                        FRAME_BATCH)
                            + _BATCH_HEAD.pack(req_id, arr.shape[0],
                                               arr.shape[1])
                            + body)
        return self._embed_json(_json_safe(frame))

    @staticmethod
    def _pack_f32(values, ndim: int) -> bytes | None:
        try:
            arr = np.ascontiguousarray(values, dtype="<f4")
        except (TypeError, ValueError):
            return None
        if arr.ndim != ndim:
            return None
        return arr.tobytes()

    def decode_response(self, raw: bytes):
        ftype = raw[0]
        payload = memoryview(raw)[1:]
        try:
            if ftype == FRAME_PREDICTION:
                req_id, prediction = _PREDICTION_BODY.unpack(payload)
                frame: dict = {"ok": True}
                if req_id != NO_ID:
                    frame["id"] = req_id
                frame["prediction"] = prediction
                return frame
            if ftype == FRAME_PREDICTIONS:
                req_id, n = _PREDICTIONS_HEAD.unpack_from(payload)
                if len(payload) != _PREDICTIONS_HEAD.size + 4 * n:
                    raise ValueError(
                        f"PREDICTIONS declares {n} entries but carries "
                        f"{len(payload) - _PREDICTIONS_HEAD.size} bytes")
                frame = {"ok": True}
                if req_id != NO_ID:
                    frame["id"] = req_id
                frame["predictions"] = np.frombuffer(
                    payload, dtype="<i4", count=n,
                    offset=_PREDICTIONS_HEAD.size).tolist()
                return frame
            if ftype == FRAME_JSON:
                return json.loads(bytes(payload))
        except struct.error as exc:
            raise ValueError(f"truncated binary frame: {exc}") from exc
        raise ValueError(f"unknown binary frame type 0x{ftype:02x}")


class PredictStream:
    """A decoded ``FRAME_PREDICT_STREAM``: N independent single-row
    requests that never became Python objects.

    ``ids`` is an ``<i8`` array of per-row request ids and ``rows`` a
    ``(count, cols)`` ``<f4`` matrix — both zero-copy
    ``np.frombuffer`` views over the received frame, so decoding a
    stream costs two buffer views regardless of row count.  The
    engine's stream fast path lifts ``rows`` to float64 **once per
    coalesced batch** (exact: every f32 is representable) and answers
    through packed :meth:`BinaryV2Codec.encode_predictions_stream`
    frames paired back by id.
    """

    __slots__ = ("ids", "rows")

    def __init__(self, ids, rows) -> None:
        self.ids = ids
        self.rows = rows

    def __len__(self) -> int:
        return len(self.ids)


class BinaryV2Codec(BinaryCodec):
    """``binary-v1`` plus multi-row streaming frames (pipelined path).

    Every v1 frame round-trips identically — a v2 connection sending
    only v1 frames is byte-for-byte a v1 connection — so the codec
    subclasses :class:`BinaryCodec` and adds exactly the two stream
    frame types.
    """

    name = CODEC_BINARY_V2

    # -- server side -------------------------------------------------------

    def decode_request(self, raw: bytes):
        if raw[0] != FRAME_PREDICT_STREAM:
            return super().decode_request(raw)
        payload = memoryview(raw)[1:]
        try:
            count, cols = _STREAM_HEAD.unpack_from(payload)
            expected = _STREAM_HEAD.size + 8 * count + 4 * count * cols
            if count < 1:
                raise ValueError(
                    "PREDICT_STREAM must carry at least one row")
            if len(payload) != expected:
                raise ValueError(
                    f"PREDICT_STREAM declares {count}x{cols} but "
                    f"carries {len(payload) - _STREAM_HEAD.size} "
                    f"payload bytes")
        except (struct.error, ValueError) as exc:
            return None, error_frame(
                ERROR_INVALID_FRAME,
                f"malformed binary frame "
                f"(type 0x{FRAME_PREDICT_STREAM:02x}): {exc}")
        ids = np.frombuffer(payload, dtype="<i8", count=count,
                            offset=_STREAM_HEAD.size)
        rows = np.frombuffer(
            payload, dtype="<f4", count=count * cols,
            offset=_STREAM_HEAD.size + 8 * count).reshape(count, cols)
        return PredictStream(ids, rows), None

    def encode_predictions_stream(self, ids, predictions) -> bytes:
        """One PREDICTIONS_STREAM from parallel id/prediction arrays."""
        id_arr = np.ascontiguousarray(ids, dtype="<i8")
        pred_arr = np.ascontiguousarray(predictions, dtype="<i4")
        body = id_arr.tobytes() + pred_arr.tobytes()
        return (HEADER.pack(_PSTREAM_HEAD.size + len(body),
                            FRAME_PREDICTIONS_STREAM)
                + _PSTREAM_HEAD.pack(id_arr.size) + body)

    # -- client side -------------------------------------------------------

    def encode_predict_stream(self, ids, rows) -> bytes:
        """One PREDICT_STREAM from an id array + (n, cols) f32 matrix.

        Built straight from ``(req_id, row)`` arrays — the pipelined
        client never constructs per-request dicts under this codec.
        """
        id_arr = np.ascontiguousarray(ids, dtype="<i8")
        row_arr = np.ascontiguousarray(rows, dtype="<f4")
        body = id_arr.tobytes() + row_arr.tobytes()
        return (HEADER.pack(_STREAM_HEAD.size + len(body),
                            FRAME_PREDICT_STREAM)
                + _STREAM_HEAD.pack(row_arr.shape[0], row_arr.shape[1])
                + body)

    def decode_response(self, raw: bytes):
        if raw[0] != FRAME_PREDICTIONS_STREAM:
            return super().decode_response(raw)
        payload = memoryview(raw)[1:]
        try:
            count, = _PSTREAM_HEAD.unpack_from(payload)
        except struct.error as exc:
            raise ValueError(f"truncated binary frame: {exc}") from exc
        if len(payload) != _PSTREAM_HEAD.size + 12 * count:
            raise ValueError(
                f"PREDICTIONS_STREAM declares {count} entries but "
                f"carries {len(payload) - _PSTREAM_HEAD.size} bytes")
        ids = np.frombuffer(payload, dtype="<i8", count=count,
                            offset=_PSTREAM_HEAD.size)
        predictions = np.frombuffer(
            payload, dtype="<i4", count=count,
            offset=_PSTREAM_HEAD.size + 8 * count)
        return {"ok": True, "stream": (ids, predictions)}


JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()
BINARY_V2_CODEC = BinaryV2Codec()
CODECS = {CODEC_JSON: JSON_CODEC, CODEC_BINARY: BINARY_CODEC,
          CODEC_BINARY_V2: BINARY_V2_CODEC}


def get_codec(name: str):
    """The registered codec singleton for *name* (KeyError if unknown)."""
    return CODECS[name]


# -- per-connection state --------------------------------------------------


class WireSession:
    """Per-connection wire state: framing, the active codec, the hello
    handshake, fatal-error bookkeeping and per-codec traffic counters.

    Framing is *lazy* — push bytes in, pull frames out one at a time —
    so a codec switch negotiated by frame N applies to frame N+1 even
    when both arrived in a single ``recv`` chunk.
    """

    __slots__ = ("codec", "offered", "max_bytes", "buf", "fatal",
                 "_pending_error", "requests", "bytes_in", "bytes_out")

    def __init__(self, offered=DEFAULT_CODECS,
                 max_bytes: int = MAX_REQUEST_BYTES) -> None:
        self.codec = JSON_CODEC
        self.offered = tuple(offered)
        self.max_bytes = max_bytes
        self.buf = bytearray()
        self.fatal = False
        self._pending_error: dict | None = None
        self.requests: dict = {}
        self.bytes_in: dict = {}
        self.bytes_out: dict = {}

    # -- framing -----------------------------------------------------------

    def push(self, data: bytes) -> None:
        """Absorb one ``recv`` chunk (counted under the active codec)."""
        name = self.codec.name
        self.bytes_in[name] = self.bytes_in.get(name, 0) + len(data)
        self.buf += data

    def next_frame(self) -> bytes | None:
        """The next complete de-framed frame; None until more bytes land.

        Framing failures that cannot be resynchronized (a newline-less
        JSON flood, a binary frame declaring an oversized payload) set
        :attr:`fatal` and park a typed error frame for
        :meth:`take_pending_error`.
        """
        if self.fatal:
            return None
        if self.codec.name == CODEC_JSON:
            idx = self.buf.find(b"\n")
            if idx < 0:
                if len(self.buf) > self.max_bytes:
                    self.fatal = True
                    self._pending_error = flood_frame()
                return None
            raw = bytes(self.buf[:idx])
            del self.buf[:idx + 1]
            return raw
        if len(self.buf) < HEADER.size:
            return None
        length, = _U32.unpack_from(self.buf)
        if length > self.max_bytes:
            self.fatal = True
            self._pending_error = too_large_frame(length)
            return None
        total = HEADER.size + length
        if len(self.buf) < total:
            return None
        raw = bytes(self.buf[4:total])  # frame type byte + payload
        del self.buf[:total]
        return raw

    def eof_tail(self) -> bytes | None:
        """A final newline-less JSON line at EOF (shutdown(WR) clients).

        Binary framing is self-delimiting, so only the JSON codec has a
        meaningful tail.
        """
        if self.codec.name != CODEC_JSON or self.fatal:
            return None
        tail = bytes(self.buf)
        self.buf.clear()
        return tail if tail.strip() else None

    # -- codec-mediated decode/encode --------------------------------------

    def decode(self, raw: bytes):
        request, error = self.codec.decode_request(raw)
        if request is not None or error is not None:
            name = self.codec.name
            # a stream frame carries N independent requests; counting
            # rows keeps the per-codec request totals comparable across
            # framing styles
            n = (len(request) if type(request) is PredictStream else 1)
            self.requests[name] = self.requests.get(name, 0) + n
        if error is not None and self.codec.name != CODEC_JSON:
            # a malformed frame inside a length-prefixed stream means
            # client and server disagree about the protocol; answer
            # once, then tear down rather than guess at a resync point
            self.fatal = True
        return request, error

    def encode(self, frame: dict) -> bytes:
        return self.codec.encode_response(frame)

    def encode_prediction(self, req_id, prediction: int) -> bytes:
        return self.codec.encode_prediction(req_id, prediction)

    def count_out(self, n: int) -> None:
        """Attribute *n* sent bytes to the active codec."""
        name = self.codec.name
        self.bytes_out[name] = self.bytes_out.get(name, 0) + n

    def take_pending_error(self) -> bytes | None:
        """Encode-and-clear the parked framing error, if any."""
        frame, self._pending_error = self._pending_error, None
        if frame is None:
            return None
        return self.encode(frame)

    # -- negotiation -------------------------------------------------------

    def negotiate(self, request) -> bytes | None:
        """Answer a hello request; ``None`` when it is not a hello.

        The response is encoded in the codec the hello arrived under;
        every frame after it speaks the chosen codec.  Unknown codec
        names are skipped, so a hello offering only unknown codecs
        falls back to JSON — the floor every server speaks.
        """
        if not (isinstance(request, dict)
                and request.get("cmd") == "hello"):
            return None
        req_id = request_id(request)
        offers = request.get("codecs", [])
        if not isinstance(offers, list):
            return self.encode(error_frame(
                ERROR_BAD_REQUEST,
                "hello 'codecs' must be a list of codec names", req_id))
        chosen = CODEC_JSON
        for name in offers:
            if (isinstance(name, str) and name in self.offered
                    and name in CODECS):
                chosen = name
                break
        response = self.encode(ok_frame({"codec": chosen}, req_id))
        self.codec = CODECS[chosen]
        return response


class CodecCounters:
    """Server-side aggregate of per-connection codec activity."""

    def __init__(self, offered=DEFAULT_CODECS) -> None:
        self.offered = tuple(offered)
        self.connections: dict = {}
        self.requests: dict = {}
        self.bytes_in: dict = {}
        self.bytes_out: dict = {}

    def fold(self, wire: WireSession) -> None:
        """Absorb a finished connection's counters (call at close).

        Connections are attributed to the codec they ended on — the
        codec a negotiated client actually did its work in.
        """
        name = wire.codec.name
        self.connections[name] = self.connections.get(name, 0) + 1
        for field in ("requests", "bytes_in", "bytes_out"):
            mine = getattr(self, field)
            for codec_name, n in getattr(wire, field).items():
                mine[codec_name] = mine.get(codec_name, 0) + n

    def snapshot(self) -> dict:
        return {
            "offered": list(self.offered),
            "connections": dict(self.connections),
            "requests": dict(self.requests),
            "bytes_in": dict(self.bytes_in),
            "bytes_out": dict(self.bytes_out),
        }


def merge_codec_stats(sections) -> dict:
    """Sum per-server codec sections (the shard aggregation helper)."""
    merged: dict = {"offered": [], "connections": {}, "requests": {},
                    "bytes_in": {}, "bytes_out": {}}
    for section in sections:
        if not isinstance(section, dict):
            continue
        for name in section.get("offered", []):
            if name not in merged["offered"]:
                merged["offered"].append(name)
        for field in ("connections", "requests", "bytes_in", "bytes_out"):
            for codec_name, n in section.get(field, {}).items():
                merged[field][codec_name] = (
                    merged[field].get(codec_name, 0) + n)
    return merged
