"""Table IV: the most relevant dynamic and static features.

Features are scored by the decision tree's gini importance averaged over
the repeated stratified CV, exactly as the paper builds its ranking; the
dynamic half lists (metric, team-size) pairs, the static half plain
feature names.  The ranking itself comes from the service layer
(:func:`repro.api.rank_features`); this driver only formats it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import rank_features
from repro.api.config import cv_repeats
from repro.dataset.build import Dataset
from repro.dataset.table import ColumnTable
from repro.features.sets import feature_names

N_DYNAMIC_ROWS = 12  # the paper lists twelve dynamic entries
N_STATIC_ROWS = 6    # and six static ones


@dataclass
class Table4Result:
    """Importance rankings (percentages) for both feature families."""

    dynamic_rows: list = field(default_factory=list)  # (label, pes, pct)
    static_rows: list = field(default_factory=list)   # (label, pct)

    def render(self) -> str:
        dyn = ColumnTable(["Label", "PEs", "Importance %"])
        for label, pes, pct in self.dynamic_rows:
            dyn.add_row(label, pes, pct)
        sta = ColumnTable(["Label", "Importance %"])
        for label, pct in self.static_rows:
            sta.add_row(label, pct)
        return "\n".join([
            "Table IV: Most Relevant Features",
            "", "Dynamic Features", dyn.render(float_fmt="{:.1f}"),
            "", "Static Features", sta.render(float_fmt="{:.1f}"),
        ])


def run_table4(dataset: Dataset, n_splits: int = 10,
               repeats: int | None = None, seed: int = 0) -> Table4Result:
    """Regenerate Table IV on *dataset*."""
    repeats = repeats if repeats is not None else cv_repeats()
    result = Table4Result()

    dynamic_ranking = rank_features(dataset, feature_names("dynamic"),
                                    n_splits=n_splits, repeats=repeats,
                                    seed=seed)
    total = sum(score for _, score in dynamic_ranking) or 1.0
    for name, score in dynamic_ranking[:N_DYNAMIC_ROWS]:
        metric, _, team = name.partition("@")
        result.dynamic_rows.append((metric, int(team),
                                    100.0 * score / total))

    static_ranking = rank_features(dataset, feature_names("static-all"),
                                   n_splits=n_splits, repeats=repeats,
                                   seed=seed)
    total = sum(score for _, score in static_ranking) or 1.0
    for name, score in static_ranking[:N_STATIC_ROWS]:
        result.static_rows.append((name, 100.0 * score / total))
    return result
