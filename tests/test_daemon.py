"""Tests for the persistent scoring daemon and its wire client."""

import json
import os
import socket
import threading
from dataclasses import replace as dc_replace

import numpy as np
import pytest

from repro.api import Classifier, ReproConfig, ScoringClient, ScoringDaemon
from repro.api import registry as api_registry
from repro.api.daemon import parse_tcp_endpoint
from repro.errors import DaemonError, ScoringError


@pytest.fixture()
def trained(tiny_dataset) -> Classifier:
    config = ReproConfig(profile="unit")
    return Classifier(config).train(tiny_dataset)


@pytest.fixture()
def unix_path(tmp_path) -> str:
    return str(tmp_path / "repro.sock")


def _raw_exchange(sock_path: str, lines: list) -> list:
    """Send raw protocol lines over one connection, return the frames."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(sock_path)
    with sock, sock.makefile("rw", encoding="utf-8") as stream:
        responses = []
        for line in lines:
            stream.write(line + "\n")
            stream.flush()
            responses.append(json.loads(stream.readline()))
        return responses


class TestScoringDaemonUnix:
    def test_round_trip_matches_local(self, trained, tiny_dataset,
                                      unix_path):
        X = tiny_dataset.matrix(trained.feature_names_)
        with ScoringDaemon(trained, socket_path=unix_path, workers=2):
            with ScoringClient(socket_path=unix_path) as client:
                assert client.predict_batch(X) == \
                    [int(p) for p in trained.predict_batch(X)]
                mapping = dict(zip(trained.feature_names_, X[0]))
                assert client.predict(mapping) == trained.predict(X[0])
                assert client.predict(list(X[1])) == trained.predict(X[1])
                assert client.predict_kernel("gemm", size=512) in \
                    range(1, 9)
                assert client.info()["model_family"] == "tree"

    def test_sixteen_concurrent_clients_byte_identical(
            self, trained, tiny_dataset, unix_path):
        """Acceptance: >= 16 concurrent clients, predictions identical
        to a local Classifier.predict_batch."""
        X = tiny_dataset.matrix(trained.feature_names_)
        expected = [int(p) for p in trained.predict_batch(X)]
        n_clients = 16
        barrier = threading.Barrier(n_clients)
        results: list = [None] * n_clients
        errors: list = []

        def worker(slot: int) -> None:
            try:
                with ScoringClient(socket_path=unix_path) as client:
                    barrier.wait(timeout=30)  # all 16 connected at once
                    batches = [client.predict_batch(X) for _ in range(3)]
                    singles = [client.predict(list(row)) for row in X[:4]]
                    results[slot] = (batches, singles)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        daemon = ScoringDaemon(trained, socket_path=unix_path,
                               workers=n_clients)
        with daemon:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(n_clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        stats = daemon.stats()  # post-stop: all handlers have drained
        assert not errors
        for batches, singles in results:
            assert batches == [expected] * 3
            assert singles == expected[:4]
        assert stats["connections_served"] == n_clients
        assert stats["requests_served"] == n_clients * (3 + 4)

    def test_model_loaded_once_under_traffic(self, trained, tiny_dataset,
                                             tmp_path, unix_path,
                                             monkeypatch):
        """One daemon lifetime = exactly one artifact load, however many
        requests and connections it serves."""
        artifact = str(tmp_path / "model.json")
        trained.save(artifact)
        loads = {"n": 0}
        family = api_registry.model_family("tree")

        def counting_from_payload(payload):
            loads["n"] += 1
            return family.from_payload(payload)

        monkeypatch.setitem(
            api_registry._MODEL_FAMILIES, "tree",
            dc_replace(family, from_payload=counting_from_payload))
        clf = Classifier.load(artifact)
        assert loads["n"] == 1
        X = tiny_dataset.matrix(clf.feature_names_)
        with ScoringDaemon(clf, socket_path=unix_path, workers=4):
            for _ in range(10):
                with ScoringClient(socket_path=unix_path) as client:
                    for row in X[:10]:
                        client.predict(list(row))
        assert loads["n"] == 1

    def test_error_frames_do_not_kill_the_connection(self, trained,
                                                     unix_path):
        n_features = len(trained.feature_names_)
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            frames = _raw_exchange(unix_path, [
                "this is not json",
                json.dumps({"features": {"op": 1.0}, "id": 7}),
                json.dumps({"rows": [[1.0, 2.0]], "id": 8}),
                json.dumps({"features": [0.0] * n_features, "id": 9}),
            ])
        assert [f["ok"] for f in frames] == [False, False, False, True]
        assert frames[0]["code"] == "invalid_json"
        assert frames[1]["code"] == "bad_request"
        assert frames[1]["id"] == 7
        assert "missing" in frames[1]["error"]
        assert frames[2]["code"] == "bad_request"
        assert frames[3]["id"] == 9

    def test_internal_error_frame_carries_id_and_code(
            self, trained, unix_path, monkeypatch):
        """An unexpected server-side exception must answer a typed
        'internal' frame with the request id — the client surfaces the
        daemon's code, not a spurious id mismatch — and the serving
        loop must survive it."""
        import repro.api.service as service_mod

        real_handle = service_mod.handle_request
        blow_up = {"armed": True}

        def exploding_handle(classifier, request):
            if blow_up["armed"]:
                raise RuntimeError("synthetic server bug")
            return real_handle(classifier, request)

        monkeypatch.setattr(service_mod, "handle_request",
                            exploding_handle)
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            with ScoringClient(socket_path=unix_path) as client:
                with pytest.raises(ScoringError,
                                   match="synthetic") as excinfo:
                    client.info()
                assert excinfo.value.code == "internal"
                blow_up["armed"] = False
                # same connection keeps serving after the internal error
                assert client.info()["model_family"] == "tree"

    def test_workers_bound_concurrent_service(self, trained, unix_path):
        """With workers=1 a second client genuinely waits in the listen
        backlog until the first connection closes (the documented
        backpressure model)."""
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            first = ScoringClient(socket_path=unix_path)
            assert first.info()["model_family"] == "tree"
            second = ScoringClient(socket_path=unix_path)
            answered = threading.Event()

            def blocked_request() -> None:
                second.request({"cmd": "info"})
                answered.set()

            thread = threading.Thread(target=blocked_request)
            thread.start()
            # the only worker is pinned to the first connection
            assert not answered.wait(timeout=0.4)
            first.close()  # frees the slot; second is now served
            assert answered.wait(timeout=10)
            thread.join(timeout=10)
            second.close()

    def test_clean_shutdown(self, trained, unix_path):
        daemon = ScoringDaemon(trained, socket_path=unix_path, workers=2)
        daemon.start()
        assert daemon.is_running
        client = ScoringClient(socket_path=unix_path)
        assert client.info()["model_family"] == "tree"
        daemon.stop()
        assert not daemon.is_running
        assert not os.path.exists(unix_path)
        with pytest.raises(ScoringError):
            client.request({"cmd": "info"})
        client.close()
        daemon.stop()  # idempotent

    def test_restart_after_stop(self, trained, unix_path):
        daemon = ScoringDaemon(trained, socket_path=unix_path, workers=1)
        daemon.start()
        daemon.stop()
        daemon.start()
        try:
            with ScoringClient(socket_path=unix_path) as client:
                assert client.info()["n_features"] == \
                    len(trained.feature_names_)
        finally:
            daemon.stop()

    def test_stale_socket_file_is_reclaimed(self, trained, unix_path):
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(unix_path)
        stale.close()  # leaves the filesystem entry behind
        assert os.path.exists(unix_path)
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            with ScoringClient(socket_path=unix_path) as client:
                assert client.info()["model_family"] == "tree"

    def test_live_socket_is_not_stolen(self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            second = ScoringDaemon(trained, socket_path=unix_path,
                                   workers=1)
            with pytest.raises(DaemonError, match="live"):
                second.start()

    def test_non_socket_path_is_refused(self, trained, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{}")
        daemon = ScoringDaemon(trained, socket_path=str(path), workers=1)
        with pytest.raises(DaemonError, match="not a socket"):
            daemon.start()
        assert path.exists()  # the innocent file survives


class TestScoringDaemonTcp:
    def test_ephemeral_port_round_trip(self, trained, tiny_dataset):
        X = tiny_dataset.matrix(trained.feature_names_)
        daemon = ScoringDaemon(trained, tcp=("127.0.0.1", 0), workers=2)
        with daemon:
            kind, host, port = daemon.address
            assert kind == "tcp" and port > 0
            with ScoringClient(tcp=(host, port)) as client:
                assert client.predict_batch(X) == \
                    [int(p) for p in trained.predict_batch(X)]

    def test_parse_tcp_endpoint(self):
        assert parse_tcp_endpoint("127.0.0.1:7878") == ("127.0.0.1", 7878)
        assert parse_tcp_endpoint("localhost:0") == ("localhost", 0)
        with pytest.raises(DaemonError):
            parse_tcp_endpoint("no-port")
        with pytest.raises(DaemonError):
            parse_tcp_endpoint("host:notaport")
        with pytest.raises(DaemonError):
            parse_tcp_endpoint(":7878")


class TestDaemonValidation:
    def test_requires_exactly_one_transport(self, trained):
        with pytest.raises(DaemonError, match="exactly one"):
            ScoringDaemon(trained)
        with pytest.raises(DaemonError, match="exactly one"):
            ScoringDaemon(trained, socket_path="/tmp/x",
                          tcp=("127.0.0.1", 0))

    def test_requires_fitted_classifier(self, unix_path):
        with pytest.raises(DaemonError, match="not fitted"):
            ScoringDaemon(Classifier(), socket_path=unix_path)

    def test_requires_positive_workers(self, trained, unix_path):
        with pytest.raises(DaemonError, match="workers"):
            ScoringDaemon(trained, socket_path=unix_path, workers=0)

    def test_cli_rejects_socket_and_tcp_together(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["serve", "--socket", "/tmp/x", "--tcp", "h:1"])


class TestScoringClient:
    def _fake_server(self, unix_path, reply_lines):
        """A one-connection server replying with canned lines."""
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(unix_path)
        listener.listen(1)

        def run():
            conn, _ = listener.accept()
            with conn:
                conn.makefile("r").readline()  # swallow the request
                for line in reply_lines:
                    conn.sendall((line + "\n").encode())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return listener

    def test_requires_exactly_one_endpoint(self):
        with pytest.raises(ScoringError, match="exactly one"):
            ScoringClient()

    def test_unreachable_endpoint(self, tmp_path):
        with pytest.raises(ScoringError, match="cannot connect"):
            ScoringClient(socket_path=str(tmp_path / "nowhere.sock"))

    def test_id_mismatch_raises(self, unix_path):
        listener = self._fake_server(
            unix_path, [json.dumps({"ok": True, "id": 999})])
        try:
            client = ScoringClient(socket_path=unix_path)
            with pytest.raises(ScoringError,
                               match="desynchronized") as excinfo:
                client.request({"cmd": "info"})
            assert excinfo.value.code == "id_mismatch"
            client.close()
        finally:
            listener.close()

    def test_eof_raises_transport_error(self, unix_path):
        listener = self._fake_server(unix_path, [])
        try:
            # reconnection would re-dial the fake one-shot server and
            # wait out the timeout; the no-retry path must still raise
            # a clean typed error
            client = ScoringClient(socket_path=unix_path,
                                   reconnect_retries=0)
            with pytest.raises(ScoringError) as excinfo:
                client.request({"cmd": "info"})
            assert excinfo.value.code == "transport"
            client.close()
        finally:
            listener.close()

    def test_undecodable_frame_raises(self, unix_path):
        listener = self._fake_server(unix_path, ["not json at all"])
        try:
            client = ScoringClient(socket_path=unix_path)
            with pytest.raises(ScoringError, match="undecodable"):
                client.request({"cmd": "info"})
            client.close()
        finally:
            listener.close()

    def test_typed_error_carries_daemon_code(self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            with ScoringClient(socket_path=unix_path) as client:
                with pytest.raises(ScoringError) as excinfo:
                    client.predict({"op": 1.0})
                assert excinfo.value.code == "bad_request"
                assert excinfo.value.request_id == 0
                # the connection survives the error
                assert client.info()["model_family"] == "tree"

    def test_closed_client_raises(self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=1):
            client = ScoringClient(socket_path=unix_path)
            client.close()
            client.close()  # idempotent
            with pytest.raises(ScoringError, match="closed"):
                client.request({"cmd": "info"})


class TestCollectStats:
    """collect_stats must survive shards dying under it (the registry
    read -> connect window is an unavoidable race)."""

    def test_dead_shard_becomes_error_row(self, trained, tmp_path):
        from repro.api.admin import collect_stats
        from repro.api.shard import write_registry

        live = str(tmp_path / "live.sock")
        dead = str(tmp_path / "dead.sock")  # never bound
        base = str(tmp_path / "fleet.sock")
        with ScoringDaemon(trained, socket_path=live, workers=1):
            with ScoringClient(socket_path=live) as client:
                client.predict([0.0] * len(trained.feature_names_))
            write_registry(base, [
                {"index": 0, "path": live, "pid": os.getpid()},
                {"index": 1, "path": dead, "pid": 999999},
            ])
            stats = collect_stats(base, timeout=2.0)
        assert len(stats.shards) == 2
        ok_row, err_row = stats.shards
        assert "error" not in ok_row
        assert err_row["shard"] == {"index": 1, "path": dead}
        assert err_row["error"]
        assert err_row["code"] == "transport"
        # the live shard's counters still aggregate
        assert stats.requests_served >= 1
        assert stats.connections_served >= 1
        assert stats.live_shards == 1

    def test_all_shards_dead_still_returns(self, tmp_path):
        # the deprecated shim must keep the historical dict shape
        from repro.api.shard import collect_stats, write_registry

        base = str(tmp_path / "fleet.sock")
        write_registry(base, [
            {"index": 0, "path": str(tmp_path / "a.sock"), "pid": 1},
            {"index": 1, "path": str(tmp_path / "b.sock"), "pid": 2},
        ])
        with pytest.warns(DeprecationWarning, match="admin.collect_stats"):
            stats = collect_stats(base, timeout=2.0)
        assert [r["shard"]["index"] for r in stats["shards"]] == [0, 1]
        assert all(r["error"] for r in stats["shards"])
        assert stats["requests_served"] == 0
        assert stats["codec"] is None

    def test_plain_dead_endpoint_is_one_error_row(self, tmp_path):
        from repro.api.admin import collect_stats

        stats = collect_stats(str(tmp_path / "gone.sock"), timeout=2.0)
        assert len(stats.shards) == 1
        assert stats.shards[0]["error"]
        assert stats.shards[0]["code"] == "transport"
        assert stats.live_shards == 0


class TestSmokeScript:
    def test_daemon_smoke_main(self, capsys):
        from scripts.daemon_smoke import main as smoke_main
        assert smoke_main(["--rows", "24", "--clients", "3"]) == 0
        out = capsys.readouterr().out
        assert "daemon smoke OK" in out

    def test_kill_storm_smoke_main(self, capsys):
        from scripts.daemon_smoke import main as smoke_main
        assert smoke_main(["--kill-storm", "--rows", "24",
                           "--clients", "2", "--storm-kills", "2"]) == 0
        out = capsys.readouterr().out
        assert "kill-storm smoke OK" in out
        assert "zero failures" in out

    def test_byte_identity_diff_is_actionable(self):
        from scripts.daemon_smoke import SmokeFailure, check_identical

        check_identical("leg", [1, 2, 3], [1, 2, 3])  # identical: quiet
        with pytest.raises(SmokeFailure) as excinfo:
            check_identical("client 2 batch", list(range(40)),
                            [0, 9] + list(range(2, 40)))
        message = str(excinfo.value)
        assert "client 2 batch" in message
        assert "row 1: got 1, want 9" in message
        with pytest.raises(SmokeFailure, match="length mismatch"):
            check_identical("leg", [1, 2], [1])
        with pytest.raises(SmokeFailure, match="and 2 more"):
            check_identical("leg", [0] * 12, [1] * 12)

    def test_smoke_failure_exits_nonzero(self, capsys, monkeypatch):
        """A diverging prediction must turn into exit 1 + a diff on
        stderr, not a traceback."""
        import scripts.daemon_smoke as smoke

        real = smoke.check_identical

        def sabotage(label, got, want):
            if label.startswith("client 0 batch"):
                got = list(got)
                got[0] += 1
            real(label, got, want)

        monkeypatch.setattr(smoke, "check_identical", sabotage)
        assert smoke.main(["--rows", "12", "--clients", "2"]) == 1
        err = capsys.readouterr().err
        assert "daemon smoke FAILED" in err
        assert "client 0 batch" in err
        assert "row 0: got" in err


def test_predictions_byte_identical_to_predict_batch_json(
        trained, tiny_dataset, tmp_path):
    """The wire responses round-trip through JSON byte-identically to a
    local predict_batch (ints, not floats or numpy scalars)."""
    X = tiny_dataset.matrix(trained.feature_names_)
    local = json.dumps([int(p) for p in trained.predict_batch(X)])
    unix_path = str(tmp_path / "repro.sock")
    with ScoringDaemon(trained, socket_path=unix_path, workers=1):
        frames = _raw_exchange(
            unix_path, [json.dumps({"rows": X.tolist()})])
    assert json.dumps(frames[0]["predictions"]) == local
    assert np.asarray(frames[0]["predictions"]).dtype.kind == "i"
