"""Cluster configuration (the paper's 8c4f1p instance by default).

Latency and runtime-overhead parameters are first-order models of the
GVSOC platform the paper simulates: single-cycle TCDM hits, a 15-cycle
L2, one-stage pipelined shared FPUs, and an OpenMP runtime whose
fork/join costs are explicit instruction counts (the PULP runtime wakes
the team through the event unit; the tax is real and matters for small
payloads).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one PULP cluster instance."""

    # -- topology ------------------------------------------------------------
    n_cores: int = 8
    n_fpus: int = 4
    n_l1_banks: int = 16
    n_l2_banks: int = 32
    tcdm_bytes: int = 64 * 1024
    l2_bytes: int = 512 * 1024

    # -- core timing ----------------------------------------------------------
    #: total cycles of a load/store hitting L2 (paper: 15-cycle latency).
    l2_latency: int = 15
    #: cycles an L2 bank (and its slice of the bus) stays busy per access;
    #: concurrent requesters to the same bank serialise on this window.
    l2_bank_occupancy: int = 4
    #: total cycles of a taken branch (issue + refetch bubble).
    jump_cycles: int = 2
    #: total cycles of an integer division on RI5CY.
    div_latency: int = 8
    #: total cycles of an FP division (occupies the shared FPU throughout).
    fpdiv_latency: int = 12
    #: cycles between a failed lock probe and the next attempt.
    lock_retry_cycles: int = 4

    # -- OpenMP runtime model ---------------------------------------------------
    #: integer ops the master executes to open a parallel region
    #: (team wake-up through the event unit, descriptor setup).
    fork_instrs: int = 80
    #: integer ops each team member executes entering the region
    #: (chunk-bound computation, frame setup).
    worker_prologue_instrs: int = 24
    #: integer ops the master executes after the join barrier.
    join_instrs: int = 16
    #: cycles between barrier release by the event unit and first issue.
    barrier_wakeup_cycles: int = 3

    # -- instruction cache -------------------------------------------------------
    #: instructions per I-cache line (refills counted on cold blocks).
    icache_line_instrs: int = 4

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SimulationError("cluster needs at least one core")
        if self.n_fpus < 1 or self.n_fpus > self.n_cores:
            raise SimulationError("n_fpus must be in [1, n_cores]")
        if self.n_l1_banks < 1 or self.n_l1_banks & (self.n_l1_banks - 1):
            raise SimulationError("n_l1_banks must be a power of two")
        if self.n_l2_banks < 1 or self.n_l2_banks & (self.n_l2_banks - 1):
            raise SimulationError("n_l2_banks must be a power of two")
        if self.l2_latency < 1 or self.jump_cycles < 1:
            raise SimulationError("latencies must be at least one cycle")

    def fpu_of_core(self, core: int) -> int:
        """Fixed core-to-FPU mapping: cores ``u`` and ``u + n_fpus`` share FPU ``u``."""
        return core % self.n_fpus

    def cores_sharing_fpu(self, fpu: int) -> list[int]:
        return [c for c in range(self.n_cores) if self.fpu_of_core(c) == fpu]

    def with_(self, **changes) -> "ClusterConfig":
        """Return a modified copy (used by ablation experiments)."""
        return replace(self, **changes)

    def cache_key(self) -> str:
        """Stable textual fingerprint for on-disk result caching."""
        fields = sorted(self.__dataclass_fields__)
        return ";".join(f"{name}={getattr(self, name)}" for name in fields)


#: The configuration evaluated in the paper (Montagna et al. 8c4f1p).
DEFAULT_CONFIG = ClusterConfig()
