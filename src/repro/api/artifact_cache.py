"""Model-artifact cache: train once per (data, code, model) identity.

``repro train`` (and the default-model paths of ``repro predict`` /
``repro serve``) used to retrain from scratch on every invocation even
when nothing relevant had changed.  This module keys saved classifier
artifacts on the full identity of what a training run would produce:

* the **dataset tag** (profile name, and sample count when a concrete
  dataset is supplied),
* ``CODE_VERSION`` (simulator semantics — changing it relabels the
  campaign, so every older artifact is stale),
* the **model family** and its hyper-parameters and seed,
* the **feature set** name.

Identical inputs resolve to the same artifact path and are served from
disk without a second ``fit``; changing any key component forces a
retrain.  Artifacts that exist but fail to load (corrupt file, written
under a different ``CODE_VERSION``) are retrained over, never trusted.

The cache directory defaults to ``.repro_cache/models`` next to the
simulation cache and can be pointed elsewhere with
``$REPRO_ARTIFACT_CACHE``.  Long-running deployments can additionally
bound artifact *age*: a TTL (``ttl=`` seconds on
:func:`load_or_train` / :func:`load_cached`, or ``$REPRO_ARTIFACT_TTL``
fleet-wide) treats artifacts older than the bound as stale, so a
daemon restarted after the TTL refits against fresh campaign data
instead of serving an arbitrarily old model forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings

from repro.api.classifier import BACKEND_COMPILED, Classifier
from repro.api.config import ReproConfig
from repro.errors import MLError
from repro.version import CODE_VERSION

#: default artifact directory, next to the simulation cache.
DEFAULT_ARTIFACT_DIR = os.path.join(".repro_cache", "models")

#: environment variable bounding artifact age (seconds) fleet-wide.
TTL_ENV_VAR = "REPRO_ARTIFACT_TTL"


def artifact_cache_dir(cache_dir: str | None = None) -> str:
    """Resolve the artifact directory (arg > env > default)."""
    if cache_dir is not None:
        return cache_dir
    return os.environ.get("REPRO_ARTIFACT_CACHE", DEFAULT_ARTIFACT_DIR)


def artifact_ttl(ttl: float | None = None) -> float | None:
    """Resolve the artifact TTL in seconds (arg > env > no expiry).

    ``None`` means artifacts never age out (the pre-TTL behaviour).  A
    non-positive TTL treats every existing artifact as stale — the
    explicit "always refit" knob.  An unparsable ``$REPRO_ARTIFACT_TTL``
    warns and is ignored rather than silently disabling caching.
    """
    if ttl is not None:
        return float(ttl)
    raw = os.environ.get(TTL_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"invalid {TTL_ENV_VAR}={raw!r} (not a number of seconds); "
            f"artifacts will not expire",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def _expired(path: str, ttl: float | None) -> bool:
    """Whether the artifact at *path* is older than *ttl* seconds."""
    if ttl is None:
        return False
    if ttl <= 0:
        return True
    try:
        age = time.time() - os.path.getmtime(path)
    except OSError:
        return True  # racing deletion: treat as a miss
    return age > ttl


def dataset_tag(dataset=None, profile: str | None = None) -> str:
    """The dataset component of the cache key.

    A concrete dataset is tagged by profile, sample count and a digest
    of its sample ids, so a classifier trained on a hand-picked subset
    never aliases one trained on the full campaign — or on a different
    same-size subset; a bare profile name tags the build-on-demand
    path.
    """
    if dataset is not None:
        ids = ",".join(sample.sample_id for sample in dataset.samples)
        digest = hashlib.sha1(ids.encode("utf-8")).hexdigest()[:8]
        return f"{dataset.profile}-{len(dataset)}-{digest}"
    return str(profile)


def artifact_key(config: ReproConfig, tag: str) -> str:
    """Digest of everything that determines the trained artifact."""
    identity = {
        "dataset": tag,
        "code_version": CODE_VERSION,
        "model": config.model,
        "model_params": dict(config.model_params),
        "feature_set": config.feature_set,
        "seed": config.seed,
        "n_splits": config.n_splits,
    }
    payload = json.dumps(identity, sort_keys=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def artifact_path(
    config: ReproConfig,
    dataset=None,
    cache_dir: str | None = None,
) -> str:
    """Where the artifact for this training identity lives on disk."""
    key = artifact_key(config, dataset_tag(dataset, config.profile))
    name = f"model_{config.model}_{config.feature_set}_{key}.json"
    return os.path.join(artifact_cache_dir(cache_dir), name)


def load_cached(
    config: ReproConfig | None = None,
    dataset=None,
    cache_dir: str | None = None,
    ttl: float | None = None,
    backend: str = BACKEND_COMPILED,
) -> Classifier | None:
    """The cached classifier for *config*, or ``None`` on a miss.

    The load-only half of :func:`load_or_train`: stale or corrupt
    artifacts count as misses, and nothing is ever trained.  The
    serving fleet (:mod:`repro.api.fleet`) uses this for cold model
    keys, where a request must not silently kick off a training
    campaign.  *ttl* (or ``$REPRO_ARTIFACT_TTL``) bounds artifact age
    in seconds; older artifacts count as misses too.  *backend*
    selects the execution backend of the loaded classifier (see
    :meth:`repro.api.Classifier.compile`).
    """
    config = config or ReproConfig()
    path = artifact_path(config, dataset, cache_dir)
    if not os.path.exists(path):
        return None
    if _expired(path, artifact_ttl(ttl)):
        return None  # aged out: refit rather than serve a stale model
    try:
        return Classifier.load(path, backend=backend)
    except MLError:
        return None  # stale or corrupt artifact


def load_or_train(
    config: ReproConfig | None = None,
    dataset=None,
    cache_dir: str | None = None,
    force: bool = False,
    progress=None,
    ttl: float | None = None,
    backend: str = BACKEND_COMPILED,
) -> tuple:
    """A fitted classifier for *config*, cached across invocations.

    Returns ``(classifier, cache_hit)``.  On a miss (or ``force=True``,
    an artifact older than *ttl* / ``$REPRO_ARTIFACT_TTL`` seconds, or
    a stale/corrupt artifact) the classifier is trained — building the
    configured dataset when none is given — and the fresh artifact is
    saved back to the cache.  Hit or miss, the returned classifier runs
    on *backend* (see :meth:`repro.api.Classifier.compile`).
    """
    config = config or ReproConfig()
    if not force:
        cached = load_cached(config, dataset, cache_dir, ttl=ttl,
                             backend=backend)
        if cached is not None:
            return cached, True
    path = artifact_path(config, dataset, cache_dir)
    classifier = Classifier(config).train(dataset, progress=progress)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    classifier.save(path)
    return classifier.compile(backend), False
