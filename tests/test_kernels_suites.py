"""Structural tests for the dataset suites.

Beyond "it builds", these check that each transcription carries the
structure the original kernel is known for: operation mix, access
patterns, region counts, triangularity, parametricity in dtype/size.
"""

import pytest

from repro.dataset.polybench import POLYBENCH_KERNELS
from repro.dataset.utdsp import UTDSP_KERNELS
from repro.dataset.custom import CUSTOM_KERNELS
from repro.dataset.registry import all_kernel_specs, get_kernel_spec
from repro.features.static_counts import summarize_kernel
from repro.features.static_raw import extract_raw
from repro.ir.nodes import Critical, SequentialFor, walk_body
from repro.ir.types import DType
from repro.ir.validate import validate_kernel


class TestSuiteInventories:
    def test_suite_sizes(self):
        assert len(POLYBENCH_KERNELS) == 26
        assert len(UTDSP_KERNELS) == 16
        assert len(CUSTOM_KERNELS) == 17

    @pytest.mark.parametrize("spec", all_kernel_specs(),
                             ids=lambda s: s.name)
    def test_every_kernel_builds_and_validates(self, spec):
        for dtype in spec.dtypes:
            for size in (512, 32768):
                kernel = spec.build(dtype, size)
                validate_kernel(kernel)
                # payload must fit the TCDM+L2 budget the paper assumes
                l1_bytes = sum(a.size_bytes for a in kernel.arrays
                               if a.space == "l1")
                assert l1_bytes <= 64 * 1024

    @pytest.mark.parametrize("spec", all_kernel_specs(),
                             ids=lambda s: s.name)
    def test_size_parametricity(self, spec):
        """Bigger payloads must mean more static work."""
        dtype = spec.dtypes[0]
        small = extract_raw(spec.build(dtype, 512))
        large = extract_raw(spec.build(dtype, 8192))
        assert large["transfer"] > small["transfer"]
        assert large["op"] + large["tcdm"] > small["op"] + small["tcdm"]


class TestPolybenchStructure:
    def test_gemm_is_cubic(self):
        kernel = get_kernel_spec("gemm").build(DType.INT32, 2048)
        n = round(kernel.array("A").length ** 0.5)
        counts = summarize_kernel(kernel).total
        # 2 loads per innermost iteration + the C[i][j] load per (i, j)
        assert counts.l1_loads == 2 * n ** 3 + n ** 2

    def test_syrk_is_triangular(self):
        kernel = get_kernel_spec("syrk").build(DType.INT32, 2048)
        n = int(kernel.array("A").length ** 0.5)
        counts = summarize_kernel(kernel).total
        # triangular: roughly half the rectangular inner-loop work
        rect = 2 * n ** 3
        assert counts.l1_loads < 0.75 * rect

    def test_atax_has_two_regions(self):
        kernel = get_kernel_spec("atax").build(DType.FP32, 2048)
        regions = list(kernel.parallel_regions())
        assert len(regions) == 2

    def test_lu_uses_sequential_for(self):
        kernel = get_kernel_spec("lu").build(DType.FP32, 2048)
        assert any(isinstance(r, SequentialFor) for r in kernel.body)

    def test_stencils_have_time_loop(self):
        for name in ("jacobi-1d", "jacobi-2d", "fdtd-2d", "heat-3d"):
            kernel = get_kernel_spec(name).build(DType.FP32, 2048)
            assert any(isinstance(r, SequentialFor) for r in kernel.body), \
                name

    def test_fp_kernels_use_fp_ops(self):
        kernel = get_kernel_spec("gemm").build(DType.FP32, 2048)
        counts = summarize_kernel(kernel).total
        assert counts.fp > 0 and counts.alu > 0

    def test_int_variant_uses_no_fp(self):
        kernel = get_kernel_spec("gemm").build(DType.INT32, 2048)
        counts = summarize_kernel(kernel).total
        assert counts.fp == 0 and counts.fpdiv == 0


class TestUtdspStructure:
    def test_fft_has_log2_stages(self):
        kernel = get_kernel_spec("fft").build(DType.FP32, 2048)
        regions = list(kernel.parallel_regions())
        n = kernel.array("re").length
        assert len(regions) == n.bit_length() - 1

    def test_adpcm_has_divides_and_branches(self):
        kernel = get_kernel_spec("adpcm").build(DType.INT32, 2048)
        counts = summarize_kernel(kernel).total
        assert counts.div > 0
        # branches beyond loop back-edges (data-dependent paths)
        assert counts.jump > counts.iterations

    def test_histogram_uses_a_critical_section(self):
        kernel = get_kernel_spec("histogram").build(DType.INT32, 512)
        region = next(iter(kernel.parallel_regions()))
        assert any(isinstance(s, Critical) for s in walk_body(region.body))

    def test_decimate_is_strided(self):
        kernel = get_kernel_spec("decimate").build(DType.INT32, 2048)
        region = next(iter(kernel.parallel_regions()))
        loads = [s for s in walk_body(region.body)
                 if type(s).__name__ == "Load" and s.array == "x"]
        assert any(coef == 4 for load in loads
                   for coef in load.index.terms.values())


class TestCustomStructure:
    def test_bank_pair_differs_only_in_stride(self):
        hammer = get_kernel_spec("bank_hammer").build(DType.INT32, 2048)
        friendly = get_kernel_spec("bank_friendly").build(DType.INT32,
                                                          2048)
        ch = summarize_kernel(hammer).total
        cf = summarize_kernel(friendly).total
        assert ch.instructions == cf.instructions
        assert ch.tcdm == cf.tcdm

    def test_l2_kernels_allocate_in_l2(self):
        for name in ("l2_stream", "l2_pingpong"):
            kernel = get_kernel_spec(name).build(DType.INT32, 2048)
            assert all(a.space == "l2" for a in kernel.arrays)

    def test_barrier_storm_opens_many_regions(self):
        kernel = get_kernel_spec("barrier_storm").build(DType.INT32, 2048)
        seq_for = next(r for r in kernel.body
                       if isinstance(r, SequentialFor))
        assert seq_for.upper.const - seq_for.lower.const >= 8

    def test_seq_then_par_has_serial_prefix(self):
        kernel = get_kernel_spec("seq_then_par").build(DType.INT32, 2048)
        summary = summarize_kernel(kernel)
        assert summary.sequential.instructions > 0
        region_instrs = sum(c.instructions
                            for c in summary.region_counts)
        assert summary.sequential.instructions > region_instrs
