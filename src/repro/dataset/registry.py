"""The 59-kernel registry (26 Polybench + 16 UTDSP + 17 Custom).

Six kernels are integer-only; the rest support both data types.  The
resulting sample grid at the paper's four sizes is
``53 * 2 * 4 + 6 * 4 = 448`` samples, matching §IV-B.
"""

from __future__ import annotations

from repro.errors import DatasetError
from repro.ir.types import DType
from repro.dataset.spec import KernelSpec
from repro.dataset.polybench import POLYBENCH_KERNELS
from repro.dataset.utdsp import INT_ONLY as UTDSP_INT_ONLY
from repro.dataset.utdsp import UTDSP_KERNELS
from repro.dataset.custom import CUSTOM_KERNELS
from repro.dataset.custom import INT_ONLY as CUSTOM_INT_ONLY

_INT_ONLY = set(UTDSP_INT_ONLY) | set(CUSTOM_INT_ONLY)


def _specs() -> list[KernelSpec]:
    specs: list[KernelSpec] = []
    for suite, kernels in (("polybench", POLYBENCH_KERNELS),
                           ("utdsp", UTDSP_KERNELS),
                           ("custom", CUSTOM_KERNELS)):
        for name, builder in kernels.items():
            dtypes = ((DType.INT32,) if name in _INT_ONLY
                      else (DType.INT32, DType.FP32))
            specs.append(KernelSpec(name=name, suite=suite,
                                    builder=builder, dtypes=dtypes))
    return specs


_ALL = _specs()
_BY_NAME = {spec.name: spec for spec in _ALL}

if len(_ALL) != 59:  # the paper's count; guards against registry drift
    raise DatasetError(f"kernel registry has {len(_ALL)} kernels, "
                       f"expected 59")


def all_kernel_specs() -> list[KernelSpec]:
    """All 59 kernels in stable (suite, definition) order."""
    return list(_ALL)


def get_kernel_spec(name: str) -> KernelSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DatasetError(f"unknown kernel {name!r}")


def suite_of(name: str) -> str:
    return get_kernel_spec(name).suite
