"""Ablations beyond the paper (A1/A2 in DESIGN.md).

A1 — energy-model sensitivity: re-label the dataset under Table-I
variants (zero leakage, scaled background, pricier active waits) and
compare label distributions.  Cached simulation counters are reused, so
only the energy integration reruns.

A2 — pruning sweep: accuracy at a fixed tolerance as a function of how
many top-importance features the tree keeps, quantifying the plateau the
paper's ``static-opt`` sits on.

Both ablations are thin clients: A1 re-labels through
:func:`repro.dataset.build.build_dataset`, A2 ranks and scores through
:func:`repro.api.rank_features` / :func:`repro.api.evaluate_features`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import evaluate_features, rank_features
from repro.dataset.build import Dataset, build_dataset
from repro.dataset.table import ColumnTable
from repro.energy.model import EnergyModel
from repro.features.sets import feature_names


@dataclass
class EnergyModelAblation:
    profile: str
    distributions: dict = field(default_factory=dict)  # variant -> {label: n}

    def render(self) -> str:
        labels = sorted({label for dist in self.distributions.values()
                         for label in dist})
        table = ColumnTable(["variant"] + [f"c{label}" for label in labels])
        for variant, dist in self.distributions.items():
            table.add_row(variant, *[dist.get(label, 0)
                                     for label in labels])
        return "\n".join([
            "A1: label distribution under energy-model variants",
            table.render(),
        ])


def run_energy_model_ablation(profile: str = "paper",
                              cache_dir=None) -> EnergyModelAblation:
    from repro.dataset.build import DEFAULT_CACHE_DIR
    cache_dir = cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR
    base = EnergyModel.paper_table1()
    variants = {
        "table1": base,
        "zero-leakage": base.zero_leakage(),
        "leakage-x4": base.scaled(leakage=4.0),
        "nop-x4": base.scaled(nop=4.0),
    }
    result = EnergyModelAblation(profile=profile)
    for name, model in variants.items():
        dataset = build_dataset(profile, model=model, cache_dir=cache_dir)
        result.distributions[name] = dataset.class_distribution()
    return result


@dataclass
class PruningSweep:
    tolerance: float
    points: list = field(default_factory=list)  # (k, accuracy)

    def render(self) -> str:
        table = ColumnTable(["features kept", f"accuracy @{self.tolerance:g}%"])
        for k, acc in self.points:
            table.add_row(k, acc)
        return "\n".join([
            "A2: accuracy vs number of top-importance static features",
            table.render(),
        ])


def run_pruning_sweep(dataset: Dataset, tolerance: float = 5.0,
                      n_splits: int = 10, repeats: int = 5,
                      seed: int = 0, ks=(1, 2, 3, 4, 6, 8, 12, 16, 20),
                      ) -> PruningSweep:
    names = feature_names("static-all")
    ranking = rank_features(dataset, names, n_splits=n_splits,
                            repeats=repeats, seed=seed)
    sweep = PruningSweep(tolerance=tolerance)
    for k in ks:
        if k > len(ranking):
            break
        kept = [name for name, _ in ranking[:k]]
        report = evaluate_features(dataset, kept, tolerances=[tolerance],
                                   n_splits=n_splits, repeats=repeats,
                                   seed=seed)
        sweep.points.append((k, report.curve[0]))
    return sweep
